#!/usr/bin/env bash
# The full local CI gate. Everything runs offline (vendor/README.md).
#
#   ./ci.sh          # the whole gate
#   ./ci.sh quick    # skip the release build (fmt, clippy, tests)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release
fi

# The tier-1 gate (`cargo test -q`, umbrella package only) is a strict
# subset of the workspace run, so one invocation covers both.
step "cargo test --workspace -q (every crate: unit + integration + doctests)"
cargo test --workspace -q

step "examples compile"
cargo build --examples --quiet

step "benches compile"
cargo bench -p dl-bench --no-run --quiet

# Rustdoc gate: the doc surface (incl. crates/repl's missing_docs lint)
# builds clean with warnings promoted to errors.
step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Regression tooling can't rot: run the commit-throughput, replication,
# checkpoint-shipping and front-end experiments with --json, then
# self-compare the just-written trajectories (must be zero regressions,
# exit 0). The a10 run doubles as the replication smoke — its runner
# *asserts* that the lag drains to zero and that failover preserves the
# repository's link state — a11 doubles as the checkpoint-shipping smoke
# (bounded WALs under a retention budget; delta catch-up ships a fraction
# of the full-replay records), and a12 doubles as the front-end smoke: it
# asserts the adaptive upcall pool grows past the fixed-8 head count under
# burst, meets or beats its throughput, sheds back to the floor, and that
# the shared agent executor serves 256 connections on <64 OS threads. A
# broken pipeline fails this step outright. Quick mode stays on the debug
# profile to avoid a release build it otherwise skips.
step "report --json (a9 a10 a11 a12 incl. replication/checkpoint/front-end smokes) + --compare self-smoke"
profile_flag=""
if [[ "${1:-}" != "quick" ]]; then
  profile_flag="--release"
fi
bench_dir=$(mktemp -d)
trap 'rm -rf "$bench_dir"' EXIT
# shellcheck disable=SC2086  # $profile_flag is intentionally word-split
cargo run -p dl-bench $profile_flag --quiet --bin report -- \
  a9 a10 a11 a12 --quick --json --json-dir "$bench_dir" > /dev/null
cargo run -p dl-bench $profile_flag --quiet --bin report -- \
  --compare "$bench_dir" --current "$bench_dir"

step "OK"
