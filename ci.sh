#!/usr/bin/env bash
# The full local CI gate. Everything runs offline (vendor/README.md).
#
#   ./ci.sh          # the whole gate
#   ./ci.sh quick    # skip the release build (fmt, clippy, tests)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release
fi

# The tier-1 gate (`cargo test -q`, umbrella package only) is a strict
# subset of the workspace run, so one invocation covers both.
step "cargo test --workspace -q (every crate: unit + integration + doctests)"
cargo test --workspace -q

step "examples compile"
cargo build --examples --quiet

step "benches compile"
cargo bench -p dl-bench --no-run --quiet

# Rustdoc gate: the doc surface (incl. crates/repl's missing_docs lint)
# builds clean with warnings promoted to errors.
step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Regression tooling can't rot: run the commit-throughput, replication and
# checkpoint-shipping experiments with --json, then self-compare the
# just-written trajectories (must be zero regressions, exit 0). The a10 run
# doubles as the replication smoke — its runner *asserts* that the lag
# drains to zero and that failover preserves the repository's link state —
# and a11 doubles as the checkpoint-shipping smoke: it asserts bounded WALs
# under a retention budget and that delta catch-up ships a fraction of the
# full-replay records. A broken pipeline fails this step outright. Quick
# mode stays on the debug profile to avoid a release build it otherwise
# skips.
step "report --json (a9 a10 a11 incl. replication + checkpoint smokes) + --compare self-smoke"
profile_flag=""
if [[ "${1:-}" != "quick" ]]; then
  profile_flag="--release"
fi
bench_dir=$(mktemp -d)
trap 'rm -rf "$bench_dir"' EXIT
# shellcheck disable=SC2086  # $profile_flag is intentionally word-split
cargo run -p dl-bench $profile_flag --quiet --bin report -- \
  a9 a10 a11 --quick --json --json-dir "$bench_dir" > /dev/null
cargo run -p dl-bench $profile_flag --quiet --bin report -- \
  --compare "$bench_dir" --current "$bench_dir"

step "OK"
