#!/usr/bin/env bash
# The full local CI gate. Everything runs offline (vendor/README.md).
#
#   ./ci.sh          # the whole gate
#   ./ci.sh quick    # skip the release build (fmt, clippy, tests)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release
fi

# The tier-1 gate (`cargo test -q`, umbrella package only) is a strict
# subset of the workspace run, so one invocation covers both.
step "cargo test --workspace -q (every crate: unit + integration + doctests)"
cargo test --workspace -q

step "examples compile"
cargo build --examples --quiet

step "benches compile"
cargo bench -p dl-bench --no-run --quiet

step "OK"
