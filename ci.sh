#!/usr/bin/env bash
# The full local CI gate. Everything runs offline (vendor/README.md).
#
#   ./ci.sh          # the whole gate
#   ./ci.sh quick    # skip the release build (fmt, clippy, tests)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release
fi

# The tier-1 gate (`cargo test -q`, umbrella package only) is a strict
# subset of the workspace run, so one invocation covers both.
step "cargo test --workspace -q (every crate: unit + integration + doctests)"
cargo test --workspace -q

# The socket path is load-bearing (Transport::Socket routes the whole
# agent/upcall protocol through the framed codec and the reactor), so its
# smoke suite gets a named step even though the workspace run above
# already includes it — a failure here points straight at the wire.
step "wire-transport socket smoke"
cargo test -q --test wire_transport

step "examples compile"
cargo build --examples --quiet

step "benches compile"
cargo bench -p dl-bench --no-run --quiet

# Rustdoc gate: the doc surface (incl. crates/repl's missing_docs lint)
# builds clean with warnings promoted to errors.
step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Regression tooling can't rot: run every shipped scenario through the
# lab (the declarative successor of the bespoke a9-a12 runners;
# EXPERIMENTS.md "Writing a scenario"). Each scenario declares its own
# assertions — a9 the commit-throughput speedups, a10 lag-drain +
# failover link preservation, a11 bounded WALs + delta catch-up, a12 the
# adaptive upcall pool and shared agent executor, a13 near-linear
# write-cycle scaling across DLFM namespace shards — and the fault
# scenarios cover crash-failover, standby stalls under freshness reads,
# link-churn storms, upcall-worker kills, ENOSPC write-fault bursts
# (disk_fault, repository- or host-targeted), host-coordinator loss
# mid-burst with promotion of a host standby (kill_host_mid_burst, its
# flight-recorder span trail gated as lab_flight_* metrics) and a torn
# host-WAL tail at a crash boundary (host_wal_torn_tail). The lab exits
# non-zero on any failed assertion, then the just-written BENCH_*.json
# self-compare keeps the trajectory pipeline honest. Quick mode stays on
# the debug profile to avoid a release build it otherwise skips.
step "lab --quick scenarios/*.jsonl (declared assertions) + report --compare self-smoke"
profile_flag=""
if [[ "${1:-}" != "quick" ]]; then
  profile_flag="--release"
fi
bench_dir=$(mktemp -d)
trap 'rm -rf "$bench_dir"' EXIT
# shellcheck disable=SC2086  # $profile_flag is intentionally word-split
cargo run -p dl-bench $profile_flag --quiet --bin lab -- \
  --quick --json-dir "$bench_dir" scenarios/*.jsonl > /dev/null
cargo run -p dl-bench $profile_flag --quiet --bin report -- \
  --compare "$bench_dir" --current "$bench_dir"

# Cross-table throughput gate: the a14 wire churn (full 2PC cycles over
# real sockets) must hold a sane fraction of the a12 in-process churn
# throughput. The floor is a collapse detector, not a benchmark — it
# fails if the framed transport's round trips ever balloon, while
# staying insensitive to this machine's absolute numbers.
step "wire gate: a14 socket churn vs a12 in-process churn"
cargo run -p dl-bench $profile_flag --quiet --bin report -- \
  --gate "$bench_dir/BENCH_a12.json::agent churn, shared executor" \
         "$bench_dir/BENCH_a14.json::wire churn" \
  --column "ops/s" --min-ratio 0.2

step "OK"
