//! End-to-end tests of the assembled DataLinks system: SQL-driven
//! link/unlink, update-in-place with metadata consistency, crash recovery,
//! and coordinated point-in-time restore.

use std::sync::Arc;

use dl_core::{ControlMode, DataLinksSystem, DatalinkUrl, DlColumnOptions, OnUnlink, TokenKind};
use dl_fskit::{Cred, FsError, OpenOptions, SimClock};
use dl_minidb::{Column, ColumnType, DbError, Schema, Value};

const ALICE: Cred = Cred { uid: 100, gid: 100 };

fn movies_schema() -> Schema {
    Schema::new(
        "movies",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("title", ColumnType::Text),
            Column::nullable("clip", ColumnType::DataLink),
        ],
        "id",
    )
    .unwrap()
}

fn build_system(mode: ControlMode) -> DataLinksSystem {
    let sys = DataLinksSystem::builder()
        .clock(Arc::new(SimClock::new(1_000_000)))
        .file_server("srv1")
        .build()
        .unwrap();
    let raw = sys.raw_fs("srv1").unwrap();
    raw.mkdir_p(&Cred::root(), "/movies", 0o777).unwrap();
    raw.write_file(&ALICE, "/movies/alien.mpg", b"alien v1").unwrap();
    raw.write_file(&ALICE, "/movies/brazil.mpg", b"brazil v1").unwrap();
    sys.create_table(movies_schema()).unwrap();
    sys.define_datalink_column("movies", "clip", DlColumnOptions::new(mode)).unwrap();
    sys
}

fn insert_movie(sys: &DataLinksSystem, id: i64, title: &str, url: Option<&str>) {
    let mut tx = sys.begin();
    tx.insert(
        "movies",
        vec![
            Value::Int(id),
            Value::Text(title.into()),
            url.map(|u| Value::DataLink(u.into())).unwrap_or(Value::Null),
        ],
    )
    .unwrap();
    tx.commit().unwrap();
}

/// Update a linked file in place through the public file API.
fn update_file(sys: &DataLinksSystem, id: i64, content: &[u8]) {
    let (_url, path) =
        sys.select_datalink("movies", &Value::Int(id), "clip", TokenKind::Write).unwrap();
    let fs = sys.fs("srv1").unwrap();
    let fd = fs.open(&ALICE, &path, OpenOptions::write_truncate()).unwrap();
    fs.write(fd, content).unwrap();
    fs.close(fd).unwrap();
}

fn read_file(sys: &DataLinksSystem, id: i64) -> Vec<u8> {
    let (_url, path) =
        sys.select_datalink("movies", &Value::Int(id), "clip", TokenKind::Read).unwrap();
    let fs = sys.fs("srv1").unwrap();
    let fd = fs.open(&ALICE, &path, OpenOptions::read_only()).unwrap();
    let data = fs.read_to_end(fd).unwrap();
    fs.close(fd).unwrap();
    data
}

#[test]
fn insert_links_and_abort_unlinks_nothing() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    let node = sys.node("srv1").unwrap();
    assert!(node.server.repository().get_file("/movies/alien.mpg").is_some());

    // Aborted INSERT leaves no link behind and restores permissions.
    let mut tx = sys.begin();
    tx.insert(
        "movies",
        vec![
            Value::Int(2),
            Value::Text("Brazil".into()),
            Value::DataLink("dlfs://srv1/movies/brazil.mpg".into()),
        ],
    )
    .unwrap();
    assert!(
        node.server.repository().get_file("/movies/brazil.mpg").is_some()
            || node.server.has_pending(tx.id())
    );
    tx.abort();
    assert!(node.server.repository().get_file("/movies/brazil.mpg").is_none());
    let attr = node.raw.stat(&Cred::root(), "/movies/brazil.mpg").unwrap();
    assert_eq!((attr.uid, attr.mode), (ALICE.uid, 0o644));
}

#[test]
fn metadata_row_tracks_link_lifecycle() {
    let sys = build_system(ControlMode::Rdd);
    let url = DatalinkUrl::parse("dlfs://srv1/movies/alien.mpg").unwrap();
    assert!(sys.engine().file_meta(&url).is_none());

    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    let (size, _mtime, version) = sys.engine().file_meta(&url).unwrap();
    assert_eq!(size, 8, "linked size recorded");
    assert_eq!(version, 1);

    // DELETE of the row unlinks and removes the metadata.
    let mut tx = sys.begin();
    tx.delete("movies", &Value::Int(1)).unwrap();
    tx.commit().unwrap();
    assert!(sys.engine().file_meta(&url).is_none());
    let node = sys.node("srv1").unwrap();
    assert!(node.server.repository().get_file("/movies/alien.mpg").is_none());
}

#[test]
fn update_in_place_keeps_metadata_consistent() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    let url = DatalinkUrl::parse("dlfs://srv1/movies/alien.mpg").unwrap();

    update_file(&sys, 1, b"alien v2 with longer director's cut");
    let (size, _mtime, version) = sys.engine().file_meta(&url).unwrap();
    assert_eq!(version, 2, "metadata version moved with the file (§4.3)");
    assert_eq!(size, 35);
    assert_eq!(read_file(&sys, 1), b"alien v2 with longer director's cut");

    update_file(&sys, 1, b"v3");
    let (size, _, version) = sys.engine().file_meta(&url).unwrap();
    assert_eq!((size, version), (2, 3));
}

#[test]
fn switching_datalink_value_relinks_atomically() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));

    // UPDATE the column from alien to brazil: unlink old, link new, one txn.
    let mut tx = sys.begin();
    tx.update_column(
        "movies",
        &Value::Int(1),
        "clip",
        Value::DataLink("dlfs://srv1/movies/brazil.mpg".into()),
    )
    .unwrap();
    tx.commit().unwrap();

    let node = sys.node("srv1").unwrap();
    assert!(node.server.repository().get_file("/movies/alien.mpg").is_none());
    assert!(node.server.repository().get_file("/movies/brazil.mpg").is_some());
    // Old file back to its owner; new file taken over.
    let old = node.raw.stat(&Cred::root(), "/movies/alien.mpg").unwrap();
    assert_eq!(old.uid, ALICE.uid);
    let new = node.raw.stat(&Cred::root(), "/movies/brazil.mpg").unwrap();
    assert_eq!(new.uid, node.server.config().dlfm_cred.uid);
}

#[test]
fn linking_missing_file_vetoes_the_statement() {
    let sys = build_system(ControlMode::Rdd);
    let mut tx = sys.begin();
    let err = tx
        .insert(
            "movies",
            vec![
                Value::Int(1),
                Value::Text("Ghost".into()),
                Value::DataLink("dlfs://srv1/movies/missing.mpg".into()),
            ],
        )
        .unwrap_err();
    assert!(matches!(err, DbError::Vetoed(_)), "{err}");
    // Statement failed but the transaction survives (SQL semantics).
    tx.insert("movies", vec![Value::Int(1), Value::Text("Ghost".into()), Value::Null]).unwrap();
    tx.commit().unwrap();
}

#[test]
fn unlink_rejected_while_file_open() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));

    let (_url, path) =
        sys.select_datalink("movies", &Value::Int(1), "clip", TokenKind::Write).unwrap();
    let fs = sys.fs("srv1").unwrap();
    let fd = fs.open(&ALICE, &path, OpenOptions::read_write()).unwrap();

    let mut tx = sys.begin();
    let err = tx.delete("movies", &Value::Int(1)).unwrap_err();
    assert!(matches!(err, DbError::Vetoed(ref m) if m.contains("open")), "{err}");
    tx.abort();

    fs.close(fd).unwrap();
    let mut tx = sys.begin();
    tx.delete("movies", &Value::Int(1)).unwrap();
    tx.commit().unwrap();
}

#[test]
fn dangling_reference_prevented_through_app_fs() {
    let sys = build_system(ControlMode::Rff);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    let fs = sys.fs("srv1").unwrap();
    assert!(matches!(fs.remove(&ALICE, "/movies/alien.mpg"), Err(FsError::Rejected(_))));
    assert!(matches!(
        fs.rename(&ALICE, "/movies/alien.mpg", "/movies/renamed.mpg"),
        Err(FsError::Rejected(_))
    ));
}

#[test]
fn rfd_mode_full_cycle_through_sql() {
    let sys = build_system(ControlMode::Rfd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));

    // Plain read path — no token, no upcalls beyond mutation checks.
    let fs = sys.fs("srv1").unwrap();
    let fd = fs.open(&ALICE, "/movies/alien.mpg", OpenOptions::read_only()).unwrap();
    assert_eq!(fs.read_to_end(fd).unwrap(), b"alien v1");
    fs.close(fd).unwrap();

    update_file(&sys, 1, b"alien rfd v2");
    assert_eq!(
        sys.raw_fs("srv1").unwrap().read_file(&Cred::root(), "/movies/alien.mpg").unwrap(),
        b"alien rfd v2"
    );
    let url = DatalinkUrl::parse("dlfs://srv1/movies/alien.mpg").unwrap();
    assert_eq!(sys.engine().file_meta(&url).unwrap().2, 2);
}

#[test]
fn crash_mid_update_recovers_last_committed_everywhere() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    update_file(&sys, 1, b"committed v2");
    sys.node("srv1").unwrap().server.archive_store().wait_archived("/movies/alien.mpg");

    // Open for write, scribble, crash before close.
    let (_url, path) =
        sys.select_datalink("movies", &Value::Int(1), "clip", TokenKind::Write).unwrap();
    let fs = sys.fs("srv1").unwrap();
    let fd = fs.open(&ALICE, &path, OpenOptions::write_truncate()).unwrap();
    fs.write(fd, b"half-written garbage that must vanish").unwrap();
    // No close: the descriptor dies with the crash below.

    let image = sys.crash();
    let (sys, reports) = DataLinksSystem::recover(image).unwrap();
    assert_eq!(reports["srv1"].updates_rolled_back, 1);

    // File and metadata agree on v2.
    let url = DatalinkUrl::parse("dlfs://srv1/movies/alien.mpg").unwrap();
    assert_eq!(sys.engine().file_meta(&url).unwrap().2, 2);
    assert_eq!(read_file(&sys, 1), b"committed v2");
}

#[test]
fn crash_between_prepare_and_commit_resolves_with_host_outcome() {
    // The in-doubt path: we can't easily freeze the host mid-2PC from here,
    // so drive the agent surface directly like the host would.
    let sys = build_system(ControlMode::Rdd);
    let node = sys.node("srv1").unwrap();

    // A transaction that prepared at DLFM but whose decision is unknown
    // there; the host DB has no commit record for it → presumed abort.
    let orphan_txid = 4_242;
    node.server
        .link_file(orphan_txid, "/movies/brazil.mpg", ControlMode::Rdd, true, OnUnlink::Restore)
        .unwrap();
    node.server.prepare_host(orphan_txid).unwrap();

    let image = sys.crash();
    let (sys, reports) = DataLinksSystem::recover(image).unwrap();
    let report = &reports["srv1"];
    assert_eq!(report.in_doubt_resolved.len(), 1);
    assert!(!report.in_doubt_resolved[0].1, "presumed abort");

    let node = sys.node("srv1").unwrap();
    assert!(node.server.repository().get_file("/movies/brazil.mpg").is_none());
    let attr = node.raw.stat(&Cred::root(), "/movies/brazil.mpg").unwrap();
    assert_eq!((attr.uid, attr.mode), (ALICE.uid, 0o644), "link undone at recovery");
}

#[test]
fn committed_links_survive_crash() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    update_file(&sys, 1, b"v2 content");
    sys.node("srv1").unwrap().server.archive_store().wait_archived("/movies/alien.mpg");

    let image = sys.crash();
    let (sys, _) = DataLinksSystem::recover(image).unwrap();

    let node = sys.node("srv1").unwrap();
    let entry = node.server.repository().get_file("/movies/alien.mpg").unwrap();
    assert_eq!(entry.cur_version, 2);
    assert_eq!(read_file(&sys, 1), b"v2 content");

    // The system is fully operational after recovery: another update works.
    update_file(&sys, 1, b"v3 after recovery");
    assert_eq!(read_file(&sys, 1), b"v3 after recovery");
}

#[test]
fn coordinated_point_in_time_restore() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));

    // Build five versions, remembering the state id after each commit.
    let mut state_ids = Vec::new();
    state_ids.push(sys.state_id()); // after link, version 1
    for v in 2..=5u64 {
        update_file(&sys, 1, format!("alien v{v}").as_bytes());
        sys.node("srv1").unwrap().server.archive_store().wait_archived("/movies/alien.mpg");
        state_ids.push(sys.state_id());
    }
    let backup = sys.backup().unwrap();

    // Restore to the state after version 3 was committed.
    let (sys, report) = sys.restore(&backup, state_ids[2]).unwrap();
    assert_eq!(report.files_rolled_back, 1);
    let url = DatalinkUrl::parse("dlfs://srv1/movies/alien.mpg").unwrap();
    let (_, _, version) = sys.engine().file_meta(&url).unwrap();
    assert_eq!(version, 3, "metadata restored to v3");
    assert_eq!(read_file(&sys, 1), b"alien v3", "file restored to match (§4.4)");
}

#[test]
fn restore_relinks_files_unlinked_after_the_restore_point() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    let linked_state = sys.state_id();
    let backup_early = sys.backup().unwrap();

    // Unlink after the backup point.
    let mut tx = sys.begin();
    tx.delete("movies", &Value::Int(1)).unwrap();
    tx.commit().unwrap();
    assert!(sys.node("srv1").unwrap().server.repository().get_file("/movies/alien.mpg").is_none());

    // Restore to when it was linked: the link must come back.
    let (sys, report) = sys.restore(&backup_early, linked_state).unwrap();
    assert_eq!(report.files_relinked, 1);
    let node = sys.node("srv1").unwrap();
    let entry = node.server.repository().get_file("/movies/alien.mpg").unwrap();
    assert_eq!(entry.mode, ControlMode::Rdd);
    assert_eq!(read_file(&sys, 1), b"alien v1");
}

#[test]
fn restore_unlinks_files_linked_after_the_restore_point() {
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));
    let before_brazil = sys.state_id();
    let backup = sys.backup().unwrap();
    let _ = backup;
    insert_movie(&sys, 2, "Brazil", Some("dlfs://srv1/movies/brazil.mpg"));

    let backup2 = sys.backup().unwrap();
    let (sys, report) = sys.restore(&backup2, before_brazil).unwrap();
    assert_eq!(report.files_unlinked, 1);
    let node = sys.node("srv1").unwrap();
    assert!(node.server.repository().get_file("/movies/brazil.mpg").is_none());
    let attr = node.raw.stat(&Cred::root(), "/movies/brazil.mpg").unwrap();
    assert_eq!(attr.uid, ALICE.uid, "brazil handed back to its owner");
    assert!(node.server.repository().get_file("/movies/alien.mpg").is_some());
}

#[test]
fn multi_server_system_routes_by_url() {
    let sys = DataLinksSystem::builder()
        .clock(Arc::new(SimClock::new(1_000_000)))
        .file_server("east")
        .file_server("west")
        .build()
        .unwrap();
    for name in ["east", "west"] {
        let raw = sys.raw_fs(name).unwrap();
        raw.mkdir_p(&Cred::root(), "/pages", 0o777).unwrap();
        raw.write_file(&ALICE, "/pages/home.html", format!("{name} home").as_bytes()).unwrap();
    }
    sys.create_table(
        Schema::new(
            "pages",
            vec![
                Column::new("id", ColumnType::Int),
                Column::nullable("body", ColumnType::DataLink),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    sys.define_datalink_column("pages", "body", DlColumnOptions::new(ControlMode::Rdd)).unwrap();

    let mut tx = sys.begin();
    tx.insert("pages", vec![Value::Int(1), Value::DataLink("dlfs://east/pages/home.html".into())])
        .unwrap();
    tx.insert("pages", vec![Value::Int(2), Value::DataLink("dlfs://west/pages/home.html".into())])
        .unwrap();
    tx.commit().unwrap();

    assert!(sys.node("east").unwrap().server.repository().get_file("/pages/home.html").is_some());
    assert!(sys.node("west").unwrap().server.repository().get_file("/pages/home.html").is_some());

    // Tokens are per-server: an east token cannot open the west file.
    let (_, east_path) =
        sys.select_datalink("pages", &Value::Int(1), "body", TokenKind::Read).unwrap();
    let west_fs = sys.fs("west").unwrap();
    assert!(west_fs.open(&ALICE, &east_path, OpenOptions::read_only()).is_err());
    let east_fs = sys.fs("east").unwrap();
    let fd = east_fs.open(&ALICE, &east_path, OpenOptions::read_only()).unwrap();
    assert_eq!(east_fs.read_to_end(fd).unwrap(), b"east home");
    east_fs.close(fd).unwrap();
}

#[test]
fn same_user_transaction_updates_row_and_file_together() {
    // The video-merchant scenario from §1: update the price and replace the
    // clip content under one business operation.
    let sys = build_system(ControlMode::Rdd);
    insert_movie(&sys, 1, "Alien", Some("dlfs://srv1/movies/alien.mpg"));

    let mut tx = sys.begin();
    tx.update_column("movies", &Value::Int(1), "title", Value::Text("Alien (remastered)".into()))
        .unwrap();
    tx.commit().unwrap();

    update_file(&sys, 1, b"remastered clip");
    assert_eq!(read_file(&sys, 1), b"remastered clip");
    let row = sys.db().get_committed("movies", &Value::Int(1)).unwrap().unwrap();
    assert_eq!(row[1], Value::Text("Alien (remastered)".into()));
}
