//! Namespace sharding: a stable path-hash router plus the sharded DLFS
//! front that fans one *logical* file server out over N shard nodes.
//!
//! The paper's architecture already assumes many DLFM nodes coordinated by
//! the host database ("Enterprises can manage files on multiple distinct
//! file servers within a DataLinks database", §1), so partitioning one
//! server's namespace is a routing concern, not a protocol change: every
//! shard keeps the full per-node stack (repository, archive store, WAL
//! shipping, coordinator fencing), and a host transaction touching files
//! on several shards simply enlists one 2PC participant per shard — the
//! host's prepare-all/decide-all loop and the epoch fences fan out
//! unchanged.
//!
//! Two pieces live here:
//!
//! * [`ShardRouter`] — the stable hash `path → shard`. Deterministic
//!   across rebuilds (rebalance-free: a crash/recover cycle must route
//!   every existing link back to the shard that holds it) and uniform
//!   enough that random path sets stay within 2x of even (pinned by
//!   proptest in `tests/sharding.rs`).
//! * [`ShardedFs`] — one [`FileSystem`] facade over the shard nodes' DLFS
//!   layers, all interposed on the *same* physical file system. The
//!   application mounts this and sees one namespace; each DLFM only ever
//!   sees the files it owns.

use std::collections::HashMap;
use std::sync::Arc;

use dl_dlfs::Dlfs;
use dl_fskit::flock::{LockOp, LockOwner};
use dl_fskit::{
    path as fspath, Cred, DirEntry, FileAttr, FileKind, FileSystem, FsError, FsResult, Ino,
    OpenFlags, SetAttr,
};
use parking_lot::RwLock;

/// Stable path→shard router for one logical file server.
pub struct ShardRouter {
    logical: String,
    names: Vec<String>,
    routed: Vec<dl_obs::Counter>,
}

impl ShardRouter {
    /// A router over `shards` shard nodes of logical server `logical`.
    pub fn new(logical: &str, shards: usize) -> ShardRouter {
        let shards = shards.max(1);
        ShardRouter {
            logical: logical.to_string(),
            names: (0..shards).map(|i| Self::shard_name(logical, i)).collect(),
            routed: (0..shards).map(|_| dl_obs::Counter::default()).collect(),
        }
    }

    /// The node name of shard `idx` of `logical`: `"{logical}.s{idx}"`.
    /// This is the name the shard registers under everywhere — the node
    /// map, the engine, 2PC participant keys, metrics.
    pub fn shard_name(logical: &str, idx: usize) -> String {
        format!("{logical}.s{idx}")
    }

    /// The logical server name this router shards.
    pub fn logical(&self) -> &str {
        &self.logical
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.names.len()
    }

    /// All shard node names, in shard order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Node name of shard `idx`.
    pub fn name_of(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// The shard index owning `path`. Pure: the same path maps to the
    /// same shard on every rebuild of the router — links never rebalance.
    pub fn shard_of(&self, path: &str) -> usize {
        (fnv1a(path.as_bytes()) % self.names.len() as u64) as usize
    }

    /// Routes a link/unlink decision on `path`: returns the owning
    /// shard's node name and counts the decision (exported as the
    /// `engine.shard.<logical>.s<idx>.routed` counter).
    pub fn route(&self, path: &str) -> &str {
        let idx = self.shard_of(path);
        self.routed[idx].inc();
        &self.names[idx]
    }

    /// How many routing decisions shard `idx` has received.
    pub fn routed(&self, idx: usize) -> u64 {
        self.routed[idx].get()
    }
}

/// FNV-1a (64-bit): tiny, dependency-free, and stable across processes —
/// the property the rebalance-free routing claim rests on.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The sharded DLFS front: one [`FileSystem`] facade over the shard
/// nodes' DLFS layers, all interposed on the same physical file system.
///
/// Namespace operations (lookup, create, mkdir, remove, rename) route to
/// the owning shard by path hash — the owner's DLFM validates tokens,
/// approves opens and vetoes mutations for the links *it* holds. Inode
/// operations (open, close, setattr) follow the owner recorded at lookup
/// time. Reads and writes pass straight through to the physical file
/// system, exactly like an unsharded DLFS (§1: DataLinks "does not
/// interfere in read/write accesses").
///
/// Directories are a broadcast concern: every shard's DLFS keeps its own
/// volatile ino→path cache and errors on an uncached parent, so directory
/// lookups and mkdirs are primed into *every* shard — a later file lookup
/// can then land on any owner with the parent already resolvable there.
pub struct ShardedFs {
    inner: Arc<dyn FileSystem>,
    /// Behind a lock because per-shard failover swaps in the promoted
    /// node's fresh DLFS layer ([`ShardedFs::replace_shard`]).
    shards: RwLock<Vec<Arc<Dlfs>>>,
    router: Arc<ShardRouter>,
    /// ino → (absolute path, owning shard) for inode-addressed entry
    /// points. Volatile, like the per-shard DLFS dentry caches.
    paths: RwLock<HashMap<Ino, (String, usize)>>,
}

const ROOT: Cred = Cred::root();

impl ShardedFs {
    /// Fronts `shards` (one DLFS per shard node, in shard order) over the
    /// shared physical file system `inner`.
    pub fn new(
        inner: Arc<dyn FileSystem>,
        shards: Vec<Arc<Dlfs>>,
        router: Arc<ShardRouter>,
    ) -> ShardedFs {
        assert_eq!(shards.len(), router.shard_count(), "one DLFS layer per shard");
        let mut paths = HashMap::new();
        paths.insert(inner.root(), ("/".to_string(), 0));
        ShardedFs { inner, shards: RwLock::new(shards), router, paths: RwLock::new(paths) }
    }

    /// The current DLFS layer of shard `idx`. Cloned out so delegated
    /// operations (which may block on upcalls) never hold the shard lock.
    fn shard(&self, idx: usize) -> Arc<Dlfs> {
        Arc::clone(&self.shards.read()[idx])
    }

    /// Swaps shard `idx`'s DLFS layer for a promoted node's (per-shard
    /// failover) and re-primes the fresh layer's volatile dentry cache
    /// with every directory this front has resolved — the promoted DLFS
    /// starts from an empty cache, and operations below those directories
    /// must keep routing to it.
    pub fn replace_shard(&self, idx: usize, dlfs: Arc<Dlfs>) {
        let mut dirs: Vec<String> = {
            let paths = self.paths.read();
            paths
                .iter()
                .filter(|(ino, _)| {
                    self.inner
                        .fs_getattr(&ROOT, **ino)
                        .map(|attr| attr.kind == FileKind::Dir)
                        .unwrap_or(false)
                })
                .map(|(_, (path, _))| path.clone())
                .collect()
        };
        // Parents before children: each walk only needs ancestors cached.
        dirs.sort_by_key(|p| p.len());
        for path in dirs {
            let mut ino = self.inner.root();
            for comp in path.split('/').filter(|c| !c.is_empty()) {
                match dlfs.fs_lookup(&ROOT, ino, comp) {
                    Ok(next) => ino = next,
                    Err(_) => break,
                }
            }
        }
        self.shards.write()[idx] = dlfs;
    }

    fn entry_of(&self, ino: Ino) -> FsResult<(String, usize)> {
        self.paths
            .read()
            .get(&ino)
            .cloned()
            .ok_or_else(|| FsError::Io(format!("sharded dlfs: no cached path for inode {ino}")))
    }

    /// Primes every non-owner shard's DLFS cache with directory `name`
    /// under `parent`, so later lookups below it resolve on any shard.
    fn prime_directory(&self, parent: Ino, name: &str, owner: usize) {
        let shards: Vec<Arc<Dlfs>> = self.shards.read().clone();
        for (i, shard) in shards.iter().enumerate() {
            if i != owner {
                let _ = shard.fs_lookup(&ROOT, parent, name);
            }
        }
    }
}

impl FileSystem for ShardedFs {
    fn root(&self) -> Ino {
        self.inner.root()
    }

    fn fs_lookup(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<Ino> {
        let (real_name, _token) = dl_dlfm::split_token_suffix(name);
        let (parent_path, _) = self.entry_of(parent)?;
        let full_path = fspath::join(&parent_path, real_name);
        let owner = self.router.shard_of(&full_path);
        // The owner sees the full name — token validation happens at the
        // shard that holds the link.
        let ino = self.shard(owner).fs_lookup(cred, parent, name)?;
        self.paths.write().insert(ino, (full_path, owner));
        if let Ok(attr) = self.inner.fs_getattr(&ROOT, ino) {
            if attr.kind == FileKind::Dir {
                self.prime_directory(parent, real_name, owner);
            }
        }
        Ok(ino)
    }

    fn fs_getattr(&self, cred: &Cred, ino: Ino) -> FsResult<FileAttr> {
        self.inner.fs_getattr(cred, ino)
    }

    fn fs_setattr(&self, cred: &Cred, ino: Ino, set: &SetAttr) -> FsResult<FileAttr> {
        let (_, owner) = self.entry_of(ino)?;
        self.shard(owner).fs_setattr(cred, ino, set)
    }

    fn fs_create(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        let (parent_path, _) = self.entry_of(parent)?;
        let full_path = fspath::join(&parent_path, name);
        let owner = self.router.shard_of(&full_path);
        let ino = self.shard(owner).fs_create(cred, parent, name, mode)?;
        self.paths.write().insert(ino, (full_path, owner));
        Ok(ino)
    }

    fn fs_mkdir(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        let (parent_path, _) = self.entry_of(parent)?;
        let full_path = fspath::join(&parent_path, name);
        let owner = self.router.shard_of(&full_path);
        let ino = self.shard(owner).fs_mkdir(cred, parent, name, mode)?;
        self.paths.write().insert(ino, (full_path, owner));
        self.prime_directory(parent, name, owner);
        Ok(ino)
    }

    fn fs_open(&self, cred: &Cred, ino: Ino, flags: OpenFlags) -> FsResult<()> {
        let (_, owner) = self.entry_of(ino)?;
        self.shard(owner).fs_open(cred, ino, flags)
    }

    fn fs_close(&self, cred: &Cred, ino: Ino, flags: OpenFlags, written: bool) -> FsResult<()> {
        let (_, owner) = self.entry_of(ino)?;
        self.shard(owner).fs_close(cred, ino, flags, written)
    }

    fn fs_read(&self, cred: &Cred, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.inner.fs_read(cred, ino, offset, buf)
    }

    fn fs_write(&self, cred: &Cred, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.inner.fs_write(cred, ino, offset, data)
    }

    fn fs_remove(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        let (parent_path, _) = self.entry_of(parent)?;
        let owner = self.router.shard_of(&fspath::join(&parent_path, name));
        self.shard(owner).fs_remove(cred, parent, name)
    }

    fn fs_rmdir(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        self.inner.fs_rmdir(cred, parent, name)
    }

    fn fs_rename(
        &self,
        cred: &Cred,
        parent: Ino,
        name: &str,
        new_parent: Ino,
        new_name: &str,
    ) -> FsResult<()> {
        // The *old* path's owner holds any link and vetoes the rename.
        let (parent_path, _) = self.entry_of(parent)?;
        let owner = self.router.shard_of(&fspath::join(&parent_path, name));
        self.shard(owner).fs_rename(cred, parent, name, new_parent, new_name)?;
        // Re-key the moved inode under the new path's owner.
        let (new_parent_path, _) = self.entry_of(new_parent)?;
        let new_path = fspath::join(&new_parent_path, new_name);
        let new_owner = self.router.shard_of(&new_path);
        if let Ok(ino) = self.shard(new_owner).fs_lookup(&ROOT, new_parent, new_name) {
            self.paths.write().insert(ino, (new_path, new_owner));
        }
        Ok(())
    }

    fn fs_readdir(&self, cred: &Cred, ino: Ino) -> FsResult<Vec<DirEntry>> {
        self.inner.fs_readdir(cred, ino)
    }

    fn fs_lockctl(&self, cred: &Cred, ino: Ino, owner: LockOwner, op: LockOp) -> FsResult<bool> {
        self.inner.fs_lockctl(cred, ino, owner, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_across_router_rebuilds() {
        let a = ShardRouter::new("srv", 4);
        let b = ShardRouter::new("srv", 4);
        for i in 0..256 {
            let path = format!("/data/file{i:04}.bin");
            assert_eq!(a.shard_of(&path), b.shard_of(&path));
        }
    }

    #[test]
    fn route_counts_per_shard_decisions() {
        let r = ShardRouter::new("srv", 2);
        let idx = r.shard_of("/data/x.bin");
        assert_eq!(r.route("/data/x.bin"), ShardRouter::shard_name("srv", idx));
        assert_eq!(r.routed(idx), 1);
        assert_eq!(r.routed(1 - idx), 0);
    }

    #[test]
    fn single_shard_routes_everything_to_shard_zero() {
        let r = ShardRouter::new("srv", 1);
        for i in 0..32 {
            assert_eq!(r.shard_of(&format!("/f{i}")), 0);
        }
    }
}
