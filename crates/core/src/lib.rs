//! # DataLinks with update in-place — the paper's contribution
//!
//! Reproduction of *"Database Managed External File Update"* (Neeraj Mittal
//! and Hui-I Hsiao, ICDE 2001): an extension of IBM's DataLinks technology
//! that lets a relational database manage **in-place updates** to files
//! living in ordinary file systems, with ACID semantics spanning both the
//! file data and its metadata.
//!
//! The pieces, mapped to the paper:
//!
//! | paper concept | here |
//! |---|---|
//! | DATALINK data type (§2.1) | [`DatalinkUrl`], `dl_minidb::Value::DataLink` |
//! | control modes incl. new `rfd`/`rdd` (Table 1, §2.4) | `dl_dlfm::ControlMode` |
//! | DataLinks engine in the RDBMS (§2.2) | [`DataLinksEngine`] |
//! | DLFM daemon complex (§2.2) | `dl_dlfm` |
//! | DLFS interposition layer (§2.3) | `dl_dlfs` |
//! | access tokens (§4.1) | `dl_dlfm::AccessToken`, [`DataLinksEngine::token_path`] |
//! | update in-place: open = begin, close = commit (§3.1, §4.2) | the DLFS/DLFM open/close protocol |
//! | metadata consistency (§4.3) | `__dl_meta` + observer-injected DML |
//! | coordinated backup & restore (§4.4) | [`DataLinksSystem::backup`] / [`DataLinksSystem::restore`] |
//! | sync of access with (un)link (§4.5) | the Sync table + strict-link extension |
//!
//! ## Quick start
//!
//! ```
//! use dl_core::{DataLinksSystem, DlColumnOptions};
//! use dl_dlfm::{ControlMode, TokenKind};
//! use dl_fskit::{Cred, OpenOptions};
//! use dl_minidb::{Column, ColumnType, Schema, Value};
//!
//! let sys = DataLinksSystem::builder().file_server("srv1").build().unwrap();
//!
//! // A file lives in the file system...
//! let alice = Cred::user(100);
//! let raw = sys.raw_fs("srv1").unwrap();
//! raw.mkdir_p(&Cred::root(), "/movies", 0o777).unwrap();
//! raw.write_file(&alice, "/movies/clip.mpg", b"movie bits").unwrap();
//!
//! // ...and a table references it through a DATALINK column.
//! sys.create_table(Schema::new(
//!     "movies",
//!     vec![
//!         Column::new("id", ColumnType::Int),
//!         Column::nullable("clip", ColumnType::DataLink),
//!     ],
//!     "id",
//! ).unwrap()).unwrap();
//! sys.define_datalink_column("movies", "clip", DlColumnOptions::new(ControlMode::Rdd))
//!     .unwrap();
//!
//! // Linking happens transactionally with the INSERT.
//! let mut tx = sys.begin();
//! tx.insert("movies", vec![
//!     Value::Int(1),
//!     Value::DataLink("dlfs://srv1/movies/clip.mpg".into()),
//! ]).unwrap();
//! tx.commit().unwrap();
//!
//! // Retrieve the reference with a write token and update the file
//! // in place through the ordinary file API: open = begin, close = commit.
//! let (_url, path) = sys
//!     .select_datalink("movies", &Value::Int(1), "clip", TokenKind::Write)
//!     .unwrap();
//! let fs = sys.fs("srv1").unwrap();
//! let fd = fs.open(&alice, &path, OpenOptions::write_truncate()).unwrap();
//! fs.write(fd, b"better movie bits").unwrap();
//! fs.close(fd).unwrap();
//!
//! // The metadata row moved with the file, atomically.
//! let meta = sys.engine().file_meta(&_url).unwrap();
//! assert_eq!(meta.2, 2, "version bumped by the committed update");
//! ```

pub mod datalink;
pub mod engine;
pub mod shard;
pub mod system;

pub use datalink::{DatalinkUrl, DlColumnOptions, SCHEME};
pub use engine::{
    DataLinksEngine, EngineStats, LagEwma, ServerRegistration, COLUMNS_TABLE, FRESHNESS_WAIT,
    FRESHNESS_WAIT_FLOOR, META_TABLE,
};
pub use shard::{ShardRouter, ShardedFs};
pub use system::{
    CrashImage, DataLinksSystem, FileServerNode, FileServerSpec, HostFailoverReport, SystemBackup,
    SystemBuilder, SystemRestoreReport,
};

// Re-export the vocabulary types users need.
pub use dl_dlfm::{AccessControl, ControlMode, OnUnlink, TokenKind};
pub use dl_repl::{
    EpochFence, HostReplicaSet, HostStandby, ReplError, ReplicaSet, Replicator, Standby,
};
