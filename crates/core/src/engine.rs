//! The DataLinks engine — the RDBMS extension (§2, Figure 1).
//!
//! The engine hooks the host database's DML path: "whenever a reference to
//! a file is inserted or deleted from a DATALINK column, DataLinks engine
//! contacts the appropriate DLFM directing it to start (link) or stop
//! (unlink) managing the file" (§2.2). It also:
//!
//! * generates multi-type access tokens when a DATALINK value is retrieved
//!   (§4.1) using the per-server shared secret;
//! * maintains the `__dl_meta` system table (file size, modification time,
//!   version) *within the same transaction context* as the triggering
//!   statement (§4.3), via observer-injected DML;
//! * serves as DLFM's [`HostHook`]: close processing runs its metadata
//!   refresh through a host transaction here, and crash recovery asks it
//!   for host-transaction outcomes.

use std::collections::HashMap;
use std::sync::Arc;

use dl_dlfm::{
    AccessToken, AgentConnection, AgentParticipant, ControlMode, DlfmServer, HostHook, OnUnlink,
    TokenKind,
};
use dl_fskit::Clock;
use dl_minidb::{
    Column, ColumnType, Database, DbResult, DmlEvent, DmlObserver, InjectedDml, Lsn, Row, Schema,
    Value,
};
use dl_repl::ReplicaSet;
use parking_lot::{Mutex, RwLock};

use crate::datalink::{DatalinkUrl, DlColumnOptions};
use crate::shard::ShardRouter;

/// System table holding per-file metadata (§4.3).
pub const META_TABLE: &str = "__dl_meta";
/// System table persisting DATALINK column definitions.
pub const COLUMNS_TABLE: &str = "__dl_columns";

/// Ceiling of the freshness-token catch-up wait: no read ever waits on a
/// standby longer than this before falling back to the primary. Until PR 5
/// this was the *fixed* wait; now it only caps the adaptive bound
/// ([`LagEwma`]), so a persistently lagging set degrades exactly to the
/// old behaviour while a healthy set costs readers microseconds.
pub const FRESHNESS_WAIT: std::time::Duration = std::time::Duration::from_millis(25);

/// Floor of the adaptive freshness wait: even a perfectly caught-up set
/// keeps a small window to ride out a ship-daemon scheduling hiccup.
pub const FRESHNESS_WAIT_FLOOR: std::time::Duration = std::time::Duration::from_micros(500);

/// EWMA of observed replication lag, measured where the engine actually
/// feels it: how long a freshness-token read had to wait for its picked
/// standby to reach the caller's write LSN (a timed-out wait records the
/// full bound — a saturated observation, since the true lag exceeded it).
/// The wait bound for the next read is `4 x EWMA`, clamped to
/// [`FRESHNESS_WAIT_FLOOR`] .. [`FRESHNESS_WAIT`]: healthy sets converge
/// to the floor, stalled sets back off to the PR 4 fixed wait.
pub struct LagEwma {
    lag: dl_dlfm::AtomicEwma,
}

impl Default for LagEwma {
    fn default() -> Self {
        // Seed at ceiling/4 so the very first reads use the conservative
        // PR 4 bound and adapt *down* from evidence, never up from hope.
        LagEwma { lag: dl_dlfm::AtomicEwma::seeded(FRESHNESS_WAIT / 4) }
    }
}

impl LagEwma {
    /// Folds one observed catch-up wait in (alpha = 1/4).
    fn record(&self, observed: std::time::Duration) {
        self.lag.record(observed, 2);
    }

    /// Smoothed lag estimate.
    pub fn current(&self) -> std::time::Duration {
        self.lag.current()
    }

    /// The wait bound the next freshness read should use.
    pub fn bound(&self) -> std::time::Duration {
        (self.current() * 4).clamp(FRESHNESS_WAIT_FLOOR, FRESHNESS_WAIT)
    }
}

/// Engine operation counters (and the freshness-wait distribution).
#[derive(Debug, Default)]
pub struct EngineStats {
    pub links: dl_obs::Counter,
    pub unlinks: dl_obs::Counter,
    pub tokens_generated: dl_obs::Counter,
    pub meta_updates: dl_obs::Counter,
    /// Read validations/reads routed to replicas (vs the primary).
    pub replica_routed: dl_obs::Counter,
    pub primary_routed: dl_obs::Counter,
    /// Replica-routed reads whose *content* fell back to the primary
    /// because the picked standby had not applied the link/version yet
    /// (replication lag; validation still happened at the replica).
    pub replica_fallbacks: dl_obs::Counter,
    /// Freshness-token reads whose picked standby caught up within the
    /// wait window and served the read itself.
    pub freshness_waits: dl_obs::Counter,
    /// Freshness-token reads rerouted to the primary because the picked
    /// standby stayed behind the token past the wait window.
    pub freshness_fallbacks: dl_obs::Counter,
    /// How long freshness-token reads stalled for the standby to catch up:
    /// the elapsed wait when it did, the full window when it timed out.
    pub freshness_wait_ns: dl_obs::Histogram,
}

/// A file server known to the engine.
pub struct ServerRegistration {
    pub name: String,
    /// Agent connection carrying link/unlink requests (and 2PC) — the
    /// in-process [`dl_dlfm::AgentHandle`] or a wire connection; the
    /// engine speaks the trait and cannot tell which.
    pub agent: Arc<dyn AgentConnection>,
    /// Shared token secret (matches the server's `DlfmConfig`).
    pub token_key: Vec<u8>,
    /// Direct handle for metadata stats (in-process shortcut for what the
    /// real system fetches over the agent connection).
    pub server: Arc<DlfmServer>,
    /// Hot standbys serving the routed read path, when provisioned.
    pub replication: Option<Arc<ReplicaSet>>,
    /// Width of the node's routed-read validation lane — the same
    /// capacity model as the node's front-end pools
    /// (`DlfmConfig::read_lane_width`). 1 reproduces the paper's
    /// one-validation-daemon prototype shape.
    pub read_lane_width: usize,
    /// Live width source overriding `read_lane_width`: sampled on every
    /// lane admission, so a lane driven by the node's pool-worker gauge
    /// widens as the elastic pools grow (`DlfmConfig::read_lane_auto`).
    pub read_lane_width_fn: Option<Arc<dyn Fn() -> usize + Send + Sync>>,
}

/// Per-registration read lane: the primary arm of the routed read path
/// admits at most `width` concurrent validations — the node's modelled
/// daemon capacity. At width 1 (the default) this is the paper's
/// prototype shape, serialized exactly like a replica's validation
/// daemon, so a10's replica-count sweep compares equal per-node capacity;
/// a wider front end (elastic upcall pool, shared agent executor) raises
/// the width through `DlfmConfig::read_lane_width`.
///
/// This is a deliberate *model*, not an accident: in-process, every
/// "node" shares one machine, so without a per-node capacity bound the
/// group-commit pipeline would batch all concurrent validations on the
/// primary and replica fan-out could never show its distributed-capacity
/// win. The lane applies only to the routed read path — the DLFS upcall
/// path (the elastic pool) is untouched.
struct ReadLane {
    width: LaneWidth,
    busy: Mutex<usize>,
    freed: parking_lot::Condvar,
}

/// Where a lane's width comes from: a fixed knob, or a live source
/// sampled on every admission (the node's pool-worker gauge, so the lane
/// tracks elastic pool growth — `DlfmConfig::read_lane_auto`).
enum LaneWidth {
    Fixed(usize),
    Live(Arc<dyn Fn() -> usize + Send + Sync>),
}

impl LaneWidth {
    fn current(&self) -> usize {
        match self {
            LaneWidth::Fixed(w) => *w,
            LaneWidth::Live(f) => f(),
        }
        .max(1)
    }
}

impl ReadLane {
    fn new(width: LaneWidth) -> ReadLane {
        ReadLane { width, busy: Mutex::new(0), freed: parking_lot::Condvar::new() }
    }

    fn acquire(self: &Arc<Self>) -> LaneGuard {
        let mut busy = self.busy.lock();
        while *busy >= self.width.current() {
            // Bounded wait, not a pure park: a live width can *grow*
            // without any permit being released, and nobody signals the
            // condvar when a pool spawns a worker — re-sample on a short
            // period so waiting readers observe the wider lane.
            self.freed.wait_for(&mut busy, std::time::Duration::from_millis(5));
        }
        *busy += 1;
        LaneGuard(Arc::clone(self))
    }
}

/// RAII permit on a [`ReadLane`].
struct LaneGuard(Arc<ReadLane>);

impl Drop for LaneGuard {
    fn drop(&mut self) {
        *self.0.busy.lock() -= 1;
        self.0.freed.notify_one();
    }
}

/// Registered DATALINK columns of one table: (index, name, options).
type TableDlColumns = Vec<(usize, String, DlColumnOptions)>;

/// The engine. Register it as an observer on the host database and as the
/// host hook on every DLFM.
pub struct DataLinksEngine {
    db: Database,
    clock: Arc<dyn Clock>,
    servers: RwLock<HashMap<String, ServerRegistration>>,
    columns: RwLock<HashMap<String, TableDlColumns>>,
    read_lanes: RwLock<HashMap<String, Arc<ReadLane>>>,
    /// Observed replication lag per server. Keyed separately from the
    /// registration so the estimate survives failover re-registration —
    /// the new primary's standbys start from the learned bound, not the
    /// conservative seed.
    lag_ewmas: RwLock<HashMap<String, Arc<LagEwma>>>,
    /// Shard routers of *logical* servers whose namespace is partitioned
    /// across several registered shard nodes. A DATALINK URL names the
    /// logical server; the router resolves it (plus the file path) to the
    /// shard registration that owns the link.
    routers: RwLock<HashMap<String, Arc<ShardRouter>>>,
    /// Coordinator-side trace ring: the DML interception and metadata
    /// commits that open/close each 2PC cycle (the DLFM servers record the
    /// participant side into their own rings).
    recorder: Arc<dl_obs::FlightRecorder>,
    pub stats: EngineStats,
}

impl DataLinksEngine {
    /// Creates (or re-attaches after recovery) the engine on `db`: ensures
    /// the system tables, loads persisted DATALINK column definitions, and
    /// registers the DML observer.
    pub fn install(db: Database, clock: Arc<dyn Clock>) -> DbResult<Arc<DataLinksEngine>> {
        Self::ensure_tables(&db)?;
        let engine = Arc::new(DataLinksEngine {
            db: db.clone(),
            clock,
            servers: RwLock::new(HashMap::new()),
            columns: RwLock::new(HashMap::new()),
            read_lanes: RwLock::new(HashMap::new()),
            lag_ewmas: RwLock::new(HashMap::new()),
            routers: RwLock::new(HashMap::new()),
            recorder: Arc::new(dl_obs::FlightRecorder::new(256)),
            stats: EngineStats::default(),
        });
        engine.load_column_registry()?;
        db.register_observer(engine.clone());
        Ok(engine)
    }

    fn ensure_tables(db: &Database) -> DbResult<()> {
        if !db.has_table(META_TABLE) {
            db.create_table(
                Schema::new(
                    META_TABLE,
                    vec![
                        Column::new("url", ColumnType::Text),
                        Column::new("size", ColumnType::Int),
                        Column::new("mtime", ColumnType::Int),
                        Column::new("version", ColumnType::Int),
                    ],
                    "url",
                )
                .expect("static schema"),
            )?;
        }
        if !db.has_table(COLUMNS_TABLE) {
            db.create_table(
                Schema::new(
                    COLUMNS_TABLE,
                    vec![
                        Column::new("colkey", ColumnType::Text),
                        Column::new("tbl", ColumnType::Text),
                        Column::new("col", ColumnType::Text),
                        Column::new("mode", ColumnType::Text),
                        Column::new("recovery", ColumnType::Bool),
                        Column::new("on_unlink", ColumnType::Text),
                        Column::new("token_ttl_ms", ColumnType::Int),
                    ],
                    "colkey",
                )
                .expect("static schema"),
            )?;
        }
        Ok(())
    }

    fn load_column_registry(&self) -> DbResult<()> {
        let mut columns: HashMap<String, TableDlColumns> = HashMap::new();
        for row in self.db.scan_committed(COLUMNS_TABLE)? {
            let table = row[1].as_text().unwrap_or_default().to_string();
            let column = row[2].as_text().unwrap_or_default().to_string();
            let Ok(schema) = self.db.schema(&table) else { continue };
            let Some(idx) = schema.column_index(&column) else { continue };
            let mode: ControlMode = match row[3].as_text().and_then(|s| s.parse().ok()) {
                Some(m) => m,
                None => continue,
            };
            let opts = DlColumnOptions {
                mode,
                recovery: matches!(row[4], Value::Bool(true)),
                on_unlink: match row[5].as_text() {
                    Some("delete") => OnUnlink::Delete,
                    _ => OnUnlink::Restore,
                },
                token_ttl_ms: row[6].as_int().unwrap_or(60_000) as u64,
            };
            columns.entry(table).or_default().push((idx, column, opts));
        }
        *self.columns.write() = columns;
        Ok(())
    }

    /// Registers a file server's agent connection and token secret.
    /// Re-registering a name replaces the previous registration — failover
    /// swaps the promoted server in this way.
    pub fn register_server(&self, reg: ServerRegistration) {
        let width = match &reg.read_lane_width_fn {
            Some(f) => LaneWidth::Live(Arc::clone(f)),
            None => LaneWidth::Fixed(reg.read_lane_width),
        };
        self.read_lanes.write().insert(reg.name.clone(), Arc::new(ReadLane::new(width)));
        self.lag_ewmas.write().entry(reg.name.clone()).or_default();
        self.servers.write().insert(reg.name.clone(), reg);
    }

    /// Points `server`'s read lane at a live width source (sampled per
    /// admission) — the width follows the node's real pool capacity
    /// instead of a static knob. Waiting readers observe growth within a
    /// few milliseconds (the lane re-samples its width source on every
    /// acquire and on a short poll while parked).
    pub fn set_read_lane_source(&self, server: &str, f: Arc<dyn Fn() -> usize + Send + Sync>) {
        self.read_lanes
            .write()
            .insert(server.to_string(), Arc::new(ReadLane::new(LaneWidth::Live(f))));
    }

    /// Registers the shard router of a partitioned logical server.
    /// Traffic addressed to `router.logical()` resolves per path to one of
    /// the shard registrations (which register under their shard names via
    /// [`DataLinksEngine::register_server`] as usual).
    pub fn register_router(&self, router: Arc<ShardRouter>) {
        self.routers.write().insert(router.logical().to_string(), router);
    }

    /// Resolves `server` (possibly a sharded logical name) plus the file
    /// `path` to the owning registration. `dml` marks a link/unlink
    /// routing decision, which the router counts for the
    /// `engine.shard.*.routed` metrics — token generation and reads
    /// resolve silently.
    fn resolve<'a>(
        &self,
        servers: &'a HashMap<String, ServerRegistration>,
        server: &str,
        path: &str,
        dml: bool,
    ) -> Result<&'a ServerRegistration, String> {
        if let Some(reg) = servers.get(server) {
            return Ok(reg);
        }
        let routers = self.routers.read();
        let Some(router) = routers.get(server) else {
            return Err(format!("unknown file server {server}"));
        };
        let shard = if dml {
            router.route(path).to_string()
        } else {
            router.name_of(router.shard_of(path)).to_string()
        };
        servers.get(&shard).ok_or_else(|| format!("shard {shard} of {server} is not registered"))
    }

    /// The adaptive freshness-wait bound currently in force for `server`
    /// (see [`LagEwma`]); `FRESHNESS_WAIT` when the server is unknown.
    pub fn freshness_bound(&self, server: &str) -> std::time::Duration {
        self.lag_ewmas.read().get(server).map(|e| e.bound()).unwrap_or(FRESHNESS_WAIT)
    }

    // --- routed read path (replica read routing) -------------------------------

    /// Validates a read token at a replica of `server` (round-robin) when
    /// standbys exist, at the primary otherwise. Writes never route here:
    /// the open/close update protocol stays on the primary.
    pub fn validate_read_token(
        &self,
        server: &str,
        path: &str,
        token: &str,
        uid: u32,
    ) -> Result<TokenKind, String> {
        self.route_read(server, path, token, uid, false, None).map(|(kind, _)| kind)
    }

    /// Validates and serves the last committed bytes of `path` through the
    /// routed read path: a standby's mirrored archive when replicated (the
    /// primary does no work at all), the primary's file system otherwise.
    pub fn serve_read(
        &self,
        server: &str,
        path: &str,
        token: &str,
        uid: u32,
    ) -> Result<Vec<u8>, String> {
        self.route_read(server, path, token, uid, true, None)
            .and_then(|(_, bytes)| bytes.ok_or_else(|| format!("no readable content for {path}")))
    }

    /// [`DataLinksEngine::serve_read`] with a *freshness token*: the commit
    /// LSN of the caller's last write against `server`'s repository
    /// (`DataLinksSystem::freshness_token`). The routed read then
    /// guarantees read-your-writes: the picked standby either catches up
    /// to `min_lsn` within [`FRESHNESS_WAIT`] or the read reroutes to the
    /// primary — it can never observe pre-write state.
    pub fn serve_read_fresh(
        &self,
        server: &str,
        path: &str,
        token: &str,
        uid: u32,
        min_lsn: Lsn,
    ) -> Result<Vec<u8>, String> {
        self.route_read(server, path, token, uid, true, Some(min_lsn))
            .and_then(|(_, bytes)| bytes.ok_or_else(|| format!("no readable content for {path}")))
    }

    /// `fetch` selects the two routed operations: token validation alone
    /// (cheap, content untouched — a valid token must validate even when
    /// the bytes are momentarily unservable) or validation + content.
    /// `min_lsn` is the read-your-writes freshness bound, if any.
    fn route_read(
        &self,
        server: &str,
        path: &str,
        token: &str,
        uid: u32,
        fetch: bool,
        min_lsn: Option<Lsn>,
    ) -> Result<(TokenKind, Option<Vec<u8>>), String> {
        let (mut replica, primary, node) = {
            let servers = self.servers.read();
            let reg = self.resolve(&servers, server, path, false)?;
            (
                reg.replication.as_ref().map(|set| Arc::clone(set.pick())),
                Arc::clone(&reg.server),
                reg.name.clone(),
            )
        };
        let node = node.as_str();
        // Read-your-writes: a standby that cannot reach the caller's write
        // LSN within the wait window is dropped from this read — the
        // primary (trivially fresh) serves it instead. The window follows
        // the observed lag (see `LagEwma`): a caught-up set costs readers
        // the floor, a stalled one backs off to the `FRESHNESS_WAIT`
        // ceiling — PR 4's fixed behaviour.
        if let (Some(standby), Some(min)) = (&replica, min_lsn) {
            let ewma = self.lag_ewmas.read().get(node).cloned().unwrap_or_default();
            let bound = ewma.bound();
            let started = std::time::Instant::now();
            if standby.wait_applied(min, bound) {
                ewma.record(started.elapsed());
                self.stats.freshness_wait_ns.record_duration(started.elapsed());
                self.stats.freshness_waits.inc();
            } else {
                // Saturated observation: the true lag exceeded the bound.
                ewma.record(bound);
                self.stats.freshness_wait_ns.record_duration(bound);
                self.stats.freshness_fallbacks.inc();
                replica = None;
            }
        }
        match replica {
            Some(standby) => {
                self.stats.replica_routed.inc();
                let kind = standby.validate_read_token(path, token, uid)?;
                let bytes = if fetch {
                    match standby.serve_read(path, uid) {
                        Ok(bytes) => Some(bytes),
                        // The standby is behind (link or version not yet
                        // applied/mirrored): a valid-token read must not
                        // fail on a healthy system — serve the content
                        // from the primary instead.
                        Err(_) => {
                            self.stats.replica_fallbacks.inc();
                            Some(primary.read_linked(path)?)
                        }
                    }
                } else {
                    None
                };
                Ok((kind, bytes))
            }
            None => {
                self.stats.primary_routed.inc();
                // Lane covers validation only, exactly like a replica's
                // (`Standby::validate_read_token`): content fetch is
                // unserialized on both arms, so the a10 replica-count
                // sweep compares equal per-node work.
                let kind = {
                    let lane = self.read_lanes.read().get(node).cloned();
                    let _permit = lane.as_ref().map(|l| l.acquire());
                    primary.validate_token(path, token, uid)?
                };
                let bytes = if fetch { Some(primary.read_linked(path)?) } else { None };
                Ok((kind, bytes))
            }
        }
    }

    /// Declares `table.column` to be a DATALINK column with `opts`.
    /// Persisted in `__dl_columns` so recovery can rebuild the registry.
    pub fn define_datalink_column(
        &self,
        table: &str,
        column: &str,
        opts: DlColumnOptions,
    ) -> DbResult<()> {
        let schema = self.db.schema(table)?;
        let idx = schema
            .column_index(column)
            .ok_or_else(|| dl_minidb::DbError::NoSuchColumn(column.to_string()))?;
        if schema.columns[idx].ty != ColumnType::DataLink {
            return Err(dl_minidb::DbError::SchemaMismatch(format!(
                "column {table}.{column} is not of type DATALINK"
            )));
        }
        let mut tx = self.db.begin();
        tx.insert(
            COLUMNS_TABLE,
            vec![
                Value::Text(format!("{table}.{column}")),
                Value::Text(table.to_string()),
                Value::Text(column.to_string()),
                Value::Text(opts.mode.to_string()),
                Value::Bool(opts.recovery),
                Value::Text(match opts.on_unlink {
                    OnUnlink::Restore => "restore".into(),
                    OnUnlink::Delete => "delete".into(),
                }),
                Value::Int(opts.token_ttl_ms as i64),
            ],
        )?;
        tx.commit()?;
        self.columns.write().entry(table.to_string()).or_default().push((
            idx,
            column.to_string(),
            opts,
        ));
        Ok(())
    }

    /// Options of a registered column, if any.
    pub fn column_options(&self, table: &str, column: &str) -> Option<DlColumnOptions> {
        self.columns
            .read()
            .get(table)?
            .iter()
            .find(|(_, name, _)| name == column)
            .map(|(_, _, opts)| *opts)
    }

    fn value_url(value: &Value) -> Result<Option<DatalinkUrl>, String> {
        match value {
            Value::Null => Ok(None),
            Value::DataLink(url) => DatalinkUrl::parse(url).map(Some),
            other => Err(format!("DATALINK column holds non-DATALINK value {other}")),
        }
    }

    /// Generates a token-embedded path for `url` (§4.1). The application
    /// opens this path through the ordinary file-system API.
    pub fn token_path(
        &self,
        url: &DatalinkUrl,
        kind: TokenKind,
        ttl_ms: u64,
    ) -> Result<String, String> {
        let servers = self.servers.read();
        let reg = self.resolve(&servers, &url.server, &url.path, false)?;
        // The token is signed with the *logical* server name — every shard
        // of a partitioned server validates under that name with the same
        // shared secret, so routing never invalidates a token.
        let token = AccessToken::generate(
            &reg.token_key,
            &url.server,
            &url.path,
            kind,
            self.clock.now_ms() + ttl_ms,
        );
        self.stats.tokens_generated.inc();
        Ok(dl_dlfm::embed_token(&url.path, &token))
    }

    /// Host-side metadata row for `url`, if present: (size, mtime, version).
    pub fn file_meta(&self, url: &DatalinkUrl) -> Option<(u64, u64, u64)> {
        let row =
            self.db.get_committed(META_TABLE, &Value::Text(url.to_string())).ok().flatten()?;
        Some((row[1].as_int()? as u64, row[2].as_int()? as u64, row[3].as_int()? as u64))
    }

    /// The host database this engine is attached to.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The coordinator-side flight recorder (dumped on crash/failover
    /// alongside the per-node DLFM rings).
    pub fn flight_recorder(&self) -> &Arc<dl_obs::FlightRecorder> {
        &self.recorder
    }
}

impl DmlObserver for DataLinksEngine {
    fn on_dml(&self, db: &Database, event: &DmlEvent<'_>) -> Result<(), String> {
        let columns = self.columns.read();
        let Some(dl_columns) = columns.get(event.table) else {
            return Ok(());
        };

        for (idx, _name, opts) in dl_columns {
            let old = event.before.map(|row| &row[*idx]).unwrap_or(&Value::Null);
            let new = event.after.map(|row| &row[*idx]).unwrap_or(&Value::Null);
            if old == new {
                continue;
            }
            let old_url = Self::value_url(old)?;
            let new_url = Self::value_url(new)?;

            let servers = self.servers.read();
            if let Some(url) = old_url {
                let reg = self.resolve(&servers, &url.server, &url.path, true)?;
                self.recorder.record(
                    "engine.host",
                    "dml",
                    event.txid,
                    &url.path,
                    format!("unlink server={}", reg.name),
                );
                reg.agent.unlink(event.txid, &url.path)?;
                // Enlisted under the *shard* name: a transaction touching
                // files on several shards holds one participant per shard
                // (the host dedupes by name), so prepare-all/decide-all
                // fans out across exactly the shards it touched.
                db.enlist_participant(
                    event.txid,
                    &format!("dlfm@{}", reg.name),
                    Arc::new(AgentParticipant(Arc::clone(&reg.agent))),
                );
                db.inject_dml(
                    event.txid,
                    InjectedDml::Delete {
                        table: META_TABLE.to_string(),
                        key: Value::Text(url.to_string()),
                    },
                );
                self.stats.unlinks.inc();
            }
            if let Some(url) = new_url {
                let reg = self.resolve(&servers, &url.server, &url.path, true)?;
                self.recorder.record(
                    "engine.host",
                    "dml",
                    event.txid,
                    &url.path,
                    format!("link server={} mode={:?}", reg.name, opts.mode),
                );
                reg.agent.link(event.txid, &url.path, opts.mode, opts.recovery, opts.on_unlink)?;
                db.enlist_participant(
                    event.txid,
                    &format!("dlfm@{}", reg.name),
                    Arc::new(AgentParticipant(Arc::clone(&reg.agent))),
                );
                let (size, mtime) = reg.server.stat_file(&url.path).unwrap_or((0, 0));
                db.inject_dml(
                    event.txid,
                    InjectedDml::Upsert {
                        table: META_TABLE.to_string(),
                        row: vec![
                            Value::Text(url.to_string()),
                            Value::Int(size as i64),
                            Value::Int(mtime as i64),
                            Value::Int(1),
                        ],
                    },
                );
                self.stats.links.inc();
            }
        }
        Ok(())
    }
}

/// DLFM's window back into the host database (§4.3–§4.4).
impl HostHook for DataLinksEngine {
    fn state_id(&self) -> u64 {
        self.db.state_id()
    }

    fn commit_file_update(
        &self,
        url: &str,
        new_size: u64,
        new_mtime: u64,
        new_version: u64,
        participant: Arc<dyn dl_minidb::Participant>,
    ) -> Result<Lsn, String> {
        let mut tx = self.db.begin();
        self.db.enlist_participant(tx.id(), &format!("dlfm-close:{url}"), participant);
        let key = Value::Text(url.to_string());
        let row: Row = vec![
            key.clone(),
            Value::Int(new_size as i64),
            Value::Int(new_mtime as i64),
            Value::Int(new_version as i64),
        ];
        let exists = tx.get_for_update(META_TABLE, &key).map_err(|e| e.to_string())?;
        let result = if exists.is_some() {
            tx.update(META_TABLE, &key, row)
        } else {
            tx.insert(META_TABLE, row)
        };
        result.map_err(|e| e.to_string())?;
        self.stats.meta_updates.inc();
        self.recorder.record(
            "engine.host",
            "commit_update",
            tx.id(),
            url,
            format!("size={new_size} version={new_version}"),
        );
        tx.commit().map_err(|e| e.to_string())
    }

    fn outcome(&self, host_txid: u64) -> Option<bool> {
        self.db.coordinator_outcome(host_txid)
    }
}
