//! The DATALINK data type (§2.1).
//!
//! "A DATALINK value contains a pointer to the external file in the format
//! of a URL — protocol://server-name/pathname/filename." The engine parses
//! these out of `Value::DataLink` columns; tokens are embedded into the
//! final path component when an authorized reference is handed to an
//! application (§4.1).

use std::fmt;
use std::str::FromStr;

use dl_dlfm::{ControlMode, OnUnlink};

/// URL scheme used by this reproduction's file servers.
pub const SCHEME: &str = "dlfs";

/// A parsed DATALINK URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DatalinkUrl {
    /// File-server name (resolves through the engine's server registry).
    pub server: String,
    /// Absolute path on that server.
    pub path: String,
}

impl DatalinkUrl {
    pub fn new(server: &str, path: &str) -> Result<DatalinkUrl, String> {
        if server.is_empty() || server.contains('/') {
            return Err(format!("invalid server name: {server:?}"));
        }
        if !path.starts_with('/') || path.len() < 2 {
            return Err(format!("invalid absolute path: {path:?}"));
        }
        Ok(DatalinkUrl { server: server.to_string(), path: path.to_string() })
    }

    /// Parses `dlfs://server/path/file`.
    pub fn parse(url: &str) -> Result<DatalinkUrl, String> {
        let rest = url
            .strip_prefix(SCHEME)
            .and_then(|r| r.strip_prefix("://"))
            .ok_or_else(|| format!("DATALINK URL must start with {SCHEME}://, got {url:?}"))?;
        let slash = rest.find('/').ok_or_else(|| format!("DATALINK URL missing path: {url:?}"))?;
        DatalinkUrl::new(&rest[..slash], &rest[slash..])
    }
}

impl fmt::Display for DatalinkUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{SCHEME}://{}{}", self.server, self.path)
    }
}

impl FromStr for DatalinkUrl {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DatalinkUrl::parse(s)
    }
}

/// Options attached to a DATALINK column definition (§2.1: "a range of
/// options can be specified for managing the files referenced in the
/// column such as integrity option, read permission, write permission and
/// recovery option").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlColumnOptions {
    pub mode: ControlMode,
    /// Keep every committed version in the archive for coordinated
    /// point-in-time restore (RECOVERY YES).
    pub recovery: bool,
    pub on_unlink: OnUnlink,
    /// Lifetime of generated access tokens.
    pub token_ttl_ms: u64,
}

impl DlColumnOptions {
    pub fn new(mode: ControlMode) -> DlColumnOptions {
        DlColumnOptions { mode, recovery: true, on_unlink: OnUnlink::Restore, token_ttl_ms: 60_000 }
    }

    pub fn recovery(mut self, yes: bool) -> Self {
        self.recovery = yes;
        self
    }

    pub fn on_unlink(mut self, action: OnUnlink) -> Self {
        self.on_unlink = action;
        self
    }

    pub fn token_ttl_ms(mut self, ttl: u64) -> Self {
        self.token_ttl_ms = ttl;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let url = DatalinkUrl::parse("dlfs://srv1/movies/clip.mpg").unwrap();
        assert_eq!(url.server, "srv1");
        assert_eq!(url.path, "/movies/clip.mpg");
        assert_eq!(url.to_string(), "dlfs://srv1/movies/clip.mpg");
        assert_eq!("dlfs://s/p".parse::<DatalinkUrl>().unwrap().path, "/p");
    }

    #[test]
    fn rejects_malformed_urls() {
        assert!(DatalinkUrl::parse("http://srv/f").is_err());
        assert!(DatalinkUrl::parse("dlfs://").is_err());
        assert!(DatalinkUrl::parse("dlfs://srv").is_err());
        assert!(DatalinkUrl::parse("dlfs:///f").is_err());
        assert!(DatalinkUrl::new("s", "relative").is_err());
        assert!(DatalinkUrl::new("s", "/").is_err());
    }

    #[test]
    fn options_builder() {
        let opts = DlColumnOptions::new(ControlMode::Rfd)
            .recovery(false)
            .on_unlink(OnUnlink::Delete)
            .token_ttl_ms(5);
        assert_eq!(opts.mode, ControlMode::Rfd);
        assert!(!opts.recovery);
        assert_eq!(opts.on_unlink, OnUnlink::Delete);
        assert_eq!(opts.token_ttl_ms, 5);
    }
}
