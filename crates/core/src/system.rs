//! The assembled DataLinks system (Figure 1 of the paper): one host
//! database with the DataLinks engine, plus any number of file-server nodes
//! each running the full DLFM/DLFS stack.
//!
//! "Enterprises can manage files on multiple distinct file servers within a
//! DataLinks database, allowing robust centralized control over distributed
//! resources" (§1) — [`SystemBuilder`] wires N nodes to one host database.
//!
//! The facade also owns the whole-system failure model: [`DataLinksSystem::crash`]
//! tears everything down keeping only what would survive a power cut (disks:
//! storage environments, physical file systems, archive stores), and
//! [`DataLinksSystem::recover`] rebuilds and runs the coordinated recovery
//! protocol (§4.2, §4.4).

use std::collections::HashMap;
use std::sync::Arc;

use dl_dlfm::{
    AgentHandle, ArchiveStore, DlfmConfig, DlfmServer, MainDaemon, RecoveryReport, TokenKind,
    UpcallDaemon,
};
use dl_dlfs::{Dlfs, DlfsConfig};
use dl_fskit::memfs::IoModel;
use dl_fskit::{Clock, FileSystem, Lfs, MemFs, WallClock};
use dl_minidb::{Database, DbOptions, Lsn, Schema, StorageEnv, Txn, Value};

use crate::datalink::{DatalinkUrl, DlColumnOptions};
use crate::engine::{DataLinksEngine, ServerRegistration, META_TABLE};

/// Everything one file-server node runs (Figure 1, right-hand side).
pub struct FileServerNode {
    pub name: String,
    /// The physical file system (survives crashes — it is the disk).
    pub fs: Arc<MemFs>,
    /// The DLFM daemon complex.
    pub server: Arc<DlfmServer>,
    /// The DLFS interposition layer.
    pub dlfs: Arc<Dlfs>,
    /// Application-facing logical file system, mounted over DLFS.
    pub lfs: Arc<Lfs>,
    /// Root access to the raw physical file system (fixtures, admin).
    pub raw: Arc<Lfs>,
    repo_env: StorageEnv,
    dlfm_cfg: DlfmConfig,
    dlfs_cfg: DlfsConfig,
    main: MainDaemon,
    _upcall: UpcallDaemon,
}

impl FileServerNode {
    /// A fresh agent connection (per-database-connection in the paper).
    pub fn connect_agent(&self) -> AgentHandle {
        self.main.connect()
    }
}

/// Specification of one file server for the builder.
pub struct FileServerSpec {
    pub name: String,
    pub dlfm: DlfmConfig,
    pub dlfs: DlfsConfig,
    /// Simulated I/O cost model for the node's physical file system
    /// (zero-cost by default; benches use a disk-like model to reproduce
    /// the paper's CPU+I/O measurements).
    pub io: IoModel,
    /// Storage environment of the DLFM repository. Defaults to a plain
    /// in-memory environment; benches pass one with a sync latency so the
    /// repository's commit pipeline is measurable (`dlfm.db` carries the
    /// group-commit options themselves).
    pub repo_env: StorageEnv,
}

impl FileServerSpec {
    pub fn new(name: &str) -> FileServerSpec {
        FileServerSpec {
            name: name.to_string(),
            dlfm: DlfmConfig::new(name),
            dlfs: DlfsConfig::default(),
            io: IoModel::default(),
            repo_env: StorageEnv::mem(),
        }
    }
}

/// Builder for [`DataLinksSystem`].
pub struct SystemBuilder {
    host_env: StorageEnv,
    host_db: DbOptions,
    clock: Arc<dyn Clock>,
    servers: Vec<FileServerSpec>,
}

impl SystemBuilder {
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            host_env: StorageEnv::mem(),
            host_db: DbOptions::default(),
            clock: Arc::new(WallClock),
            servers: Vec::new(),
        }
    }

    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    pub fn host_env(mut self, env: StorageEnv) -> Self {
        self.host_env = env;
        self
    }

    /// Options for the host database — notably the commit pipeline
    /// (group commit vs per-commit sync). Survives crash/recover cycles.
    pub fn host_db_opts(mut self, opts: DbOptions) -> Self {
        self.host_db = opts;
        self
    }

    /// Adds a file server with default configurations.
    pub fn file_server(mut self, name: &str) -> Self {
        self.servers.push(FileServerSpec::new(name));
        self
    }

    /// Adds a file server with explicit configurations.
    pub fn file_server_with(mut self, spec: FileServerSpec) -> Self {
        self.servers.push(spec);
        self
    }

    pub fn build(self) -> Result<DataLinksSystem, String> {
        let mut parts = Vec::new();
        for spec in self.servers {
            let fs = Arc::new(MemFs::with_clock(Arc::clone(&self.clock)).with_io_model(spec.io));
            parts.push(NodeParts {
                name: spec.name,
                fs,
                repo_env: spec.repo_env,
                archive: Arc::new(ArchiveStore::new()),
                dlfm_cfg: spec.dlfm,
                dlfs_cfg: spec.dlfs,
            });
        }
        DataLinksSystem::assemble(self.host_env, self.host_db, self.clock, parts, false)
            .map(|(sys, _)| sys)
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The durable pieces of one node, as they survive a crash.
struct NodeParts {
    name: String,
    fs: Arc<MemFs>,
    repo_env: StorageEnv,
    archive: Arc<ArchiveStore>,
    dlfm_cfg: DlfmConfig,
    dlfs_cfg: DlfsConfig,
}

/// What survives a simulated whole-system crash: the disks.
pub struct CrashImage {
    host_env: StorageEnv,
    host_db: DbOptions,
    clock: Arc<dyn Clock>,
    nodes: Vec<NodeParts>,
    /// Open the host database only up to this LSN (point-in-time restore).
    stop_at_lsn: Option<Lsn>,
}

/// A transaction-consistent backup of the host database. File versions are
/// supplied by the (append-only) archive stores at restore time, so the
/// backup itself only carries the database image — exactly the paper's
/// architecture, where the archive server *is* the file backup.
pub struct SystemBackup {
    host_env: StorageEnv,
}

/// Outcome summary of a coordinated point-in-time restore.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SystemRestoreReport {
    pub files_rolled_back: u64,
    pub files_unlinked: u64,
    pub files_relinked: u64,
    pub missing_versions: Vec<(String, u64)>,
}

/// The assembled system.
pub struct DataLinksSystem {
    db: Database,
    engine: Arc<DataLinksEngine>,
    clock: Arc<dyn Clock>,
    host_env: StorageEnv,
    host_db: DbOptions,
    nodes: HashMap<String, FileServerNode>,
}

impl DataLinksSystem {
    fn assemble(
        host_env: StorageEnv,
        host_db: DbOptions,
        clock: Arc<dyn Clock>,
        parts: Vec<NodeParts>,
        run_recovery: bool,
    ) -> Result<(DataLinksSystem, HashMap<String, RecoveryReport>), String> {
        let db = Database::open_with(host_env.clone(), host_db).map_err(|e| e.to_string())?;
        let engine =
            DataLinksEngine::install(db.clone(), Arc::clone(&clock)).map_err(|e| e.to_string())?;

        let mut nodes = HashMap::new();
        let mut reports = HashMap::new();
        for part in parts {
            let server = Arc::new(DlfmServer::new(
                part.dlfm_cfg.clone(),
                part.fs.clone() as Arc<dyn FileSystem>,
                part.repo_env.clone(),
                Arc::clone(&part.archive),
                Arc::clone(&clock),
            )?);
            server.set_host_hook(engine.clone());
            if run_recovery {
                reports.insert(part.name.clone(), server.recover()?);
            }
            let (upcall, client) = UpcallDaemon::spawn(Arc::clone(&server));
            let dlfs =
                Arc::new(Dlfs::new(part.fs.clone() as Arc<dyn FileSystem>, client, part.dlfs_cfg));
            let lfs = Arc::new(Lfs::new(dlfs.clone() as Arc<dyn FileSystem>));
            let raw = Arc::new(Lfs::new(part.fs.clone() as Arc<dyn FileSystem>));
            let main = MainDaemon::new(Arc::clone(&server));
            engine.register_server(ServerRegistration {
                name: part.name.clone(),
                agent: main.connect(),
                token_key: part.dlfm_cfg.token_key.clone(),
                server: Arc::clone(&server),
            });
            nodes.insert(
                part.name.clone(),
                FileServerNode {
                    name: part.name,
                    fs: part.fs,
                    server,
                    dlfs,
                    lfs,
                    raw,
                    repo_env: part.repo_env,
                    dlfm_cfg: part.dlfm_cfg,
                    dlfs_cfg: part.dlfs_cfg,
                    main,
                    _upcall: upcall,
                },
            );
        }
        Ok((DataLinksSystem { db, engine, clock, host_env, host_db, nodes }, reports))
    }

    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    // --- accessors -----------------------------------------------------------

    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn engine(&self) -> &Arc<DataLinksEngine> {
        &self.engine
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    pub fn node(&self, name: &str) -> Result<&FileServerNode, String> {
        self.nodes.get(name).ok_or_else(|| format!("unknown file server {name}"))
    }

    /// Application-facing file system of a node (mounted over DLFS).
    pub fn fs(&self, name: &str) -> Result<Arc<Lfs>, String> {
        Ok(Arc::clone(&self.node(name)?.lfs))
    }

    /// Raw (root) file system of a node for fixtures and admin tasks.
    pub fn raw_fs(&self, name: &str) -> Result<Arc<Lfs>, String> {
        Ok(Arc::clone(&self.node(name)?.raw))
    }

    pub fn server_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.nodes.keys().cloned().collect();
        names.sort();
        names
    }

    /// Current database state identifier (§4.4).
    pub fn state_id(&self) -> Lsn {
        self.db.state_id()
    }

    // --- SQL-ish conveniences ---------------------------------------------------

    pub fn create_table(&self, schema: Schema) -> Result<(), String> {
        self.db.create_table(schema).map_err(|e| e.to_string())
    }

    pub fn define_datalink_column(
        &self,
        table: &str,
        column: &str,
        opts: DlColumnOptions,
    ) -> Result<(), String> {
        self.engine.define_datalink_column(table, column, opts).map_err(|e| e.to_string())
    }

    pub fn begin(&self) -> Txn {
        self.db.begin()
    }

    /// Retrieves the DATALINK value of `column` in the row at `key`,
    /// generating an access token of the requested kind — the paper's
    /// token-generating SELECT (§3.2, benchmark E1). Returns the parsed URL
    /// and the token-embedded path ready for `Lfs::open`.
    pub fn select_datalink(
        &self,
        table: &str,
        key: &Value,
        column: &str,
        kind: TokenKind,
    ) -> Result<(DatalinkUrl, String), String> {
        let url = self.select_datalink_url(table, key, column)?;
        let opts = self
            .engine
            .column_options(table, column)
            .ok_or_else(|| format!("{table}.{column} is not a DATALINK column"))?;
        let path = self.engine.token_path(&url, kind, opts.token_ttl_ms)?;
        Ok((url, path))
    }

    /// Retrieves the DATALINK value without token generation (the E1
    /// baseline arm).
    pub fn select_datalink_url(
        &self,
        table: &str,
        key: &Value,
        column: &str,
    ) -> Result<DatalinkUrl, String> {
        let schema = self.db.schema(table).map_err(|e| e.to_string())?;
        let idx = schema.column_index(column).ok_or_else(|| format!("no column {column}"))?;
        let row = self
            .db
            .get_committed(table, key)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("no row {key} in {table}"))?;
        match &row[idx] {
            Value::DataLink(url) => DatalinkUrl::parse(url),
            Value::Null => Err(format!("{table}.{column} is NULL for {key}")),
            other => Err(format!("unexpected value {other}")),
        }
    }

    // --- failure model -----------------------------------------------------------

    /// Simulates a whole-system crash: all volatile state (databases'
    /// caches, daemons, pending transactions, open descriptors) evaporates;
    /// what remains is the returned image of the disks.
    pub fn crash(self) -> CrashImage {
        let DataLinksSystem { db, engine, clock, host_env, host_db, nodes } = self;
        drop(engine);
        drop(db);
        let mut parts = Vec::new();
        for (_, node) in nodes {
            node.server.simulate_crash();
            parts.push(NodeParts {
                name: node.name,
                fs: node.fs,
                repo_env: node.repo_env,
                archive: Arc::clone(node.server.archive_store()),
                dlfm_cfg: node.dlfm_cfg,
                dlfs_cfg: node.dlfs_cfg,
            });
        }
        CrashImage { host_env, host_db, clock, nodes: parts, stop_at_lsn: None }
    }

    /// Rebuilds a system from a crash image and runs coordinated recovery:
    /// host database redo, DLFM in-doubt resolution against host outcomes,
    /// file-state reconciliation and in-flight update rollback.
    pub fn recover(
        image: CrashImage,
    ) -> Result<(DataLinksSystem, HashMap<String, RecoveryReport>), String> {
        let CrashImage { host_env, host_db, clock, nodes, stop_at_lsn } = image;
        if let Some(lsn) = stop_at_lsn {
            // Point-in-time open handled by restore(); plain recovery
            // ignores it.
            let _ = lsn;
        }
        Self::assemble(host_env, host_db, clock, nodes, true)
    }

    // --- coordinated backup / restore (§4.4) ---------------------------------------

    /// Takes a transaction-consistent backup of the host database. Archived
    /// file versions (RECOVERY YES columns) complete the picture at restore
    /// time.
    pub fn backup(&self) -> Result<SystemBackup, String> {
        Ok(SystemBackup { host_env: self.db.backup().map_err(|e| e.to_string())? })
    }

    /// Coordinated point-in-time restore: consumes the running system,
    /// restores the host database from `backup` to `lsn`, then brings every
    /// linked file to the version the restored database references (§4.4).
    pub fn restore(
        self,
        backup: &SystemBackup,
        lsn: Lsn,
    ) -> Result<(DataLinksSystem, SystemRestoreReport), String> {
        let image = self.crash();
        let CrashImage { host_db, clock, nodes, .. } = image;

        let restored_env = backup.host_env.fork().map_err(|e| e.to_string())?;
        let db = Database::open_with(
            restored_env.clone(),
            DbOptions { stop_at_lsn: Some(lsn), ..host_db },
        )
        .map_err(|e| e.to_string())?;
        // Re-serialize the restored state into a fresh environment so the
        // new system's log continues cleanly from the restored state.
        db.checkpoint().map_err(|e| e.to_string())?;
        drop(db);

        let (sys, _) = Self::assemble(restored_env, host_db, clock, nodes, true)?;
        let report = sys.reconcile_files_with_metadata()?;
        Ok((sys, report))
    }

    /// Brings every node's linked files in line with the restored
    /// `__dl_meta` table: rollback to archived versions, unlink files no
    /// longer referenced, re-link files whose links reappeared.
    fn reconcile_files_with_metadata(&self) -> Result<SystemRestoreReport, String> {
        let mut report = SystemRestoreReport::default();

        // Desired state per server from the restored metadata.
        let mut desired: HashMap<String, HashMap<String, u64>> = HashMap::new();
        for row in self.db.scan_committed(META_TABLE).map_err(|e| e.to_string())? {
            let url = DatalinkUrl::parse(row[0].as_text().unwrap_or_default())?;
            let version = row[3].as_int().unwrap_or(1) as u64;
            desired.entry(url.server).or_default().insert(url.path, version);
        }

        for (name, node) in &self.nodes {
            let want = desired.remove(name).unwrap_or_default();

            // Re-link files the restored database references but the
            // repository no longer knows (unlinked after the restore point).
            let known: std::collections::HashSet<String> =
                node.server.repository().list_files().into_iter().map(|f| f.path).collect();
            for path in want.keys() {
                if known.contains(path) {
                    continue;
                }
                let (mode, recovery, on_unlink) = self
                    .column_options_for_url(&DatalinkUrl::new(name, path)?)
                    .map(|o| (o.mode, o.recovery, o.on_unlink))
                    .unwrap_or((dl_dlfm::ControlMode::Rff, true, dl_dlfm::OnUnlink::Restore));
                let txid = u64::MAX - report.files_relinked; // synthetic restore txn
                node.server.link_file(txid, path, mode, recovery, on_unlink)?;
                node.server.prepare_host(txid)?;
                node.server.commit_host(txid);
                report.files_relinked += 1;
            }

            let outcome = node.server.restore_to_versions(&want)?;
            report.files_rolled_back += outcome.rolled_back;
            report.files_unlinked += outcome.unlinked;
            report.missing_versions.extend(outcome.missing_versions);
        }
        Ok(report)
    }

    /// Finds the column options governing `url` by scanning registered
    /// DATALINK columns of the restored database.
    fn column_options_for_url(&self, url: &DatalinkUrl) -> Option<DlColumnOptions> {
        let url_text = url.to_string();
        for row in self.db.scan_committed(crate::engine::COLUMNS_TABLE).ok()? {
            let table = row[1].as_text()?.to_string();
            let column = row[2].as_text()?.to_string();
            let schema = self.db.schema(&table).ok()?;
            let idx = schema.column_index(&column)?;
            let rows = self.db.scan_committed(&table).ok()?;
            if rows.iter().any(|r| matches!(&r[idx], Value::DataLink(u) if *u == url_text)) {
                return self.engine.column_options(&table, &column);
            }
        }
        None
    }
}
