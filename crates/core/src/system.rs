//! The assembled DataLinks system (Figure 1 of the paper): one host
//! database with the DataLinks engine, plus any number of file-server nodes
//! each running the full DLFM/DLFS stack.
//!
//! "Enterprises can manage files on multiple distinct file servers within a
//! DataLinks database, allowing robust centralized control over distributed
//! resources" (§1) — [`SystemBuilder`] wires N nodes to one host database.
//!
//! The facade also owns the whole-system failure model: [`DataLinksSystem::crash`]
//! tears everything down keeping only what would survive a power cut (disks:
//! storage environments, physical file systems, archive stores), and
//! [`DataLinksSystem::recover`] rebuilds and runs the coordinated recovery
//! protocol (§4.2, §4.4).
//!
//! With [`FileServerSpec::replicas`] a node additionally runs hot standbys:
//! a `dl_repl::Replicator` tails the primary repository's WAL and keeps N
//! standby repositories (plus mirrored archive stores) continuously
//! applied. The engine routes read-token validation and replica-served
//! reads across them round-robin; [`DataLinksSystem::fail_over`] promotes a
//! standby after a primary crash, fencing the old primary by epoch.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use dl_dlfm::{
    AgentConnection, AgentHandle, ArchiveStore, ContentSource, DlfmConfig, DlfmServer,
    FaultInjector, MainDaemon, PoolProbe, RecoveryReport, TokenKind, Transport, UpcallDaemon,
    WireAgent, WireConn, WireConnector, WireDaemon, WireUpcall,
};
use dl_dlfs::{Dlfs, DlfsConfig};
use dl_fskit::memfs::IoModel;
use dl_fskit::{Clock, Cred, FileSystem, Lfs, MemFs, WallClock};
use dl_minidb::{Database, DbOptions, Lsn, Schema, StorageEnv, Txn, Value};
use dl_obs::{NetStats, Registry};
use dl_repl::{HostReplicaSet, HostReplicaSetOptions, ReplicaSet, ReplicaSetOptions};
use parking_lot::Mutex;

use crate::datalink::{DatalinkUrl, DlColumnOptions};
use crate::engine::{DataLinksEngine, ServerRegistration, META_TABLE};
use crate::shard::{ShardRouter, ShardedFs};

/// The wire front of a `Transport::Socket` node: the server-side
/// [`WireDaemon`] listening on its Unix socket, plus the node-local
/// [`WireConnector`] the engine and DLFS connections were minted from
/// (extra client connections — scenario drivers, tests — ride the same
/// connector).
pub struct WireLink {
    pub daemon: WireDaemon,
    pub connector: Arc<WireConnector>,
}

impl WireLink {
    /// Opens a fresh framed connection to this node's wire daemon.
    pub fn connect(&self, client: &str) -> Result<Arc<WireConn>, String> {
        self.connector.connect(self.daemon.socket_path(), client)
    }
}

/// Everything one file-server node runs (Figure 1, right-hand side).
pub struct FileServerNode {
    pub name: String,
    /// The physical file system (survives crashes — it is the disk).
    pub fs: Arc<MemFs>,
    /// The DLFM daemon complex.
    pub server: Arc<DlfmServer>,
    /// The DLFS interposition layer.
    pub dlfs: Arc<Dlfs>,
    /// Application-facing logical file system, mounted over DLFS.
    pub lfs: Arc<Lfs>,
    /// Root access to the raw physical file system (fixtures, admin).
    pub raw: Arc<Lfs>,
    /// Hot standbys of the DLFM repository, when provisioned.
    pub replication: Option<Arc<ReplicaSet>>,
    /// The wire transport, when the node runs `Transport::Socket`: every
    /// engine/DLFS round-trip of this node crosses real framed sockets.
    pub wire: Option<WireLink>,
    repo_env: StorageEnv,
    dlfm_cfg: DlfmConfig,
    dlfs_cfg: DlfsConfig,
    replicas: usize,
    upcall_fault: Option<FaultInjector>,
    /// `(logical, idx, count)` when this node is one shard of a
    /// partitioned logical server; `None` for a plain node.
    shard: Option<(String, usize, usize)>,
    main: MainDaemon,
    upcall: UpcallDaemon,
}

impl FileServerNode {
    /// A fresh agent connection (per-database-connection in the paper).
    pub fn connect_agent(&self) -> AgentHandle {
        self.main.connect()
    }

    /// The node's wire front, when it runs `Transport::Socket`.
    pub fn wire(&self) -> Option<&WireLink> {
        self.wire.as_ref()
    }

    /// Live gauges of the node's elastic upcall pool (workers, queue
    /// depth, growth/shrink/panic counters).
    pub fn upcall_pool_stats(&self) -> &dl_dlfm::PoolStats {
        self.upcall.pool_stats()
    }

    /// The main daemon fronting agent connections (connection counts,
    /// executor thread gauges).
    pub fn main_daemon(&self) -> &MainDaemon {
        &self.main
    }

    /// Blocks until the node's upcall pool drains and every worker parks
    /// (or `timeout` elapses); returns whether it went idle. Test/bench
    /// helper: a panicking upcall delivers its failure to the waiting
    /// client *before* the worker finishes unwinding, so a metrics
    /// snapshot taken the moment the client returns can read the pool's
    /// panic counter one short.
    pub fn quiesce_upcalls(&self, timeout: Duration) -> bool {
        self.upcall.wait_idle(timeout)
    }
}

/// Specification of one file server for the builder.
pub struct FileServerSpec {
    pub name: String,
    pub dlfm: DlfmConfig,
    pub dlfs: DlfsConfig,
    /// Simulated I/O cost model for the node's physical file system
    /// (zero-cost by default; benches use a disk-like model to reproduce
    /// the paper's CPU+I/O measurements).
    pub io: IoModel,
    /// Storage environment of the DLFM repository. Defaults to a plain
    /// in-memory environment; benches pass one with a sync latency so the
    /// repository's commit pipeline is measurable (`dlfm.db` carries the
    /// group-commit options themselves).
    pub repo_env: StorageEnv,
    /// Number of hot-standby repositories fed by WAL shipping from this
    /// node's repository. Zero (the default) runs the node unreplicated —
    /// the paper's single-point-of-failure shape.
    pub replicas: usize,
    /// Fault-injection hook for the upcall daemon: called with every
    /// request before it is dispatched, on the pool worker's thread. A
    /// panic inside the hook exercises the pool's containment path (the
    /// caller sees a rejection, not a wedged daemon). `None` (the
    /// default) runs the daemon unhooked; the scenario lab arms this for
    /// kill-an-upcall-worker injections.
    pub upcall_fault: Option<FaultInjector>,
    /// Number of shard nodes this *logical* server's namespace is
    /// partitioned across. 1 (the default) builds the classic single
    /// node. With `n > 1`, the builder expands the spec into `n` full
    /// DLFM/DLFS nodes named `<name>.s0 .. <name>.s{n-1}`, all
    /// interposed on one shared physical file system; a [`ShardRouter`]
    /// hashes each file path to its owning shard and the engine fans 2PC
    /// out across exactly the shards a transaction touches. Each shard
    /// keeps its own repository, archive store and (with
    /// [`FileServerSpec::replicas`]) its own standbys.
    pub shards: usize,
}

impl FileServerSpec {
    pub fn new(name: &str) -> FileServerSpec {
        FileServerSpec {
            name: name.to_string(),
            dlfm: DlfmConfig::new(name),
            dlfs: DlfsConfig::default(),
            io: IoModel::default(),
            repo_env: StorageEnv::mem(),
            replicas: 0,
            upcall_fault: None,
            shards: 1,
        }
    }

    /// Provisions `n` hot standbys for this file server.
    pub fn replicas(mut self, n: usize) -> FileServerSpec {
        self.replicas = n;
        self
    }

    /// Partitions this server's namespace across `n` shard nodes (see
    /// [`FileServerSpec::shards`]).
    pub fn shards(mut self, n: usize) -> FileServerSpec {
        self.shards = n.max(1);
        self
    }

    /// Installs a fault-injection hook on the node's upcall daemon (see
    /// [`FileServerSpec::upcall_fault`]). The hook survives crash
    /// recovery and failover — the rebuilt node keeps the same injector.
    pub fn upcall_fault_injector(mut self, fault: FaultInjector) -> FileServerSpec {
        self.upcall_fault = Some(fault);
        self
    }

    /// Sizes the node's elastic front end in one stroke: the upcall pool
    /// grows between `min` and `max` workers, and the routed-read
    /// validation lane *follows the live pool size* — its width is the
    /// system's `pool.total_workers` gauge sampled on every admission
    /// (floor `min`), so a pool that grew under load widens the lane with
    /// it instead of pinning it to a static knob.
    pub fn front_end(mut self, min: usize, max: usize) -> FileServerSpec {
        self.dlfm.upcall_workers_min = min.max(1);
        self.dlfm.upcall_workers_max = max.max(min).max(1);
        self.dlfm.read_lane_width = min.max(1);
        self.dlfm.read_lane_auto = true;
        self
    }

    /// Selects the node's agent/upcall transport: in-process handles (the
    /// default) or real framed Unix-domain sockets served by a
    /// [`WireDaemon`].
    pub fn transport(mut self, transport: Transport) -> FileServerSpec {
        self.dlfm.transport = transport;
        self
    }
}

/// Builder for [`DataLinksSystem`].
pub struct SystemBuilder {
    host_env: StorageEnv,
    host_db: DbOptions,
    host_replicas: usize,
    clock: Arc<dyn Clock>,
    servers: Vec<FileServerSpec>,
}

impl SystemBuilder {
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            host_env: StorageEnv::mem(),
            host_db: DbOptions::default(),
            host_replicas: 0,
            clock: Arc::new(WallClock),
            servers: Vec::new(),
        }
    }

    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    pub fn host_env(mut self, env: StorageEnv) -> Self {
        self.host_env = env;
        self
    }

    /// Options for the host database — notably the commit pipeline
    /// (group commit vs per-commit sync). Survives crash/recover cycles.
    pub fn host_db_opts(mut self, opts: DbOptions) -> Self {
        self.host_db = opts;
        self
    }

    /// Provisions `n` hot standbys of the *host database*, fed by the same
    /// WAL-shipping stack the file-server repositories use. With standbys,
    /// [`DataLinksSystem::fail_over_host`] can promote one after a host
    /// crash — the coordinator is no longer the single point of failure.
    pub fn host_replicas(mut self, n: usize) -> Self {
        self.host_replicas = n;
        self
    }

    /// Adds a file server with default configurations.
    pub fn file_server(mut self, name: &str) -> Self {
        self.servers.push(FileServerSpec::new(name));
        self
    }

    /// Adds a file server with explicit configurations.
    pub fn file_server_with(mut self, spec: FileServerSpec) -> Self {
        self.servers.push(spec);
        self
    }

    pub fn build(self) -> Result<DataLinksSystem, String> {
        let mut parts = Vec::new();
        for spec in self.servers {
            let fs = Arc::new(MemFs::with_clock(Arc::clone(&self.clock)).with_io_model(spec.io));
            if spec.shards <= 1 {
                parts.push(NodeParts {
                    name: spec.name,
                    fs,
                    repo_env: spec.repo_env,
                    archive: Arc::new(ArchiveStore::new()),
                    dlfm_cfg: spec.dlfm,
                    dlfs_cfg: spec.dlfs,
                    replicas: spec.replicas,
                    upcall_fault: spec.upcall_fault,
                    shard: None,
                });
                continue;
            }
            // One logical server over N shard nodes: every shard
            // interposes on the same physical file system but runs its own
            // repository, archive store and standbys. The shard's DLFM
            // keeps the *logical* server name (tokens are signed and
            // validated under it); the node registers everywhere else —
            // engine, 2PC participant keys, metrics — under its shard name.
            for i in 0..spec.shards {
                let repo_env = if i == 0 {
                    spec.repo_env.clone()
                } else {
                    StorageEnv::mem_with_sync_latency(spec.repo_env.sync_latency_ns())
                };
                parts.push(NodeParts {
                    name: ShardRouter::shard_name(&spec.name, i),
                    fs: Arc::clone(&fs),
                    repo_env,
                    archive: Arc::new(ArchiveStore::new()),
                    dlfm_cfg: spec.dlfm.clone(),
                    dlfs_cfg: spec.dlfs,
                    replicas: spec.replicas,
                    upcall_fault: spec.upcall_fault.clone(),
                    shard: Some((spec.name.clone(), i, spec.shards)),
                });
            }
        }
        DataLinksSystem::assemble(
            self.host_env,
            self.host_db,
            self.host_replicas,
            0,
            self.clock,
            parts,
            false,
        )
        .map(|(sys, _)| sys)
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The durable pieces of one node, as they survive a crash.
struct NodeParts {
    name: String,
    fs: Arc<MemFs>,
    repo_env: StorageEnv,
    archive: Arc<ArchiveStore>,
    dlfm_cfg: DlfmConfig,
    dlfs_cfg: DlfsConfig,
    /// Standby count to re-provision. Standbys are rebuilt fresh after a
    /// crash: their envs re-ship from offset zero of the (recovered)
    /// primary log, the simplest correct re-seeding.
    replicas: usize,
    /// Upcall fault-injection hook; re-installed on every rebuild so an
    /// armed injector keeps firing across crash recovery and failover.
    upcall_fault: Option<FaultInjector>,
    /// `(logical, idx, count)` when this node is one shard of a
    /// partitioned logical server; recovery rebuilds the router and the
    /// sharded front from this.
    shard: Option<(String, usize, usize)>,
}

/// What survives a simulated whole-system crash: the disks.
pub struct CrashImage {
    host_env: StorageEnv,
    host_db: DbOptions,
    /// Host standby count to re-provision on recovery (rebuilt fresh, like
    /// the per-node standbys).
    host_replicas: usize,
    /// Coordinator generation to carry forward: recovery re-fences every
    /// node at this epoch so agent connections minted before the last host
    /// failover stay refused after the rebuild too.
    coord_epoch: u64,
    clock: Arc<dyn Clock>,
    nodes: Vec<NodeParts>,
    /// Open the host database only up to this LSN (point-in-time restore).
    stop_at_lsn: Option<Lsn>,
    /// The flight-recorder dump taken at the crash boundary — the last
    /// 2PC span events of every layer, for post-mortem reading.
    flight_dump: Option<String>,
}

impl CrashImage {
    /// The flight-recorder dump captured when the system crashed.
    pub fn flight_dump(&self) -> Option<&str> {
        self.flight_dump.as_deref()
    }
}

/// A transaction-consistent backup of the host database. File versions are
/// supplied by the (append-only) archive stores at restore time, so the
/// backup itself only carries the database image — exactly the paper's
/// architecture, where the archive server *is* the file backup.
pub struct SystemBackup {
    host_env: StorageEnv,
}

/// Outcome summary of a coordinated point-in-time restore.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SystemRestoreReport {
    pub files_rolled_back: u64,
    pub files_unlinked: u64,
    pub files_relinked: u64,
    pub missing_versions: Vec<(String, u64)>,
}

/// Splits `path;dltoken=<tok>` into `(path, token)`; a bare path is an
/// error — the routed read path is token-gated by construction.
fn split_embedded_token(token_path: &str) -> Result<(&str, &str), String> {
    match dl_dlfm::split_token_suffix(token_path) {
        (path, Some(token)) => Ok((path, token)),
        (path, None) => Err(format!("no access token embedded in {path}")),
    }
}

/// The host-side pieces a [`DataLinksSystem::crash_host`] leaves behind:
/// the frozen replica set holding the promotion target and the coordinator
/// generation the fence moved to.
struct HostOutage {
    replication: Arc<HostReplicaSet>,
    epoch: u64,
}

/// Outcome summary of a host failover ([`DataLinksSystem::fail_over_host`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HostFailoverReport {
    /// The coordinator generation the promoted host runs under.
    pub epoch: u64,
    /// DLFM sub-transactions left in doubt by the old coordinator's death,
    /// as `(server, host_txid, committed)` — resolved on promotion from
    /// the replicated WAL's outcomes (presumed abort when absent).
    pub in_doubt_resolved: Vec<(String, u64, bool)>,
}

/// Live worker-pool probes of every node, keyed by node name. The
/// aggregate `pool.total_*` gauges and the auto-width read lanes sample
/// it *live* — a pool that grew under load is visible at the very next
/// admission/snapshot, not at some later refresh. Failover replaces a
/// node's probes in place.
#[derive(Default)]
pub struct PoolRoster {
    pools: Mutex<HashMap<String, Vec<Arc<dyn PoolProbe>>>>,
}

impl PoolRoster {
    fn set(&self, node: &str, probes: Vec<Arc<dyn PoolProbe>>) {
        self.pools.lock().insert(node.to_string(), probes);
    }

    /// Workers currently alive across every registered pool.
    pub fn total_workers(&self) -> usize {
        self.pools.lock().values().flatten().map(|p| p.workers()).sum()
    }

    /// Jobs currently queued across every registered pool.
    pub fn total_queue_depth(&self) -> usize {
        self.pools.lock().values().flatten().map(|p| p.queue_depth()).sum()
    }
}

/// The assembled system.
pub struct DataLinksSystem {
    db: Database,
    engine: Arc<DataLinksEngine>,
    clock: Arc<dyn Clock>,
    host_env: StorageEnv,
    host_db: DbOptions,
    /// Host standby count to (re-)provision after crashes and failovers.
    host_replicas: usize,
    /// Hot standbys of the host database, when provisioned and the host is
    /// up. `None` while the host is down (see `host_outage`) or when the
    /// system runs the paper's unreplicated single-coordinator shape.
    host_replication: Option<Arc<HostReplicaSet>>,
    /// Present exactly while the host is crashed but not yet promoted.
    host_outage: Option<HostOutage>,
    /// Current coordinator generation (the host fence epoch).
    coord_epoch: u64,
    nodes: HashMap<String, FileServerNode>,
    /// Shard routers of logical servers built with
    /// [`FileServerSpec::shards`], keyed by logical name.
    routers: HashMap<String, Arc<ShardRouter>>,
    /// Application-facing sharded fronts (one namespace over all shards),
    /// keyed by logical name.
    shard_fronts: HashMap<String, Arc<Lfs>>,
    /// The sharded-front file systems themselves, for swapping a promoted
    /// shard's DLFS layer in after [`DataLinksSystem::fail_over`].
    sharded: HashMap<String, Arc<ShardedFs>>,
    /// The unified telemetry registry: every layer's counters, gauges and
    /// histograms under dotted names (`minidb.*`, `repl.*`, `dlfm.*`,
    /// `dlfs.*`, `engine.*`, `fskit.*`, `system.*`, `pool.*`).
    registry: Arc<Registry>,
    /// Live pool probes per node (see [`PoolRoster`]).
    pool_roster: Arc<PoolRoster>,
    /// The most recent flight-recorder dump (crash or failover), if any.
    last_flight_dump: Mutex<Option<String>>,
}

impl DataLinksSystem {
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        host_env: StorageEnv,
        host_db: DbOptions,
        host_replicas: usize,
        coord_epoch: u64,
        clock: Arc<dyn Clock>,
        parts: Vec<NodeParts>,
        run_recovery: bool,
    ) -> Result<(DataLinksSystem, HashMap<String, RecoveryReport>), String> {
        let db = Database::open_with(host_env.clone(), host_db).map_err(|e| e.to_string())?;
        let engine =
            DataLinksEngine::install(db.clone(), Arc::clone(&clock)).map_err(|e| e.to_string())?;

        let host_replication = if host_replicas > 0 {
            // Same shape as the per-node sets: after a recovery, checkpoint
            // first so the fresh standbys seed from an image and the
            // recovered log stays bounded.
            if run_recovery {
                db.checkpoint_and_truncate()
                    .map_err(|e| format!("post-recovery host checkpoint: {e}"))?;
            }
            let set = HostReplicaSet::build(
                db.replication_feed(),
                HostReplicaSetOptions {
                    replicas: host_replicas,
                    sync_latency_ns: host_env.sync_latency_ns(),
                    epoch: coord_epoch,
                },
            )?;
            Some(Arc::new(set))
        } else {
            None
        };

        let mut nodes = HashMap::new();
        let mut reports = HashMap::new();
        for part in parts {
            let name = part.name.clone();
            let (node, report) =
                Self::build_node(&engine, &clock, part, run_recovery, coord_epoch)?;
            if let Some(report) = report {
                reports.insert(name.clone(), report);
            }
            nodes.insert(name, node);
        }

        // Group shard nodes back under their logical servers: build the
        // router and the sharded front, and register the router with the
        // engine so DML/token/read traffic addressed to the logical name
        // resolves per path to the owning shard.
        let mut shard_counts: HashMap<String, usize> = HashMap::new();
        for node in nodes.values() {
            if let Some((logical, _, count)) = &node.shard {
                shard_counts.insert(logical.clone(), *count);
            }
        }
        let mut routers = HashMap::new();
        let mut shard_fronts = HashMap::new();
        let mut sharded = HashMap::new();
        for (logical, count) in shard_counts {
            let router = Arc::new(ShardRouter::new(&logical, count));
            let mut dlfs_shards = Vec::with_capacity(count);
            for i in 0..count {
                let shard = nodes
                    .get(&ShardRouter::shard_name(&logical, i))
                    .ok_or_else(|| format!("missing shard {i} of {logical}"))?;
                dlfs_shards.push(Arc::clone(&shard.dlfs));
            }
            let fs = Arc::clone(&nodes[&ShardRouter::shard_name(&logical, 0)].fs);
            let front = Arc::new(ShardedFs::new(
                fs as Arc<dyn FileSystem>,
                dlfs_shards,
                Arc::clone(&router),
            ));
            engine.register_router(Arc::clone(&router));
            shard_fronts.insert(
                logical.clone(),
                Arc::new(Lfs::new(Arc::clone(&front) as Arc<dyn FileSystem>)),
            );
            sharded.insert(logical.clone(), front);
            routers.insert(logical, router);
        }

        let registry = Arc::new(Registry::new());
        // Pre-create the system-wide failover counters so assertions can
        // reference them by name before the first failover happens.
        registry.counter("system.failovers");
        registry.counter("system.host_failovers");
        let sys = DataLinksSystem {
            db,
            engine,
            clock,
            host_env,
            host_db,
            host_replicas,
            host_replication,
            host_outage: None,
            coord_epoch,
            nodes,
            routers,
            shard_fronts,
            sharded,
            registry,
            pool_roster: Arc::new(PoolRoster::default()),
            last_flight_dump: Mutex::new(None),
        };
        sys.register_host_metrics();
        // The aggregate pool gauges read the roster live — registered as
        // functions, they reflect elastic growth at snapshot time without
        // any refresh pass.
        {
            let roster = Arc::clone(&sys.pool_roster);
            sys.registry
                .register_gauge_fn("pool.total_workers", move || roster.total_workers() as f64);
            let roster = Arc::clone(&sys.pool_roster);
            sys.registry.register_gauge_fn("pool.total_queue_depth", move || {
                roster.total_queue_depth() as f64
            });
        }
        let names: Vec<String> = sys.nodes.keys().cloned().collect();
        for name in &names {
            Self::register_node_metrics(&sys.registry, &sys.nodes[name]);
            sys.adopt_node_pools(name);
        }
        Ok((sys, reports))
    }

    /// Builds one file-server node from its durable parts: the DLFM server
    /// (running recovery when asked), the DLFS/LFS stack, the daemons, the
    /// engine registration, and — when provisioned — the replica set fed
    /// from the repository's WAL. Used by initial assembly, crash
    /// recovery, and failover promotion alike.
    fn build_node(
        engine: &Arc<DataLinksEngine>,
        clock: &Arc<dyn Clock>,
        part: NodeParts,
        run_recovery: bool,
        coord_epoch: u64,
    ) -> Result<(FileServerNode, Option<RecoveryReport>), String> {
        let server = Arc::new(DlfmServer::new(
            part.dlfm_cfg.clone(),
            part.fs.clone() as Arc<dyn FileSystem>,
            part.repo_env.clone(),
            Arc::clone(&part.archive),
            Arc::clone(clock),
        )?);
        server.set_host_hook(engine.clone());
        // Restore the coordinator fence *before* any agent connects, so the
        // connections below are minted at the current generation and any
        // connection minted under an older one stays refused.
        server.fence_coordinator(coord_epoch);
        let report = if run_recovery { Some(server.recover()?) } else { None };
        let (upcall, client) =
            UpcallDaemon::spawn_with_fault_injector(Arc::clone(&server), part.upcall_fault.clone());
        let main = MainDaemon::new(Arc::clone(&server));

        // Transport selection. Local hands the engine and DLFS in-process
        // handles — the fast path. Socket stands up the node's wire daemon
        // and mints real framed connections for both; from here down the
        // node is identical either way, because everything speaks the
        // `AgentConnection`/`UpcallTransport` traits.
        let (wire, agent, upcall_transport): (
            Option<WireLink>,
            Arc<dyn AgentConnection>,
            Arc<dyn dl_dlfm::UpcallTransport>,
        ) = match part.dlfm_cfg.transport {
            Transport::Local => (None, Arc::new(main.connect()), Arc::new(client)),
            Transport::Socket => {
                let daemon = WireDaemon::spawn(
                    Arc::clone(&server),
                    &main,
                    client,
                    Arc::new(NetStats::new()),
                )?;
                let connector =
                    Arc::new(WireConnector::new(&part.name, Arc::new(NetStats::new()))?);
                let agent = Arc::new(WireAgent(connector.connect(daemon.socket_path(), "engine")?));
                let upc = Arc::new(WireUpcall(connector.connect(daemon.socket_path(), "dlfs")?));
                (Some(WireLink { daemon, connector }), agent, upc)
            }
        };
        let dlfs = Arc::new(Dlfs::with_transport(
            part.fs.clone() as Arc<dyn FileSystem>,
            upcall_transport,
            part.dlfs_cfg,
        ));
        let lfs = Arc::new(Lfs::new(dlfs.clone() as Arc<dyn FileSystem>));
        let raw = Arc::new(Lfs::new(part.fs.clone() as Arc<dyn FileSystem>));

        let replication = if part.replicas > 0 {
            // Re-provisioning after a recovery or failover: checkpoint the
            // repository first, so the fresh standbys below catch up by
            // *delta* (install the image, tail the suffix) instead of
            // replaying the primary's whole history — and so the log the
            // promoted primary inherited stays bounded from the start.
            if run_recovery {
                server
                    .repository()
                    .db()
                    .checkpoint_and_truncate()
                    .map_err(|e| format!("post-recovery repository checkpoint: {e}"))?;
            }
            // Fallback content source: linked-but-never-updated files have
            // no archived version yet; the replica reads those from the
            // node's (surviving) physical file system.
            let fallback_fs = Lfs::new(part.fs.clone() as Arc<dyn FileSystem>);
            let fallback: ContentSource =
                Arc::new(move |path: &str| fallback_fs.read_file(&Cred::root(), path).ok());
            let set = ReplicaSet::build(
                server.repository().db().replication_feed(),
                ReplicaSetOptions {
                    replicas: part.replicas,
                    // The *logical* server name (== the node name except
                    // for shard nodes): standbys validate tokens, and
                    // tokens are signed under the logical name.
                    server_name: part.dlfm_cfg.server_name.clone(),
                    token_key: part.dlfm_cfg.token_key.clone(),
                    sync_latency_ns: part.repo_env.sync_latency_ns(),
                    clock: Arc::clone(clock),
                    fallback: Some(fallback),
                },
            )?;
            for standby in set.standbys() {
                part.archive.add_mirror(Arc::clone(standby.archive_store()));
            }
            Some(Arc::new(set))
        } else {
            None
        };

        engine.register_server(ServerRegistration {
            name: part.name.clone(),
            agent,
            token_key: part.dlfm_cfg.token_key.clone(),
            server: Arc::clone(&server),
            replication: replication.clone(),
            read_lane_width: part.dlfm_cfg.read_lane_width,
            read_lane_width_fn: None,
        });
        Ok((
            FileServerNode {
                name: part.name,
                fs: part.fs,
                server,
                dlfs,
                lfs,
                raw,
                replication,
                wire,
                repo_env: part.repo_env,
                dlfm_cfg: part.dlfm_cfg,
                dlfs_cfg: part.dlfs_cfg,
                replicas: part.replicas,
                upcall_fault: part.upcall_fault,
                shard: part.shard,
                main,
                upcall,
            },
            report,
        ))
    }

    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    // --- accessors -----------------------------------------------------------

    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn engine(&self) -> &Arc<DataLinksEngine> {
        &self.engine
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    pub fn node(&self, name: &str) -> Result<&FileServerNode, String> {
        self.nodes.get(name).ok_or_else(|| format!("unknown file server {name}"))
    }

    /// Application-facing file system of a node (mounted over DLFS). For a
    /// sharded logical server this is the sharded front: one namespace,
    /// with every operation routed to the owning shard's DLFS.
    pub fn fs(&self, name: &str) -> Result<Arc<Lfs>, String> {
        if let Some(front) = self.shard_fronts.get(name) {
            return Ok(Arc::clone(front));
        }
        Ok(Arc::clone(&self.node(name)?.lfs))
    }

    /// Raw (root) file system of a node for fixtures and admin tasks. For
    /// a sharded logical server all shards interpose on one physical file
    /// system, so any shard's raw handle is *the* raw handle.
    pub fn raw_fs(&self, name: &str) -> Result<Arc<Lfs>, String> {
        if self.routers.contains_key(name) {
            return Ok(Arc::clone(&self.node(&ShardRouter::shard_name(name, 0))?.raw));
        }
        Ok(Arc::clone(&self.node(name)?.raw))
    }

    /// The shard router of a logical server built with
    /// [`FileServerSpec::shards`], if any.
    pub fn shard_router(&self, logical: &str) -> Option<&Arc<ShardRouter>> {
        self.routers.get(logical)
    }

    pub fn server_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.nodes.keys().cloned().collect();
        names.sort();
        names
    }

    /// The node names `server` stands for: itself for a plain node, the
    /// shard nodes (in shard order) for a sharded logical server.
    fn member_names(&self, server: &str) -> Result<Vec<String>, String> {
        if self.nodes.contains_key(server) {
            Ok(vec![server.to_string()])
        } else if let Some(router) = self.routers.get(server) {
            Ok(router.names().to_vec())
        } else {
            Err(format!("unknown file server {server}"))
        }
    }

    /// Current database state identifier (§4.4).
    pub fn state_id(&self) -> Lsn {
        self.db.state_id()
    }

    // --- telemetry ---------------------------------------------------------------

    /// The unified telemetry registry. Components register themselves at
    /// assembly/failover time; prefer [`DataLinksSystem::metrics`] for a
    /// consistent merged view.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// One merged snapshot of every layer's metrics: host and repository
    /// minidb instances, WAL shipping, the DLFM daemon complexes, DLFS
    /// interposition, the engine's read routing, and the worker pools
    /// (refreshed from the live pools at call time).
    pub fn metrics(&self) -> dl_obs::Snapshot {
        self.refresh_pool_gauges();
        self.registry.snapshot()
    }

    /// [`DataLinksSystem::metrics`] rendered as Prometheus-style text
    /// exposition.
    pub fn metrics_text(&self) -> String {
        self.metrics().render_text()
    }

    /// [`FileServerNode::quiesce_upcalls`] across every node; returns
    /// whether all upcall pools went idle within their window. Call
    /// before snapshotting metrics whose value a just-delivered upcall
    /// failure may still be about to bump (the pool counts a contained
    /// panic only after the worker finishes unwinding).
    pub fn quiesce_upcalls(&self, timeout: Duration) -> bool {
        self.nodes.values().all(|n| n.quiesce_upcalls(timeout))
    }

    /// The most recent flight-recorder dump (taken on `crash`, `fail_over`
    /// or host failover), if one has been produced.
    pub fn last_flight_dump(&self) -> Option<String> {
        self.last_flight_dump.lock().clone()
    }

    /// Registers host-side instruments: the host database's WAL/checkpoint
    /// telemetry, the engine's routing stats, and host WAL shipping.
    /// Idempotent and re-entrant — host failover swaps the database and
    /// engine, so stale registrations are dropped by prefix first.
    fn register_host_metrics(&self) {
        let registry = &self.registry;
        registry.unregister_prefix("minidb.host");
        registry.unregister_prefix("engine");
        registry.unregister_prefix("repl.host");

        let wal = self.db.wal_telemetry();
        registry.register_histogram("minidb.host.fsync_ns", wal.fsync_ns);
        registry.register_histogram("minidb.host.wal_batch_frames", wal.batch_frames);
        let db_tel = self.db.telemetry();
        registry.register_histogram("minidb.host.checkpoint_ns", db_tel.checkpoint_ns);
        registry.register_gauge("minidb.host.checkpoint_bytes", db_tel.checkpoint_bytes);
        let db = self.db.clone();
        registry.register_gauge_fn("minidb.host.wal_retained_bytes", move || {
            db.wal_retained_bytes() as f64
        });

        let engine = Arc::clone(&self.engine);
        macro_rules! engine_counter {
            ($field:ident) => {{
                let e = Arc::clone(&engine);
                registry.register_counter_fn(concat!("engine.", stringify!($field)), move || {
                    e.stats.$field.get()
                });
            }};
        }
        engine_counter!(links);
        engine_counter!(unlinks);
        engine_counter!(tokens_generated);
        engine_counter!(meta_updates);
        engine_counter!(replica_routed);
        engine_counter!(primary_routed);
        engine_counter!(replica_fallbacks);
        engine_counter!(freshness_waits);
        engine_counter!(freshness_fallbacks);
        let e = Arc::clone(&engine);
        registry.register_histogram_fn("engine.freshness_wait_ns", move || {
            e.stats.freshness_wait_ns.snapshot()
        });

        // Per-shard routing decisions of every sharded logical server —
        // the balance evidence the a13 scenario and the routing/metrics
        // agreement proptest assert on.
        for (logical, router) in &self.routers {
            for i in 0..router.shard_count() {
                let r = Arc::clone(router);
                registry.register_counter_fn(&format!("engine.shard.{logical}.s{i}.routed"), {
                    move || r.routed(i)
                });
            }
        }

        if let Some(set) = &self.host_replication {
            Self::register_repl_metrics(registry, "host", set.stats(), {
                let set = Arc::clone(set);
                move || (set.lag(), set.snapshot_queue_depth())
            });
        }
    }

    /// Registers the WAL-shipping instruments of one replica set under
    /// `repl.<who>.*`. `live` samples (lag bytes, snapshotter queue depth)
    /// from the live set.
    fn register_repl_metrics(
        registry: &Registry,
        who: &str,
        stats: &Arc<dl_repl::ReplStats>,
        live: impl Fn() -> (u64, usize) + Send + Sync + Clone + 'static,
    ) {
        macro_rules! repl_counter {
            ($field:ident) => {{
                let s = Arc::clone(stats);
                registry.register_counter_fn(&format!("repl.{who}.{}", stringify!($field)), {
                    move || s.$field.load(Ordering::Relaxed)
                });
            }};
        }
        repl_counter!(batches_shipped);
        repl_counter!(records_shipped);
        repl_counter!(bytes_shipped);
        repl_counter!(checkpoints_shipped);
        repl_counter!(stale_rejections);
        let l = live.clone();
        registry.register_gauge_fn(&format!("repl.{who}.ship_lag_bytes"), move || l().0 as f64);
        registry.register_gauge_fn(&format!("repl.{who}.snapshot_queue_depth"), move || {
            live().1 as f64
        });
    }

    /// Registers one node's instruments: its DLFM server counters and
    /// upcall round-trip distribution, repository minidb telemetry, DLFS
    /// interposition counters, physical-FS op counters, and — when
    /// replicated — WAL shipping. Stale registrations from a previous
    /// incarnation of the node (failover, recovery) are dropped first.
    fn register_node_metrics(registry: &Arc<Registry>, node: &FileServerNode) {
        let name = &node.name;
        for prefix in ["dlfm", "dlfs", "minidb", "repl", "fskit"] {
            registry.unregister_prefix(&format!("{prefix}.{name}"));
        }

        let server = Arc::clone(&node.server);
        macro_rules! dlfm_counter {
            ($field:ident) => {{
                let s = Arc::clone(&server);
                registry.register_counter_fn(&format!("dlfm.{name}.{}", stringify!($field)), {
                    move || s.stats.$field.get()
                });
            }};
        }
        dlfm_counter!(upcalls);
        dlfm_counter!(token_validations);
        dlfm_counter!(open_checks);
        dlfm_counter!(close_notifies);
        dlfm_counter!(links);
        dlfm_counter!(unlinks);
        dlfm_counter!(takeovers);
        dlfm_counter!(archives);
        dlfm_counter!(busy_responses);
        dlfm_counter!(rollbacks);
        dlfm_counter!(stale_coord_rejections);
        registry.register_histogram(
            &format!("dlfm.{name}.upcall_round_trip_ns"),
            Arc::clone(node.upcall.round_trip_histogram()),
        );

        let repo_db = node.server.repository().db();
        let wal = repo_db.wal_telemetry();
        registry.register_histogram(&format!("minidb.{name}.fsync_ns"), wal.fsync_ns);
        registry.register_histogram(&format!("minidb.{name}.wal_batch_frames"), wal.batch_frames);
        let db_tel = repo_db.telemetry();
        registry.register_histogram(&format!("minidb.{name}.checkpoint_ns"), db_tel.checkpoint_ns);
        registry
            .register_gauge(&format!("minidb.{name}.checkpoint_bytes"), db_tel.checkpoint_bytes);
        let db = repo_db.clone();
        registry.register_gauge_fn(&format!("minidb.{name}.wal_retained_bytes"), move || {
            db.wal_retained_bytes() as f64
        });

        let dlfs = Arc::clone(&node.dlfs);
        macro_rules! dlfs_counter {
            ($field:ident) => {{
                let d = Arc::clone(&dlfs);
                registry.register_counter_fn(&format!("dlfs.{name}.{}", stringify!($field)), {
                    move || d.stats.$field.get()
                });
            }};
        }
        dlfs_counter!(passthrough_opens);
        dlfs_counter!(managed_opens);
        dlfs_counter!(busy_waits);
        dlfs_counter!(token_lookups);

        let fs = Arc::clone(&node.fs);
        macro_rules! fskit_counter {
            ($field:ident) => {{
                let f = Arc::clone(&fs);
                registry.register_counter_fn(&format!("fskit.{name}.{}", stringify!($field)), {
                    move || f.stats.$field.load(Ordering::Relaxed)
                });
            }};
        }
        fskit_counter!(lookups);
        fskit_counter!(opens);
        fskit_counter!(reads);
        fskit_counter!(writes);
        fskit_counter!(setattrs);

        if let Some(set) = &node.replication {
            Self::register_repl_metrics(registry, name, set.stats(), {
                let set = Arc::clone(set);
                move || (set.lag(), set.snapshot_queue_depth())
            });
        }

        registry.unregister_prefix(&format!("net.{name}"));
        if let Some(wire) = &node.wire {
            // Server-side frame/connection instruments under
            // `net.<name>.*`; the client connector contributes the
            // caller-observed round-trip distribution and the node's
            // presumed-abort resolution count rides alongside.
            let stats = Arc::clone(wire.daemon.stats());
            macro_rules! net_counter {
                ($field:ident) => {{
                    let s = Arc::clone(&stats);
                    registry.register_counter_fn(&format!("net.{name}.{}", stringify!($field)), {
                        move || s.$field.get()
                    });
                }};
            }
            net_counter!(frames_in);
            net_counter!(frames_out);
            net_counter!(bytes_in);
            net_counter!(bytes_out);
            net_counter!(decode_errors);
            net_counter!(backpressure_stalls);
            net_counter!(accepts);
            net_counter!(disconnects);
            let s = Arc::clone(&stats);
            registry.register_gauge_fn(&format!("net.{name}.connections"), move || {
                s.connections.get() as f64
            });
            let s = Arc::clone(&stats);
            registry.register_gauge_fn(&format!("net.{name}.peak_connections"), move || {
                s.peak_connections.get() as f64
            });
            let aborts = Arc::clone(wire.daemon.presumed_aborts());
            registry
                .register_counter_fn(&format!("net.{name}.presumed_aborts"), move || aborts.get());
            let cli = Arc::clone(wire.connector.stats());
            registry.register_histogram_fn(&format!("net.{name}.round_trip_ns"), move || {
                cli.round_trip_ns.snapshot()
            });
        }
    }

    /// (Re-)registers `name`'s live pools with the roster and — when the
    /// node asked for it (`DlfmConfig::read_lane_auto`, set by
    /// [`FileServerSpec::front_end`]) — points the node's read lane at
    /// the roster's live worker total, floored at the configured width.
    /// Called at assembly and after every failover rebuild, so the lane
    /// keeps tracking the *current* incarnation's pools.
    fn adopt_node_pools(&self, name: &str) {
        let Some(node) = self.nodes.get(name) else { return };
        let mut probes: Vec<Arc<dyn PoolProbe>> = vec![node.upcall.pool_probe()];
        if let Some(exec) = node.main.executor_probe() {
            probes.push(exec);
        }
        self.pool_roster.set(name, probes);
        if node.dlfm_cfg.read_lane_auto {
            let roster = Arc::clone(&self.pool_roster);
            let floor = node.dlfm_cfg.read_lane_width.max(1);
            self.engine
                .set_read_lane_source(name, Arc::new(move || roster.total_workers().max(floor)));
        }
    }

    /// Pushes the live worker-pool gauges (the elastic upcall pools and the
    /// shared agent executors, per node and aggregated system-wide) into
    /// the registry. Pools live and die with their node, so their stats are
    /// sampled here — at snapshot time — instead of holding them alive
    /// through registered closures.
    fn refresh_pool_gauges(&self) {
        let set =
            |name: String, v: u64| self.registry.gauge(&name).set(v.min(i64::MAX as u64) as i64);
        for (name, node) in &self.nodes {
            let pool = node.upcall_pool_stats();
            set(format!("dlfm.{name}.upcall_pool.workers"), pool.workers() as u64);
            set(format!("dlfm.{name}.upcall_pool.peak_workers"), pool.peak_workers() as u64);
            set(format!("dlfm.{name}.upcall_pool.idle_workers"), pool.idle_workers() as u64);
            set(format!("dlfm.{name}.upcall_pool.queue_depth"), pool.queue_depth() as u64);
            set(
                format!("dlfm.{name}.upcall_pool.peak_queue_depth"),
                pool.peak_queue_depth() as u64,
            );
            set(format!("dlfm.{name}.upcall_pool.tasks"), pool.tasks());
            set(format!("dlfm.{name}.upcall_pool.grows"), pool.grows());
            set(format!("dlfm.{name}.upcall_pool.retires"), pool.retires());
            set(format!("dlfm.{name}.upcall_pool.panics"), pool.panics());
            let main = node.main_daemon();
            set(format!("dlfm.{name}.agent_executor.connections"), main.child_count() as u64);
            set(format!("dlfm.{name}.agent_executor.threads"), main.executor_threads() as u64);
            if let Some(exec) = main.executor_stats() {
                set(format!("dlfm.{name}.agent_executor.queue_depth"), exec.queue_depth() as u64);
                set(format!("dlfm.{name}.agent_executor.tasks"), exec.tasks());
                set(format!("dlfm.{name}.agent_executor.panics"), exec.panics());
            }
        }
        // `pool.total_workers` / `pool.total_queue_depth` are registered
        // as live gauge functions over the roster (see `assemble`), not
        // pushed here: the read lanes sample the same source.
    }

    /// Renders every layer's flight recorder (the coordinator-side engine
    /// ring plus each node's DLFM ring) into one dump, stores it as the
    /// last dump, and — when `DL_FLIGHT_DUMP_DIR` is set — writes it to a
    /// file there. Never prints to stdout/stderr (the lab's report pipeline
    /// owns those streams).
    fn dump_flight(&self, reason: &str) -> String {
        let mut out = self.engine.flight_recorder().render("engine.host", reason);
        let mut names: Vec<&String> = self.nodes.keys().collect();
        names.sort();
        for name in names {
            let node = &self.nodes[name];
            out.push('\n');
            out.push_str(&node.server.flight_recorder().render(&format!("dlfm.{name}"), reason));
        }
        if let Ok(dir) = std::env::var("DL_FLIGHT_DUMP_DIR") {
            if !dir.is_empty() {
                use std::sync::atomic::AtomicU64;
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let seq = SEQ.fetch_add(1, Ordering::Relaxed);
                let safe: String = reason
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                    .collect();
                let file = format!("flight-{}-{seq}-{safe}.log", std::process::id());
                let _ = std::fs::write(std::path::Path::new(&dir).join(file), &out);
            }
        }
        *self.last_flight_dump.lock() = Some(out.clone());
        out
    }

    // --- replication & failover -------------------------------------------------

    /// Bytes of primary repository WAL not yet applied by the slowest
    /// standby of `server` (the slowest across all shards for a sharded
    /// logical server); zero when unreplicated.
    pub fn replication_lag(&self, server: &str) -> Result<u64, String> {
        let mut worst = 0;
        for name in self.member_names(server)? {
            let lag = self.node(&name)?.replication.as_ref().map(|r| r.lag()).unwrap_or(0);
            worst = worst.max(lag);
        }
        Ok(worst)
    }

    /// Drives shipping until `server`'s standbys (every shard's, for a
    /// sharded logical server) hold everything durable on the primary
    /// (trivially true unreplicated). Returns whether the lag drained
    /// within `timeout`.
    pub fn wait_replicas_caught_up(&self, server: &str, timeout: Duration) -> Result<bool, String> {
        let mut all = true;
        for name in self.member_names(server)? {
            all &= self
                .node(&name)?
                .replication
                .as_ref()
                .map(|r| r.wait_caught_up(timeout))
                .unwrap_or(true);
        }
        Ok(all)
    }

    /// Pauses (or resumes) WAL shipping to `server`'s standbys — the
    /// slow/stalled-standby fault the scenario lab injects. While paused
    /// the standbys lag; routed reads still serve their (stale) applied
    /// state, and freshness-token reads fall back to the primary once the
    /// catch-up wait expires. Errors when `server` is unreplicated. For a
    /// sharded logical server, pauses every shard's shipping.
    pub fn set_replication_paused(&self, server: &str, paused: bool) -> Result<(), String> {
        let mut any = false;
        for name in self.member_names(server)? {
            if let Some(r) = &self.node(&name)?.replication {
                r.set_paused(paused);
                any = true;
            }
        }
        if any {
            Ok(())
        } else {
            Err(format!("file server {server} has no replicas to pause"))
        }
    }

    /// Validates a read token through the routed read path: a replica
    /// round-robin when `server` has standbys, the primary otherwise.
    /// `token_path` is the token-embedded path a SELECT handed out.
    pub fn validate_read_token(
        &self,
        server: &str,
        token_path: &str,
        uid: u32,
    ) -> Result<TokenKind, String> {
        let (path, token) = split_embedded_token(token_path)?;
        self.engine.validate_read_token(server, path, token, uid)
    }

    /// The zero-upcall replica read: validates the token and serves the
    /// last committed bytes — from a standby's mirrored archive when
    /// replicated (the primary is not involved), from the primary
    /// otherwise. Writes always stay on the primary's open/close protocol.
    pub fn serve_read(&self, server: &str, token_path: &str, uid: u32) -> Result<Vec<u8>, String> {
        let (path, token) = split_embedded_token(token_path)?;
        self.engine.serve_read(server, path, token, uid)
    }

    /// A *freshness token* for `server`: the repository's current durable
    /// LSN. Capture it right after a write commits (it is ≥ the write's
    /// commit LSN) and hand it to [`DataLinksSystem::serve_read_fresh`] —
    /// that read is then guaranteed to observe the write, wherever it
    /// routes. Cheap: one atomic load, no I/O.
    pub fn freshness_token(&self, server: &str) -> Result<Lsn, String> {
        Ok(self.node(server)?.server.repository().db().durable_lsn())
    }

    /// [`DataLinksSystem::freshness_token`] for a sharded logical server:
    /// each shard has its own repository — its own LSN domain — so the
    /// token must come from the shard owning `path`. Equivalent to
    /// `freshness_token(server)` for a plain node.
    pub fn freshness_token_for(&self, server: &str, path: &str) -> Result<Lsn, String> {
        let name = match self.routers.get(server) {
            Some(router) => router.name_of(router.shard_of(path)).to_string(),
            None => server.to_string(),
        };
        self.freshness_token(&name)
    }

    /// [`DataLinksSystem::serve_read`] with read-your-writes: the routed
    /// read never observes repository state older than `min_lsn` (a
    /// [`DataLinksSystem::freshness_token`]). A standby behind the token
    /// gets a bounded catch-up wait; if it stays behind, the read reroutes
    /// to the primary.
    pub fn serve_read_fresh(
        &self,
        server: &str,
        token_path: &str,
        uid: u32,
        min_lsn: Lsn,
    ) -> Result<Vec<u8>, String> {
        let (path, token) = split_embedded_token(token_path)?;
        self.engine.serve_read_fresh(server, path, token, uid, min_lsn)
    }

    /// The adaptive freshness-wait bound currently in force for `server`
    /// (see [`crate::engine::LagEwma`]): how long a freshness-token read
    /// would wait for a lagging standby before rerouting to the primary.
    pub fn freshness_bound(&self, server: &str) -> Duration {
        self.engine.freshness_bound(server)
    }

    /// Promotes a standby of `server` after a primary crash: the old
    /// primary's daemons are torn down and its replica set fenced (epoch
    /// bump — any frame a deposed shipper still sends is rejected), then
    /// the first standby's repository opens as a normal database, DLFM
    /// crash recovery runs on its applied state, and the node re-registers
    /// with the promoted server as primary. Remaining standby slots are
    /// re-provisioned fresh against the new primary. Returns the
    /// promotion recovery report.
    pub fn fail_over(&mut self, server: &str) -> Result<RecoveryReport, String> {
        // Post-mortem first: the crashed primary's recorder dies with it.
        self.dump_flight(&format!("fail_over_{server}"));
        let node =
            self.nodes.remove(server).ok_or_else(|| format!("unknown file server {server}"))?;
        let Some(replication) = node.replication.clone() else {
            self.nodes.insert(server.to_string(), node);
            return Err(format!("file server {server} has no replicas to fail over to"));
        };
        // Fence first: after this, nothing the old primary ships applies
        // anywhere, and the shipping daemon is joined (no apply can race
        // the promotion below).
        replication.freeze();
        // Archive fencing, both ends: stop the deposed primary forwarding
        // to the standbys, and seal every standby store against
        // mirror-forwarded input so an archive job already in flight on
        // the old primary cannot land in the promoted store either.
        for standby in replication.standbys() {
            node.server.archive_store().remove_mirror(standby.archive_store());
            standby.archive_store().seal_mirror_input();
        }
        // The primary "crashes": volatile state evaporates, prepared
        // sub-transactions stay in doubt in whatever log prefix reached
        // the standby.
        node.server.simulate_crash();

        let standby = replication.promote_target();
        let promoted_env = standby.env().clone();
        let promoted_archive = Arc::clone(standby.archive_store());
        let FileServerNode {
            name,
            fs,
            repo_env,
            dlfm_cfg,
            dlfs_cfg,
            replicas,
            upcall_fault,
            shard,
            server: old_server,
            ..
        } = node;
        let crashed_archive = Arc::clone(old_server.archive_store());
        drop(old_server);

        let parts = NodeParts {
            name: name.clone(),
            fs: Arc::clone(&fs),
            repo_env: promoted_env,
            archive: promoted_archive,
            dlfm_cfg: dlfm_cfg.clone(),
            dlfs_cfg,
            // One standby became the primary; re-provision the rest fresh
            // from the new primary's log.
            replicas: replicas.saturating_sub(1),
            upcall_fault: upcall_fault.clone(),
            shard: shard.clone(),
        };
        match Self::build_node(&self.engine, &self.clock, parts, true, self.coord_epoch) {
            Ok((new_node, report)) => {
                Self::register_node_metrics(&self.registry, &new_node);
                self.registry.counter("system.failovers").inc();
                // A shard node's promoted DLFS must replace the dead one
                // inside the logical server's sharded front.
                if let Some((logical, idx, _)) = &new_node.shard {
                    if let Some(front) = self.sharded.get(logical) {
                        front.replace_shard(*idx, Arc::clone(&new_node.dlfs));
                    }
                }
                self.nodes.insert(server.to_string(), new_node);
                self.adopt_node_pools(server);
                Ok(report.expect("promotion runs recovery"))
            }
            Err(promote_err) => {
                // Promotion failed. The node handle must survive: fall
                // back to crash-recovering the old primary from its own
                // durable parts (the ordinary no-replica recovery path).
                let fallback = NodeParts {
                    name,
                    fs,
                    repo_env,
                    archive: crashed_archive,
                    dlfm_cfg,
                    dlfs_cfg,
                    replicas,
                    upcall_fault,
                    shard,
                };
                let (old_node, _) =
                    Self::build_node(&self.engine, &self.clock, fallback, true, self.coord_epoch)
                        .map_err(|e| {
                        format!(
                            "promotion failed ({promote_err}) and primary re-recovery \
                                 failed too ({e}); file server {server} is down"
                        )
                    })?;
                Self::register_node_metrics(&self.registry, &old_node);
                if let Some((logical, idx, _)) = &old_node.shard {
                    if let Some(front) = self.sharded.get(logical) {
                        front.replace_shard(*idx, Arc::clone(&old_node.dlfs));
                    }
                }
                self.nodes.insert(server.to_string(), old_node);
                self.adopt_node_pools(server);
                Err(format!(
                    "promotion failed: {promote_err}; crashed primary recovered in its place"
                ))
            }
        }
    }

    // --- host replication & coordinator failover --------------------------------

    /// Current coordinator generation: the host fence epoch every DLFM
    /// node checks 2PC traffic against. Starts at 0; each host failover
    /// bumps it.
    pub fn coordinator_epoch(&self) -> u64 {
        self.coord_epoch
    }

    /// The host database's hot standbys, when provisioned and the host is
    /// up.
    pub fn host_replication(&self) -> Option<&Arc<HostReplicaSet>> {
        self.host_replication.as_ref()
    }

    /// Whether the host database is currently crashed (fenced, awaiting
    /// [`DataLinksSystem::promote_host`]).
    pub fn host_is_down(&self) -> bool {
        self.host_outage.is_some()
    }

    /// Bytes of host WAL not yet applied by the slowest host standby;
    /// zero when the host is unreplicated.
    pub fn host_replication_lag(&self) -> u64 {
        self.host_replication.as_ref().map(|r| r.lag()).unwrap_or(0)
    }

    /// Drives host-WAL shipping until the standbys hold everything durable
    /// on the host (trivially true unreplicated). Returns whether the lag
    /// drained within `timeout`.
    pub fn wait_host_replicas_caught_up(&self, timeout: Duration) -> bool {
        self.host_replication.as_ref().map(|r| r.wait_caught_up(timeout)).unwrap_or(true)
    }

    /// Pauses (or resumes) WAL shipping to the host standbys — the
    /// deterministic way to stage a "decision logged on the host but not
    /// yet shipped" window. Errors when the host is unreplicated.
    pub fn set_host_replication_paused(&self, paused: bool) -> Result<(), String> {
        match &self.host_replication {
            Some(r) => {
                r.set_paused(paused);
                Ok(())
            }
            None => Err("host database has no replicas to pause".to_string()),
        }
    }

    /// Crashes the host database: the coordinator's volatile state is
    /// gone, the shipping daemon is fenced and joined (nothing the dead
    /// host's log ships after this applies anywhere), and every DLFM node
    /// is told the new coordinator generation — a late 2PC decision from a
    /// zombie of the old coordinator is refused from here on. Prepared
    /// sub-transactions stay in doubt on the DLFM side until
    /// [`DataLinksSystem::promote_host`] resolves them. Replica-routed
    /// reads keep flowing throughout: token validation and content service
    /// never touch the host. Returns the new coordinator generation.
    pub fn crash_host(&mut self) -> Result<u64, String> {
        if self.host_outage.is_some() {
            return Err("host database is already down".to_string());
        }
        let Some(replication) = self.host_replication.take() else {
            return Err("host database has no replicas to fail over to".to_string());
        };
        let epoch = replication.freeze();
        for node in self.nodes.values() {
            node.server.fence_coordinator(epoch);
        }
        self.coord_epoch = epoch;
        self.host_outage = Some(HostOutage { replication, epoch });
        Ok(epoch)
    }

    /// Promotes a host standby after [`DataLinksSystem::crash_host`]: the
    /// replicated WAL opens as the new host database (recovery re-derives
    /// committed outcomes, prepared transactions and the in-doubt set), a
    /// fresh engine installs on it, every node re-registers under the new
    /// coordinator generation, and DLFM sub-transactions the old
    /// coordinator left in doubt are resolved against the replicated
    /// outcomes — presumed abort for anything the shipped log prefix never
    /// decided. Remaining host standby slots re-provision against the new
    /// host, inheriting the fence generation.
    pub fn promote_host(&mut self) -> Result<HostFailoverReport, String> {
        let HostOutage { replication, epoch } =
            self.host_outage.take().ok_or("host database is not down")?;
        let promoted_env = replication.promote_target().env().clone();
        drop(replication);

        let db = Database::open_with(promoted_env.clone(), self.host_db)
            .map_err(|e| format!("promoted host open: {e}"))?;
        // Bound the inherited log and seed the rebuilt standbys below from
        // an image + suffix rather than the whole history.
        db.checkpoint_and_truncate().map_err(|e| format!("promoted host checkpoint: {e}"))?;
        let engine = DataLinksEngine::install(db.clone(), Arc::clone(&self.clock))
            .map_err(|e| format!("promoted host engine install: {e}"))?;
        // The promoted engine must keep resolving sharded logical names.
        for router in self.routers.values() {
            engine.register_router(Arc::clone(router));
        }

        // One standby became the host; re-provision the rest fresh from
        // the new host's log, under the promoted generation so a second
        // failover still out-ranks this one.
        let host_replicas = self.host_replicas.saturating_sub(1);
        let host_replication = if host_replicas > 0 {
            let set = HostReplicaSet::build(
                db.replication_feed(),
                HostReplicaSetOptions {
                    replicas: host_replicas,
                    sync_latency_ns: promoted_env.sync_latency_ns(),
                    epoch,
                },
            )?;
            Some(Arc::new(set))
        } else {
            None
        };

        // Re-point every node at the new coordinator: host hook, engine
        // registration (the agent connection is minted at the promoted
        // generation), and coordinator recovery for the node's in-doubt
        // sub-transactions. "At all times there is no loss of integrity
        // between the database and its linked files" — a claim the old
        // coordinator prepared and then durably decided is finished the
        // same way here; an undecided one is presumed aborted.
        let mut report = HostFailoverReport { epoch, in_doubt_resolved: Vec::new() };
        for (name, node) in &self.nodes {
            node.server.set_host_hook(engine.clone());
            // Mint the agent connection fresh under the promoted
            // generation, over whichever transport the node runs — a wire
            // node's new connection handshakes the promoted epoch exactly
            // like a local handle is stamped with it.
            let agent: Arc<dyn AgentConnection> = match &node.wire {
                Some(wire) => Arc::new(WireAgent(wire.connect("engine")?)),
                None => Arc::new(node.main.connect()),
            };
            engine.register_server(ServerRegistration {
                name: name.clone(),
                agent,
                token_key: node.dlfm_cfg.token_key.clone(),
                server: Arc::clone(&node.server),
                replication: node.replication.clone(),
                read_lane_width: node.dlfm_cfg.read_lane_width,
                read_lane_width_fn: None,
            });
            let mut pending = node.server.pending_host_txns();
            pending.sort_unstable();
            for (txid, _prepared) in pending {
                let commit = db.coordinator_outcome(txid).unwrap_or(false);
                if commit {
                    node.server.commit_host(txid);
                } else {
                    node.server.abort_host(txid);
                }
                report.in_doubt_resolved.push((name.clone(), txid, commit));
            }
        }

        // Dump the flight recorders while the deposed engine is still in
        // place: its ring holds the pre-crash DML/commit spans, and the
        // nodes' rings hold the fence_raise plus the fenced decide events
        // of the in-doubt resolution above — one dump, the whole 2PC trail.
        self.dump_flight("fail_over_host");

        self.db = db;
        self.engine = engine;
        self.host_env = promoted_env;
        self.host_replicas = host_replicas;
        self.host_replication = host_replication;
        // The coordinator changed identity: swap the host-side instruments
        // to the promoted database/engine, re-point the auto read lanes at
        // it (the re-registrations above reset them to fixed widths on the
        // new engine), and count the failover.
        self.register_host_metrics();
        let names: Vec<String> = self.nodes.keys().cloned().collect();
        for name in &names {
            self.adopt_node_pools(name);
        }
        self.registry.counter("system.host_failovers").inc();
        Ok(report)
    }

    /// Host failover in one stroke: [`DataLinksSystem::crash_host`] then
    /// [`DataLinksSystem::promote_host`]. The split exists so tests and
    /// the scenario lab can exercise the fenced window in between (reads
    /// during the outage, zombie-coordinator decisions).
    pub fn fail_over_host(&mut self) -> Result<HostFailoverReport, String> {
        self.crash_host()?;
        self.promote_host()
    }

    // --- SQL-ish conveniences ---------------------------------------------------

    pub fn create_table(&self, schema: Schema) -> Result<(), String> {
        self.db.create_table(schema).map_err(|e| e.to_string())
    }

    pub fn define_datalink_column(
        &self,
        table: &str,
        column: &str,
        opts: DlColumnOptions,
    ) -> Result<(), String> {
        self.engine.define_datalink_column(table, column, opts).map_err(|e| e.to_string())
    }

    pub fn begin(&self) -> Txn {
        self.db.begin()
    }

    /// Retrieves the DATALINK value of `column` in the row at `key`,
    /// generating an access token of the requested kind — the paper's
    /// token-generating SELECT (§3.2, benchmark E1). Returns the parsed URL
    /// and the token-embedded path ready for `Lfs::open`.
    pub fn select_datalink(
        &self,
        table: &str,
        key: &Value,
        column: &str,
        kind: TokenKind,
    ) -> Result<(DatalinkUrl, String), String> {
        let url = self.select_datalink_url(table, key, column)?;
        let opts = self
            .engine
            .column_options(table, column)
            .ok_or_else(|| format!("{table}.{column} is not a DATALINK column"))?;
        let path = self.engine.token_path(&url, kind, opts.token_ttl_ms)?;
        Ok((url, path))
    }

    /// Retrieves the DATALINK value without token generation (the E1
    /// baseline arm).
    pub fn select_datalink_url(
        &self,
        table: &str,
        key: &Value,
        column: &str,
    ) -> Result<DatalinkUrl, String> {
        let schema = self.db.schema(table).map_err(|e| e.to_string())?;
        let idx = schema.column_index(column).ok_or_else(|| format!("no column {column}"))?;
        let row = self
            .db
            .get_committed(table, key)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("no row {key} in {table}"))?;
        match &row[idx] {
            Value::DataLink(url) => DatalinkUrl::parse(url),
            Value::Null => Err(format!("{table}.{column} is NULL for {key}")),
            other => Err(format!("unexpected value {other}")),
        }
    }

    // --- failure model -----------------------------------------------------------

    /// Simulates a whole-system crash: all volatile state (databases'
    /// caches, daemons, pending transactions, open descriptors) evaporates;
    /// what remains is the returned image of the disks.
    pub fn crash(self) -> CrashImage {
        let flight_dump = self.dump_flight("crash");
        let DataLinksSystem {
            db,
            engine,
            clock,
            host_env,
            host_db,
            host_replicas,
            host_replication,
            host_outage,
            coord_epoch,
            nodes,
            routers: _,
            shard_fronts: _,
            sharded: _,
            registry: _,
            pool_roster: _,
            last_flight_dump: _,
        } = self;
        drop(engine);
        drop(db);
        // Host standby daemons die with the system (Replicator joins on
        // drop); recovery re-provisions fresh host standbys. If the crash
        // hits *during* a host outage, the only usable host disk is the
        // promotion target's — the dead host's own log is behind the fence.
        let (host_env, host_replicas) = match host_outage {
            Some(outage) => {
                (outage.replication.promote_target().env().clone(), host_replicas.saturating_sub(1))
            }
            None => (host_env, host_replicas),
        };
        drop(host_replication);
        // Crash-boundary disk faults: an armed torn tail shears *now* —
        // the live process believed those bytes durable; only the crash
        // reveals the suffix that never reached the platter.
        let _ = host_env.apply_crash_faults();
        let mut parts = Vec::new();
        for (_, node) in nodes {
            node.server.simulate_crash();
            let _ = node.repo_env.apply_crash_faults();
            // Standby daemons die with the node; recovery re-provisions
            // fresh standbys of the recovered primary (NodeParts.replicas).
            // Detach the dead standbys' archive mirrors from the surviving
            // primary store, or every crash/recover cycle would leave it
            // forwarding into (and retaining) one more set of dead stores.
            if let Some(replication) = &node.replication {
                for standby in replication.standbys() {
                    node.server.archive_store().remove_mirror(standby.archive_store());
                }
            }
            parts.push(NodeParts {
                name: node.name,
                fs: node.fs,
                repo_env: node.repo_env,
                archive: Arc::clone(node.server.archive_store()),
                dlfm_cfg: node.dlfm_cfg,
                dlfs_cfg: node.dlfs_cfg,
                replicas: node.replicas,
                upcall_fault: node.upcall_fault,
                shard: node.shard,
            });
        }
        CrashImage {
            host_env,
            host_db,
            host_replicas,
            coord_epoch,
            clock,
            nodes: parts,
            stop_at_lsn: None,
            flight_dump: Some(flight_dump),
        }
    }

    /// Rebuilds a system from a crash image and runs coordinated recovery:
    /// host database redo, DLFM in-doubt resolution against host outcomes,
    /// file-state reconciliation and in-flight update rollback.
    pub fn recover(
        image: CrashImage,
    ) -> Result<(DataLinksSystem, HashMap<String, RecoveryReport>), String> {
        let CrashImage {
            host_env,
            host_db,
            host_replicas,
            coord_epoch,
            clock,
            nodes,
            stop_at_lsn,
            flight_dump: _,
        } = image;
        if let Some(lsn) = stop_at_lsn {
            // Point-in-time open handled by restore(); plain recovery
            // ignores it.
            let _ = lsn;
        }
        Self::assemble(host_env, host_db, host_replicas, coord_epoch, clock, nodes, true)
    }

    // --- coordinated backup / restore (§4.4) ---------------------------------------

    /// Takes a transaction-consistent backup of the host database. Archived
    /// file versions (RECOVERY YES columns) complete the picture at restore
    /// time.
    pub fn backup(&self) -> Result<SystemBackup, String> {
        Ok(SystemBackup { host_env: self.db.backup().map_err(|e| e.to_string())? })
    }

    /// Coordinated point-in-time restore: consumes the running system,
    /// restores the host database from `backup` to `lsn`, then brings every
    /// linked file to the version the restored database references (§4.4).
    pub fn restore(
        self,
        backup: &SystemBackup,
        lsn: Lsn,
    ) -> Result<(DataLinksSystem, SystemRestoreReport), String> {
        let image = self.crash();
        let CrashImage { host_db, host_replicas, coord_epoch, clock, nodes, .. } = image;

        let restored_env = backup.host_env.fork().map_err(|e| e.to_string())?;
        let db = Database::open_with(
            restored_env.clone(),
            DbOptions { stop_at_lsn: Some(lsn), ..host_db },
        )
        .map_err(|e| e.to_string())?;
        // Re-serialize the restored state into a fresh environment so the
        // new system's log continues cleanly from the restored state.
        db.checkpoint().map_err(|e| e.to_string())?;
        drop(db);

        let (sys, _) =
            Self::assemble(restored_env, host_db, host_replicas, coord_epoch, clock, nodes, true)?;
        let report = sys.reconcile_files_with_metadata()?;
        Ok((sys, report))
    }

    /// Brings every node's linked files in line with the restored
    /// `__dl_meta` table: rollback to archived versions, unlink files no
    /// longer referenced, re-link files whose links reappeared.
    fn reconcile_files_with_metadata(&self) -> Result<SystemRestoreReport, String> {
        let mut report = SystemRestoreReport::default();

        // Desired state per *node* from the restored metadata — a sharded
        // logical server's URLs resolve to the shard owning each path.
        let mut desired: HashMap<String, HashMap<String, u64>> = HashMap::new();
        for row in self.db.scan_committed(META_TABLE).map_err(|e| e.to_string())? {
            let url = DatalinkUrl::parse(row[0].as_text().unwrap_or_default())?;
            let version = row[3].as_int().unwrap_or(1) as u64;
            let owner = match self.routers.get(&url.server) {
                Some(router) => router.name_of(router.shard_of(&url.path)).to_string(),
                None => url.server,
            };
            desired.entry(owner).or_default().insert(url.path, version);
        }

        for (name, node) in &self.nodes {
            let want = desired.remove(name).unwrap_or_default();
            // Row URLs name the logical server; shard nodes re-link under it.
            let url_server = node.shard.as_ref().map(|(l, _, _)| l.as_str()).unwrap_or(name);

            // Re-link files the restored database references but the
            // repository no longer knows (unlinked after the restore point).
            let known: std::collections::HashSet<String> =
                node.server.repository().list_files().into_iter().map(|f| f.path).collect();
            for path in want.keys() {
                if known.contains(path) {
                    continue;
                }
                let (mode, recovery, on_unlink) = self
                    .column_options_for_url(&DatalinkUrl::new(url_server, path)?)
                    .map(|o| (o.mode, o.recovery, o.on_unlink))
                    .unwrap_or((dl_dlfm::ControlMode::Rff, true, dl_dlfm::OnUnlink::Restore));
                let txid = u64::MAX - report.files_relinked; // synthetic restore txn
                node.server.link_file(txid, path, mode, recovery, on_unlink)?;
                node.server.prepare_host(txid)?;
                node.server.commit_host(txid);
                report.files_relinked += 1;
            }

            let outcome = node.server.restore_to_versions(&want)?;
            report.files_rolled_back += outcome.rolled_back;
            report.files_unlinked += outcome.unlinked;
            report.missing_versions.extend(outcome.missing_versions);
        }
        Ok(report)
    }

    /// Finds the column options governing `url` by scanning registered
    /// DATALINK columns of the restored database.
    fn column_options_for_url(&self, url: &DatalinkUrl) -> Option<DlColumnOptions> {
        let url_text = url.to_string();
        for row in self.db.scan_committed(crate::engine::COLUMNS_TABLE).ok()? {
            let table = row[1].as_text()?.to_string();
            let column = row[2].as_text()?.to_string();
            let schema = self.db.schema(&table).ok()?;
            let idx = schema.column_index(&column)?;
            let rows = self.db.scan_committed(&table).ok()?;
            if rows.iter().any(|r| matches!(&r[idx], Value::DataLink(u) if *u == url_text)) {
                return self.engine.column_options(&table, &column);
            }
        }
        None
    }
}
