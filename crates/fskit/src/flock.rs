//! Whole-file shared/exclusive lock table backing `fs_lockctl`.
//!
//! §4.2 of the paper: "The file access is serialized, when needed, using the
//! fs_lockctl() entry point of the file system to lock the file in the
//! desired access mode." The table supports blocking and non-blocking
//! acquisition, lock upgrade from shared to exclusive when the caller is the
//! sole holder, and a `Test` probe.

use std::collections::HashMap;

use parking_lot::{Condvar, Mutex};

use crate::error::{FsError, FsResult};
use crate::types::Ino;

/// Identifies the entity holding a lock (an open-file instance or a
/// transaction). Distinct from credentials: two descriptors opened by the
/// same user still have distinct owners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockOwner(pub u64);

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Shared,
    Exclusive,
}

/// Operations accepted by `fs_lockctl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOp {
    /// Acquire, blocking until granted.
    Lock(LockKind),
    /// Acquire if immediately available, otherwise `FsError::WouldBlock`.
    TryLock(LockKind),
    /// Release whatever this owner holds.
    Unlock,
    /// Probe: would `Lock` succeed right now? Never blocks, never acquires.
    Test(LockKind),
}

#[derive(Debug, Default)]
struct LockState {
    /// Owners holding a shared lock.
    shared: Vec<LockOwner>,
    /// Owner holding the exclusive lock, if any.
    exclusive: Option<LockOwner>,
    /// Number of threads waiting; lets us garbage-collect idle entries.
    waiters: usize,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none() && self.waiters == 0
    }

    fn grantable(&self, owner: LockOwner, kind: LockKind) -> bool {
        match kind {
            LockKind::Shared => match self.exclusive {
                Some(holder) => holder == owner,
                None => true,
            },
            LockKind::Exclusive => {
                let others_shared = self.shared.iter().any(|o| *o != owner);
                let others_exclusive = self.exclusive.is_some_and(|h| h != owner);
                !others_shared && !others_exclusive
            }
        }
    }

    fn grant(&mut self, owner: LockOwner, kind: LockKind) {
        match kind {
            LockKind::Shared => {
                if self.exclusive == Some(owner) {
                    // Downgrade is modelled as holding both; exclusive wins.
                    return;
                }
                if !self.shared.contains(&owner) {
                    self.shared.push(owner);
                }
            }
            LockKind::Exclusive => {
                // Upgrade: drop our own shared hold, take exclusive.
                self.shared.retain(|o| *o != owner);
                self.exclusive = Some(owner);
            }
        }
    }

    fn release(&mut self, owner: LockOwner) -> bool {
        let before = self.shared.len() + usize::from(self.exclusive.is_some());
        self.shared.retain(|o| *o != owner);
        if self.exclusive == Some(owner) {
            self.exclusive = None;
        }
        before != self.shared.len() + usize::from(self.exclusive.is_some())
    }
}

/// Per-file lock table with blocking waits.
#[derive(Default)]
pub struct FileLockTable {
    inner: Mutex<HashMap<Ino, LockState>>,
    released: Condvar,
}

impl FileLockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `op` for `owner` on `ino`.
    pub fn lockctl(&self, ino: Ino, owner: LockOwner, op: LockOp) -> FsResult<bool> {
        let mut table = self.inner.lock();
        match op {
            LockOp::Test(kind) => {
                let ok = table.get(&ino).is_none_or(|st| st.grantable(owner, kind));
                Ok(ok)
            }
            LockOp::TryLock(kind) => {
                let st = table.entry(ino).or_default();
                if st.grantable(owner, kind) {
                    st.grant(owner, kind);
                    Ok(true)
                } else {
                    if st.is_free() {
                        table.remove(&ino);
                    }
                    Err(FsError::WouldBlock)
                }
            }
            LockOp::Lock(kind) => loop {
                let st = table.entry(ino).or_default();
                if st.grantable(owner, kind) {
                    st.grant(owner, kind);
                    return Ok(true);
                }
                st.waiters += 1;
                self.released.wait(&mut table);
                if let Some(st) = table.get_mut(&ino) {
                    st.waiters -= 1;
                }
            },
            LockOp::Unlock => {
                let mut released = false;
                if let Some(st) = table.get_mut(&ino) {
                    released = st.release(owner);
                    if st.is_free() {
                        table.remove(&ino);
                    }
                }
                if released {
                    self.released.notify_all();
                }
                Ok(released)
            }
        }
    }

    /// Releases every lock held by `owner` (e.g. when a descriptor closes).
    pub fn release_all(&self, owner: LockOwner) {
        let mut table = self.inner.lock();
        let mut any = false;
        table.retain(|_, st| {
            any |= st.release(owner);
            !st.is_free()
        });
        if any {
            self.released.notify_all();
        }
    }

    /// Number of files with live lock state (diagnostics / tests).
    pub fn active_files(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    const F: Ino = 7;

    #[test]
    fn shared_locks_coexist() {
        let t = FileLockTable::new();
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Shared)).unwrap());
        assert!(t.lockctl(F, LockOwner(2), LockOp::TryLock(LockKind::Shared)).unwrap());
    }

    #[test]
    fn exclusive_excludes() {
        let t = FileLockTable::new();
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        assert_eq!(
            t.lockctl(F, LockOwner(2), LockOp::TryLock(LockKind::Shared)),
            Err(FsError::WouldBlock)
        );
        assert_eq!(
            t.lockctl(F, LockOwner(2), LockOp::TryLock(LockKind::Exclusive)),
            Err(FsError::WouldBlock)
        );
    }

    #[test]
    fn reentrant_shared_for_exclusive_holder() {
        let t = FileLockTable::new();
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Shared)).unwrap());
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let t = FileLockTable::new();
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Shared)).unwrap());
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        assert_eq!(
            t.lockctl(F, LockOwner(2), LockOp::TryLock(LockKind::Shared)),
            Err(FsError::WouldBlock)
        );
    }

    #[test]
    fn upgrade_blocked_by_other_sharers() {
        let t = FileLockTable::new();
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Shared)).unwrap());
        assert!(t.lockctl(F, LockOwner(2), LockOp::TryLock(LockKind::Shared)).unwrap());
        assert_eq!(
            t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Exclusive)),
            Err(FsError::WouldBlock)
        );
    }

    #[test]
    fn unlock_releases_and_reports() {
        let t = FileLockTable::new();
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        assert!(t.lockctl(F, LockOwner(1), LockOp::Unlock).unwrap());
        assert!(!t.lockctl(F, LockOwner(1), LockOp::Unlock).unwrap());
        assert!(t.lockctl(F, LockOwner(2), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        assert_eq!(t.active_files(), 1);
    }

    #[test]
    fn test_probe_does_not_acquire() {
        let t = FileLockTable::new();
        assert!(t.lockctl(F, LockOwner(1), LockOp::Test(LockKind::Exclusive)).unwrap());
        assert!(t.lockctl(F, LockOwner(2), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        assert!(!t.lockctl(F, LockOwner(1), LockOp::Test(LockKind::Shared)).unwrap());
    }

    #[test]
    fn blocking_lock_waits_for_release() {
        let t = Arc::new(FileLockTable::new());
        assert!(t.lockctl(F, LockOwner(1), LockOp::TryLock(LockKind::Exclusive)).unwrap());

        let t2 = Arc::clone(&t);
        let waiter = thread::spawn(move || {
            t2.lockctl(F, LockOwner(2), LockOp::Lock(LockKind::Exclusive)).unwrap()
        });

        thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "waiter must block while lock is held");
        t.lockctl(F, LockOwner(1), LockOp::Unlock).unwrap();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn release_all_frees_every_file() {
        let t = FileLockTable::new();
        for ino in 0..4 {
            assert!(t.lockctl(ino, LockOwner(9), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        }
        assert_eq!(t.active_files(), 4);
        t.release_all(LockOwner(9));
        assert_eq!(t.active_files(), 0);
    }

    #[test]
    fn locks_on_distinct_files_are_independent() {
        let t = FileLockTable::new();
        assert!(t.lockctl(1, LockOwner(1), LockOp::TryLock(LockKind::Exclusive)).unwrap());
        assert!(t.lockctl(2, LockOwner(2), LockOp::TryLock(LockKind::Exclusive)).unwrap());
    }
}
