//! File-system substrate for the DataLinks reproduction.
//!
//! The ICDE 2001 paper "Database Managed External File Update" interposes the
//! DataLinks File System (DLFS) between the *logical file system* (LFS) and
//! the *physical file system* (JFS/UFS) through vnode-style entry points:
//! `fs_lookup`, `fs_open`, `fs_close`, `fs_readwrite`, `fs_remove`,
//! `fs_rename`, and `fs_lockctl`. This crate rebuilds that stack in user
//! space:
//!
//! * [`FileSystem`] — the vnode interface. The crucial property reproduced
//!   from §4.1 of the paper is the *decoupling* of `open(2)` into a
//!   `fs_lookup` call (which sees the file **name**, and therefore the access
//!   token embedded in it, but not the open mode) followed by a `fs_open`
//!   call (which sees the open **mode** but not the name).
//! * [`MemFs`] — an in-memory inode file system with POSIX-like uid/gid/mode
//!   permission checks, ownership changes (`chown`) and mode changes
//!   (`chmod`): the enforcement mechanisms the DataLinks File Manager uses to
//!   "take over" a linked file.
//! * [`Lfs`] — the logical file system: path walking, credentials, a file
//!   descriptor table, and a mount table so an interposition layer (DLFS) can
//!   be mounted over a subtree.
//! * [`flock`] — a whole-file shared/exclusive lock manager backing the
//!   `fs_lockctl` entry point (§4.2 uses it to serialize file access).
//! * [`clock`] — a pluggable clock so tests control mtimes and token expiry.

pub mod clock;
pub mod error;
pub mod flock;
pub mod lfs;
pub mod memfs;
pub mod path;
pub mod types;
pub mod vnode;

pub use clock::{Clock, SimClock, WallClock};
pub use error::{FsError, FsResult};
pub use flock::{FileLockTable, LockKind, LockOp, LockOwner};
pub use lfs::{Fd, Lfs, OpenOptions};
pub use memfs::MemFs;
pub use types::{Cred, DirEntry, FileAttr, FileKind, Ino, OpenFlags, SetAttr, ROOT_UID};
pub use vnode::FileSystem;
