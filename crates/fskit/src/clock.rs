//! Pluggable time source.
//!
//! File mtimes decide whether DLFM considers a file "modified" at close time
//! (§4.4 of the paper: "DLFM then determines whether the file has been
//! modified using the last modification time"), and token expiry is a time
//! comparison (§4.1). Tests need to control both, so every component takes an
//! `Arc<dyn Clock>` instead of calling the OS clock directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of milliseconds-since-epoch timestamps.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time from the operating system.
#[derive(Debug, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
    }
}

/// A deterministic clock for tests: starts at a fixed point and only moves
/// when explicitly advanced. Every call to [`SimClock::now_ms`] also ticks
/// the clock by one millisecond so consecutive events get distinct
/// timestamps, which is what the mtime-comparison logic needs.
#[derive(Debug)]
pub struct SimClock {
    now: AtomicU64,
    auto_tick: bool,
}

impl SimClock {
    /// A simulated clock starting at `start_ms` that ticks 1ms per reading.
    pub fn new(start_ms: u64) -> Self {
        SimClock { now: AtomicU64::new(start_ms), auto_tick: true }
    }

    /// A simulated clock that only moves via [`SimClock::advance`].
    pub fn frozen(start_ms: u64) -> Self {
        SimClock { now: AtomicU64::new(start_ms), auto_tick: false }
    }

    /// Move the clock forward by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> u64 {
        if self.auto_tick {
            self.now.fetch_add(1, Ordering::SeqCst) + 1
        } else {
            self.now.load(Ordering::SeqCst)
        }
    }
}

/// Convenience constructor for the common shared-clock pattern.
pub fn sim_clock(start_ms: u64) -> Arc<SimClock> {
    Arc::new(SimClock::new(start_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_enough() {
        let c = WallClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_ticks_per_reading() {
        let c = SimClock::new(1000);
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b > a, "each reading must produce a distinct timestamp");
    }

    #[test]
    fn frozen_clock_only_moves_on_advance() {
        let c = SimClock::frozen(500);
        assert_eq!(c.now_ms(), 500);
        assert_eq!(c.now_ms(), 500);
        c.advance(100);
        assert_eq!(c.now_ms(), 600);
    }
}
