//! Core value types shared by the vnode interface and its implementations.

/// Inode number. Inode 0 is never used; the root directory is inode 1.
pub type Ino = u64;

/// The superuser uid; bypasses permission checks like POSIX root.
pub const ROOT_UID: u32 = 0;

/// Credentials of the process performing a file-system call.
///
/// The paper's token entries are keyed by *userid* rather than processid
/// (§4.1) because processids are reused; we mirror that by giving every call
/// an explicit `Cred`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cred {
    pub uid: u32,
    pub gid: u32,
}

impl Cred {
    /// Credentials for an ordinary user in the default group.
    pub const fn user(uid: u32) -> Self {
        Cred { uid, gid: uid }
    }

    /// Superuser credentials.
    pub const fn root() -> Self {
        Cred { uid: ROOT_UID, gid: ROOT_UID }
    }

    /// True when this credential bypasses permission checks.
    pub fn is_root(&self) -> bool {
        self.uid == ROOT_UID
    }
}

/// Kind of an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    File,
    Dir,
}

/// Stat-like attributes of an inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAttr {
    pub ino: Ino,
    pub kind: FileKind,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Permission bits, lower 9 bits rwxrwxrwx (owner/group/other).
    pub mode: u16,
    pub uid: u32,
    pub gid: u32,
    /// Last data modification, milliseconds on the system clock.
    pub mtime: u64,
    /// Last attribute change, milliseconds on the system clock.
    pub ctime: u64,
    pub nlink: u32,
}

/// Access request bits used by permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
    Exec,
}

/// Flags for `fs_open`, a compact model of the O_* flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    pub read: bool,
    pub write: bool,
    /// Truncate the file to zero length on open (requires `write`).
    pub truncate: bool,
}

impl OpenFlags {
    pub const fn read_only() -> Self {
        OpenFlags { read: true, write: false, truncate: false }
    }

    pub const fn write_only() -> Self {
        OpenFlags { read: false, write: true, truncate: false }
    }

    pub const fn read_write() -> Self {
        OpenFlags { read: true, write: true, truncate: false }
    }

    pub const fn write_truncate() -> Self {
        OpenFlags { read: false, write: true, truncate: true }
    }

    /// True if the flags request any form of write access.
    pub fn wants_write(&self) -> bool {
        self.write || self.truncate
    }
}

/// Attribute changes for `fs_setattr`; `None` fields are left untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetAttr {
    pub mode: Option<u16>,
    pub uid: Option<u32>,
    pub gid: Option<u32>,
    pub size: Option<u64>,
    pub mtime: Option<u64>,
}

impl SetAttr {
    pub fn chmod(mode: u16) -> Self {
        SetAttr { mode: Some(mode), ..Default::default() }
    }

    pub fn chown(uid: u32, gid: u32) -> Self {
        SetAttr { uid: Some(uid), gid: Some(gid), ..Default::default() }
    }

    pub fn truncate(size: u64) -> Self {
        SetAttr { size: Some(size), ..Default::default() }
    }
}

/// One entry returned by `fs_readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    pub name: String,
    pub ino: Ino,
    pub kind: FileKind,
}

/// Checks classic POSIX rwx permission bits for `cred` against an owner.
///
/// Returns true when access is permitted. Root bypasses everything except
/// exec-of-non-executable (not modelled: we have no exec bit semantics for
/// regular use, so root simply bypasses).
pub fn permits(attr_uid: u32, attr_gid: u32, mode: u16, cred: &Cred, access: Access) -> bool {
    if cred.is_root() {
        return true;
    }
    let shift = if cred.uid == attr_uid {
        6
    } else if cred.gid == attr_gid {
        3
    } else {
        0
    };
    let bit = match access {
        Access::Read => 0o4,
        Access::Write => 0o2,
        Access::Exec => 0o1,
    };
    (mode >> shift) & bit != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_group_other_bits() {
        // rw-r----- owned by uid 10 gid 20
        let mode = 0o640;
        assert!(permits(10, 20, mode, &Cred { uid: 10, gid: 10 }, Access::Read));
        assert!(permits(10, 20, mode, &Cred { uid: 10, gid: 10 }, Access::Write));
        assert!(permits(10, 20, mode, &Cred { uid: 11, gid: 20 }, Access::Read));
        assert!(!permits(10, 20, mode, &Cred { uid: 11, gid: 20 }, Access::Write));
        assert!(!permits(10, 20, mode, &Cred { uid: 12, gid: 12 }, Access::Read));
    }

    #[test]
    fn root_bypasses_checks() {
        assert!(permits(10, 20, 0o000, &Cred::root(), Access::Write));
    }

    #[test]
    fn read_only_mode_blocks_owner_write() {
        // The DataLinks "make read-only" trick: chmod 0444 blocks the owner's
        // own write opens, forcing the rfd slow path through DLFM.
        let mode = 0o444;
        assert!(permits(10, 10, mode, &Cred::user(10), Access::Read));
        assert!(!permits(10, 10, mode, &Cred::user(10), Access::Write));
    }

    #[test]
    fn open_flags_wants_write() {
        assert!(!OpenFlags::read_only().wants_write());
        assert!(OpenFlags::write_only().wants_write());
        assert!(OpenFlags::read_write().wants_write());
        assert!(OpenFlags::write_truncate().wants_write());
    }

    #[test]
    fn setattr_builders() {
        assert_eq!(SetAttr::chmod(0o600).mode, Some(0o600));
        let o = SetAttr::chown(5, 6);
        assert_eq!((o.uid, o.gid), (Some(5), Some(6)));
        assert_eq!(SetAttr::truncate(42).size, Some(42));
    }
}
