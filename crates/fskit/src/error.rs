//! Error type shared by every layer of the file-system stack.

use std::fmt;

/// Result alias used throughout the file-system stack.
pub type FsResult<T> = Result<T, FsError>;

/// Errors surfaced by vnode operations.
///
/// The variants mirror the POSIX errno values the original DLFS prototype
/// would have returned from the kernel; the DataLinks layers pattern-match on
/// them (e.g. the rfd write path in §4.2 of the paper retries an open that
/// failed with `AccessDenied` after a successful upcall to DLFM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT: path component does not exist.
    NotFound,
    /// EEXIST: target name already exists.
    AlreadyExists,
    /// EACCES: permission bits or ownership forbid the access.
    AccessDenied,
    /// EPERM: operation requires ownership or superuser privilege.
    NotPermitted,
    /// ENOTDIR: a non-directory appeared where a directory was required.
    NotADirectory,
    /// EISDIR: a directory appeared where a file was required.
    IsADirectory,
    /// ENOTEMPTY: directory removal attempted on a non-empty directory.
    NotEmpty,
    /// EBUSY: the object is in use (e.g. linked file being updated).
    Busy,
    /// EAGAIN/EWOULDBLOCK: a non-blocking lock request could not be granted.
    WouldBlock,
    /// EDEADLK: granting the lock would create a deadlock.
    Deadlock,
    /// EBADF: file descriptor is not open or opened in the wrong mode.
    BadDescriptor,
    /// EINVAL: malformed argument (bad name, bad offset, ...).
    InvalidArgument(String),
    /// EROFS / DataLinks veto: the interposition layer rejected the call.
    ///
    /// Carries a human-readable reason produced by DLFS/DLFM, e.g.
    /// "file is linked to database", "token expired".
    Rejected(String),
    /// EIO: the backing store failed.
    Io(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::AccessDenied => write!(f, "permission denied"),
            FsError::NotPermitted => write!(f, "operation not permitted"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::Busy => write!(f, "resource busy"),
            FsError::WouldBlock => write!(f, "operation would block"),
            FsError::Deadlock => write!(f, "resource deadlock avoided"),
            FsError::BadDescriptor => write!(f, "bad file descriptor"),
            FsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            FsError::Rejected(msg) => write!(f, "rejected by file manager: {msg}"),
            FsError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(
            FsError::Rejected("file is linked".into()).to_string(),
            "rejected by file manager: file is linked"
        );
        assert_eq!(
            FsError::InvalidArgument("bad name".into()).to_string(),
            "invalid argument: bad name"
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FsError::AccessDenied, FsError::AccessDenied);
        assert_ne!(FsError::AccessDenied, FsError::NotPermitted);
    }
}
