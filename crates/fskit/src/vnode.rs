//! The vnode-style file-system interface.
//!
//! This is the seam at which the paper's DLFS layer interposes (§2.3): a
//! virtual-file-system trait whose methods correspond one-to-one with the
//! entry points named in the paper — `fs_lookup()`, `fs_open()`,
//! `fs_close()`, `fs_readwrite()` (split into `fs_read`/`fs_write`),
//! `fs_remove()`, `fs_rename()` and `fs_lockctl()`.
//!
//! The logical file system ([`crate::lfs::Lfs`]) drives these in the same
//! decoupled sequence a UNIX kernel does: an `open(2)` becomes one
//! `fs_lookup` per path component (receiving names — and thus any DataLinks
//! token embedded in the final component) followed by a single `fs_open`
//! (receiving the access mode but *not* the name). §4.1 of the paper builds
//! its whole token-entry design around that decoupling.

use crate::error::FsResult;
use crate::flock::{LockOp, LockOwner};
use crate::types::{Cred, DirEntry, FileAttr, Ino, OpenFlags, SetAttr};

/// A file system exposing vnode entry points.
///
/// Implementations must be thread-safe: the LFS invokes them concurrently
/// from many application threads, exactly as a kernel would.
pub trait FileSystem: Send + Sync {
    /// Inode of the root directory.
    fn root(&self) -> Ino;

    /// Resolves `name` within directory `parent`.
    ///
    /// This is the only entry point that sees file *names*, so it is where
    /// DLFS extracts and validates embedded access tokens.
    fn fs_lookup(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<Ino>;

    /// Reads attributes of an inode.
    fn fs_getattr(&self, cred: &Cred, ino: Ino) -> FsResult<FileAttr>;

    /// Changes attributes (chmod/chown/truncate/utimes subset).
    fn fs_setattr(&self, cred: &Cred, ino: Ino, set: &SetAttr) -> FsResult<FileAttr>;

    /// Creates a regular file named `name` in `parent` with permission bits
    /// `mode`, owned by `cred`.
    fn fs_create(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino>;

    /// Creates a directory.
    fn fs_mkdir(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino>;

    /// Opens an inode in the mode described by `flags`.
    ///
    /// Note the signature: the *name is not passed in* — only the inode and
    /// the mode — which is the second half of the paper's §4.1 decoupling
    /// problem.
    fn fs_open(&self, cred: &Cred, ino: Ino, flags: OpenFlags) -> FsResult<()>;

    /// Closes a previously opened inode. `written` reports whether any write
    /// was performed through the descriptor being closed; the DLFS layer
    /// forwards this (plus new size/mtime) to DLFM at close time (§4.3).
    fn fs_close(&self, cred: &Cred, ino: Ino, flags: OpenFlags, written: bool) -> FsResult<()>;

    /// Reads up to `buf.len()` bytes at `offset`. Returns bytes read.
    fn fs_read(&self, cred: &Cred, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes `data` at `offset`, extending the file as needed. Returns
    /// bytes written.
    fn fs_write(&self, cred: &Cred, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Removes the regular file `name` from `parent`.
    fn fs_remove(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()>;

    /// Removes the empty directory `name` from `parent`.
    fn fs_rmdir(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()>;

    /// Renames `parent/name` to `new_parent/new_name`, replacing nothing:
    /// the destination must not exist.
    fn fs_rename(
        &self,
        cred: &Cred,
        parent: Ino,
        name: &str,
        new_parent: Ino,
        new_name: &str,
    ) -> FsResult<()>;

    /// Lists a directory.
    fn fs_readdir(&self, cred: &Cred, ino: Ino) -> FsResult<Vec<DirEntry>>;

    /// Whole-file advisory locking (§4.2: "the file access is serialized,
    /// when needed, using the fs_lockctl() entry point"). Returns `true`
    /// when a `Test` operation found the lock available, and for lock/unlock
    /// operations on success.
    fn fs_lockctl(&self, cred: &Cred, ino: Ino, owner: LockOwner, op: LockOp) -> FsResult<bool>;
}

/// Blanket delegation so `Arc<F>` is itself a `FileSystem`; lets layers hold
/// `Arc<dyn FileSystem>` or concrete `Arc<MemFs>` interchangeably.
impl<F: FileSystem + ?Sized> FileSystem for std::sync::Arc<F> {
    fn root(&self) -> Ino {
        (**self).root()
    }
    fn fs_lookup(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<Ino> {
        (**self).fs_lookup(cred, parent, name)
    }
    fn fs_getattr(&self, cred: &Cred, ino: Ino) -> FsResult<FileAttr> {
        (**self).fs_getattr(cred, ino)
    }
    fn fs_setattr(&self, cred: &Cred, ino: Ino, set: &SetAttr) -> FsResult<FileAttr> {
        (**self).fs_setattr(cred, ino, set)
    }
    fn fs_create(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        (**self).fs_create(cred, parent, name, mode)
    }
    fn fs_mkdir(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        (**self).fs_mkdir(cred, parent, name, mode)
    }
    fn fs_open(&self, cred: &Cred, ino: Ino, flags: OpenFlags) -> FsResult<()> {
        (**self).fs_open(cred, ino, flags)
    }
    fn fs_close(&self, cred: &Cred, ino: Ino, flags: OpenFlags, written: bool) -> FsResult<()> {
        (**self).fs_close(cred, ino, flags, written)
    }
    fn fs_read(&self, cred: &Cred, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        (**self).fs_read(cred, ino, offset, buf)
    }
    fn fs_write(&self, cred: &Cred, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        (**self).fs_write(cred, ino, offset, data)
    }
    fn fs_remove(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        (**self).fs_remove(cred, parent, name)
    }
    fn fs_rmdir(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        (**self).fs_rmdir(cred, parent, name)
    }
    fn fs_rename(
        &self,
        cred: &Cred,
        parent: Ino,
        name: &str,
        new_parent: Ino,
        new_name: &str,
    ) -> FsResult<()> {
        (**self).fs_rename(cred, parent, name, new_parent, new_name)
    }
    fn fs_readdir(&self, cred: &Cred, ino: Ino) -> FsResult<Vec<DirEntry>> {
        (**self).fs_readdir(cred, ino)
    }
    fn fs_lockctl(&self, cred: &Cred, ino: Ino, owner: LockOwner, op: LockOp) -> FsResult<bool> {
        (**self).fs_lockctl(cred, ino, owner, op)
    }
}
