//! In-memory physical file system.
//!
//! Plays the role of the native file system (JFS/UFS in the paper) beneath
//! the DLFS interposition layer. It implements the POSIX mechanisms DataLinks
//! relies on:
//!
//! * uid/gid/mode permission checks on lookup, open, create, remove, rename;
//! * `chown`/`chmod` via `fs_setattr` — how DLFM "takes over" a linked file
//!   (§4.2: change ownership, mark read-only) and releases it at close;
//! * whole-file advisory locks via `fs_lockctl`;
//! * mtime maintenance, which DLFM uses at close time to decide whether the
//!   file was modified (§4.4).
//!
//! Because a *disk* survives a crash while kernel state does not, `MemFs`
//! instances are deliberately kept alive across simulated crashes: the crash
//! harness drops databases and daemons but keeps the `Arc<MemFs>`.
//!
//! An optional [`IoModel`] charges a deterministic time cost per operation
//! and per KiB transferred so benchmarks can reproduce the paper's
//! distinction between "counting CPU and I/O time" and "counting only CPU
//! time" (§3.2) without a real disk.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::clock::{Clock, WallClock};
use crate::error::{FsError, FsResult};
use crate::flock::{FileLockTable, LockOp, LockOwner};
use crate::types::{permits, Access, Cred, DirEntry, FileAttr, FileKind, Ino, OpenFlags, SetAttr};
use crate::vnode::FileSystem;

/// Deterministic I/O cost model: a fixed per-call latency plus a throughput
/// term. Costs are *spun*, not slept, so they are stable at nanosecond scale.
#[derive(Debug, Clone, Copy, Default)]
pub struct IoModel {
    /// Fixed cost charged to every read/write call (seek + syscall).
    pub per_op_ns: u64,
    /// Cost per KiB transferred (bandwidth).
    pub per_kib_ns: u64,
}

impl IoModel {
    /// A model loosely shaped like a late-90s SCSI disk with a warm cache:
    /// 60µs per operation, 24µs per KiB (~40 MB/s).
    pub fn disk_like() -> Self {
        IoModel { per_op_ns: 60_000, per_kib_ns: 24_000 }
    }

    fn charge(&self, bytes: usize) {
        let total = self.per_op_ns + self.per_kib_ns * (bytes as u64).div_ceil(1024);
        if total == 0 {
            return;
        }
        let deadline = Instant::now() + Duration::from_nanos(total);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    File(Vec<u8>),
    Dir(BTreeMap<String, Ino>),
}

#[derive(Debug, Clone)]
struct Inode {
    kind: FileKind,
    mode: u16,
    uid: u32,
    gid: u32,
    mtime: u64,
    ctime: u64,
    node: Node,
}

impl Inode {
    fn size(&self) -> u64 {
        match &self.node {
            Node::File(data) => data.len() as u64,
            Node::Dir(_) => 0,
        }
    }

    fn attr(&self, ino: Ino) -> FileAttr {
        FileAttr {
            ino,
            kind: self.kind,
            size: self.size(),
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            mtime: self.mtime,
            ctime: self.ctime,
            nlink: match &self.node {
                Node::File(_) => 1,
                Node::Dir(children) => 2 + children.len() as u32,
            },
        }
    }

    fn dir(&self) -> FsResult<&BTreeMap<String, Ino>> {
        match &self.node {
            Node::Dir(children) => Ok(children),
            Node::File(_) => Err(FsError::NotADirectory),
        }
    }

    fn dir_mut(&mut self) -> FsResult<&mut BTreeMap<String, Ino>> {
        match &mut self.node {
            Node::Dir(children) => Ok(children),
            Node::File(_) => Err(FsError::NotADirectory),
        }
    }

    fn file(&self) -> FsResult<&Vec<u8>> {
        match &self.node {
            Node::File(data) => Ok(data),
            Node::Dir(_) => Err(FsError::IsADirectory),
        }
    }

    fn file_mut(&mut self) -> FsResult<&mut Vec<u8>> {
        match &mut self.node {
            Node::File(data) => Ok(data),
            Node::Dir(_) => Err(FsError::IsADirectory),
        }
    }
}

/// Simple operation counters, handy for asserting "the read path made no
/// extra calls" style properties in tests and benches.
#[derive(Debug, Default)]
pub struct OpStats {
    pub lookups: AtomicU64,
    pub opens: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub setattrs: AtomicU64,
}

struct Inner {
    inodes: HashMap<Ino, Inode>,
    next_ino: Ino,
}

/// The in-memory file system. Cheap to construct; share via `Arc`.
pub struct MemFs {
    inner: RwLock<Inner>,
    locks: FileLockTable,
    clock: Arc<dyn Clock>,
    io: IoModel,
    pub stats: OpStats,
}

const ROOT_INO: Ino = 1;

impl MemFs {
    /// An empty file system (root directory mode 0o777, owned by root) using
    /// the wall clock and no I/O cost model.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock))
    }

    /// An empty file system with an explicit clock (tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let now = clock.now_ms();
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_INO,
            Inode {
                kind: FileKind::Dir,
                mode: 0o777,
                uid: 0,
                gid: 0,
                mtime: now,
                ctime: now,
                node: Node::Dir(BTreeMap::new()),
            },
        );
        MemFs {
            inner: RwLock::new(Inner { inodes, next_ino: ROOT_INO + 1 }),
            locks: FileLockTable::new(),
            clock,
            io: IoModel::default(),
            stats: OpStats::default(),
        }
    }

    /// Attaches an I/O cost model (builder style).
    pub fn with_io_model(mut self, io: IoModel) -> Self {
        self.io = io;
        self
    }

    fn get(inner: &Inner, ino: Ino) -> FsResult<&Inode> {
        inner.inodes.get(&ino).ok_or(FsError::NotFound)
    }

    fn get_mut(inner: &mut Inner, ino: Ino) -> FsResult<&mut Inode> {
        inner.inodes.get_mut(&ino).ok_or(FsError::NotFound)
    }

    fn check(inode: &Inode, cred: &Cred, access: Access) -> FsResult<()> {
        if permits(inode.uid, inode.gid, inode.mode, cred, access) {
            Ok(())
        } else {
            Err(FsError::AccessDenied)
        }
    }

    fn alloc_ino(inner: &mut Inner) -> Ino {
        let ino = inner.next_ino;
        inner.next_ino += 1;
        ino
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl FileSystem for MemFs {
    fn root(&self) -> Ino {
        ROOT_INO
    }

    fn fs_lookup(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<Ino> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        crate::path::validate_name(name)?;
        let inner = self.inner.read();
        let dir = Self::get(&inner, parent)?;
        // Path traversal requires search (exec) permission on the directory.
        Self::check(dir, cred, Access::Exec)?;
        dir.dir()?.get(name).copied().ok_or(FsError::NotFound)
    }

    fn fs_getattr(&self, _cred: &Cred, ino: Ino) -> FsResult<FileAttr> {
        let inner = self.inner.read();
        Ok(Self::get(&inner, ino)?.attr(ino))
    }

    fn fs_setattr(&self, cred: &Cred, ino: Ino, set: &SetAttr) -> FsResult<FileAttr> {
        self.stats.setattrs.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_ms();
        let mut inner = self.inner.write();
        let inode = Self::get_mut(&mut inner, ino)?;

        // chown: superuser only (classic restricted chown).
        if (set.uid.is_some() || set.gid.is_some()) && !cred.is_root() {
            return Err(FsError::NotPermitted);
        }
        // chmod: owner or superuser.
        if set.mode.is_some() && !cred.is_root() && cred.uid != inode.uid {
            return Err(FsError::NotPermitted);
        }
        // truncate: needs write permission.
        if set.size.is_some() {
            Self::check(inode, cred, Access::Write)?;
            if inode.kind == FileKind::Dir {
                return Err(FsError::IsADirectory);
            }
        }

        if let Some(mode) = set.mode {
            inode.mode = mode & 0o7777;
            inode.ctime = now;
        }
        if let Some(uid) = set.uid {
            inode.uid = uid;
            inode.ctime = now;
        }
        if let Some(gid) = set.gid {
            inode.gid = gid;
            inode.ctime = now;
        }
        if let Some(size) = set.size {
            let data = inode.file_mut()?;
            data.resize(size as usize, 0);
            inode.mtime = now;
            inode.ctime = now;
        }
        if let Some(mtime) = set.mtime {
            inode.mtime = mtime;
        }
        Ok(inode.attr(ino))
    }

    fn fs_create(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        crate::path::validate_name(name)?;
        let now = self.clock.now_ms();
        let mut inner = self.inner.write();
        {
            let dir = Self::get(&inner, parent)?;
            Self::check(dir, cred, Access::Write)?;
            Self::check(dir, cred, Access::Exec)?;
            if dir.dir()?.contains_key(name) {
                return Err(FsError::AlreadyExists);
            }
        }
        let ino = Self::alloc_ino(&mut inner);
        inner.inodes.insert(
            ino,
            Inode {
                kind: FileKind::File,
                mode: mode & 0o7777,
                uid: cred.uid,
                gid: cred.gid,
                mtime: now,
                ctime: now,
                node: Node::File(Vec::new()),
            },
        );
        Self::get_mut(&mut inner, parent)?.dir_mut()?.insert(name.to_string(), ino);
        Ok(ino)
    }

    fn fs_mkdir(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        crate::path::validate_name(name)?;
        let now = self.clock.now_ms();
        let mut inner = self.inner.write();
        {
            let dir = Self::get(&inner, parent)?;
            Self::check(dir, cred, Access::Write)?;
            Self::check(dir, cred, Access::Exec)?;
            if dir.dir()?.contains_key(name) {
                return Err(FsError::AlreadyExists);
            }
        }
        let ino = Self::alloc_ino(&mut inner);
        inner.inodes.insert(
            ino,
            Inode {
                kind: FileKind::Dir,
                mode: mode & 0o7777,
                uid: cred.uid,
                gid: cred.gid,
                mtime: now,
                ctime: now,
                node: Node::Dir(BTreeMap::new()),
            },
        );
        Self::get_mut(&mut inner, parent)?.dir_mut()?.insert(name.to_string(), ino);
        Ok(ino)
    }

    fn fs_open(&self, cred: &Cred, ino: Ino, flags: OpenFlags) -> FsResult<()> {
        self.stats.opens.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let inode = Self::get_mut(&mut inner, ino)?;
        if inode.kind == FileKind::Dir && flags.wants_write() {
            return Err(FsError::IsADirectory);
        }
        if flags.read {
            Self::check(inode, cred, Access::Read)?;
        }
        if flags.wants_write() {
            Self::check(inode, cred, Access::Write)?;
        }
        if flags.truncate {
            let now = self.clock.now_ms();
            inode.file_mut()?.clear();
            inode.mtime = now;
        }
        Ok(())
    }

    fn fs_close(&self, _cred: &Cred, ino: Ino, _flags: OpenFlags, _written: bool) -> FsResult<()> {
        let inner = self.inner.read();
        Self::get(&inner, ino).map(|_| ())
    }

    fn fs_read(&self, _cred: &Cred, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        let inode = Self::get(&inner, ino)?;
        let data = inode.file()?;
        let off = offset as usize;
        if off >= data.len() {
            self.io.charge(0);
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        drop(inner);
        self.io.charge(n);
        Ok(n)
    }

    fn fs_write(&self, _cred: &Cred, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_ms();
        let mut inner = self.inner.write();
        let inode = Self::get_mut(&mut inner, ino)?;
        let file = inode.file_mut()?;
        let off = offset as usize;
        let end = off + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[off..end].copy_from_slice(data);
        inode.mtime = now;
        drop(inner);
        self.io.charge(data.len());
        Ok(data.len())
    }

    fn fs_remove(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        let mut inner = self.inner.write();
        let target = {
            let dir = Self::get(&inner, parent)?;
            Self::check(dir, cred, Access::Write)?;
            Self::check(dir, cred, Access::Exec)?;
            *dir.dir()?.get(name).ok_or(FsError::NotFound)?
        };
        if Self::get(&inner, target)?.kind == FileKind::Dir {
            return Err(FsError::IsADirectory);
        }
        Self::get_mut(&mut inner, parent)?.dir_mut()?.remove(name);
        inner.inodes.remove(&target);
        Ok(())
    }

    fn fs_rmdir(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        let mut inner = self.inner.write();
        let target = {
            let dir = Self::get(&inner, parent)?;
            Self::check(dir, cred, Access::Write)?;
            Self::check(dir, cred, Access::Exec)?;
            *dir.dir()?.get(name).ok_or(FsError::NotFound)?
        };
        {
            let victim = Self::get(&inner, target)?;
            if victim.kind != FileKind::Dir {
                return Err(FsError::NotADirectory);
            }
            if !victim.dir()?.is_empty() {
                return Err(FsError::NotEmpty);
            }
        }
        Self::get_mut(&mut inner, parent)?.dir_mut()?.remove(name);
        inner.inodes.remove(&target);
        Ok(())
    }

    fn fs_rename(
        &self,
        cred: &Cred,
        parent: Ino,
        name: &str,
        new_parent: Ino,
        new_name: &str,
    ) -> FsResult<()> {
        crate::path::validate_name(new_name)?;
        let mut inner = self.inner.write();
        let target = {
            let dir = Self::get(&inner, parent)?;
            Self::check(dir, cred, Access::Write)?;
            Self::check(dir, cred, Access::Exec)?;
            *dir.dir()?.get(name).ok_or(FsError::NotFound)?
        };
        {
            let ndir = Self::get(&inner, new_parent)?;
            Self::check(ndir, cred, Access::Write)?;
            Self::check(ndir, cred, Access::Exec)?;
            if ndir.dir()?.contains_key(new_name) {
                return Err(FsError::AlreadyExists);
            }
        }
        Self::get_mut(&mut inner, parent)?.dir_mut()?.remove(name);
        Self::get_mut(&mut inner, new_parent)?.dir_mut()?.insert(new_name.to_string(), target);
        Ok(())
    }

    fn fs_readdir(&self, cred: &Cred, ino: Ino) -> FsResult<Vec<DirEntry>> {
        let inner = self.inner.read();
        let dir = Self::get(&inner, ino)?;
        Self::check(dir, cred, Access::Read)?;
        dir.dir()?
            .iter()
            .map(|(name, child)| {
                let inode = Self::get(&inner, *child)?;
                Ok(DirEntry { name: name.clone(), ino: *child, kind: inode.kind })
            })
            .collect()
    }

    fn fs_lockctl(&self, _cred: &Cred, ino: Ino, owner: LockOwner, op: LockOp) -> FsResult<bool> {
        {
            let inner = self.inner.read();
            Self::get(&inner, ino)?;
        }
        self.locks.lockctl(ino, owner, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    fn fs() -> MemFs {
        MemFs::with_clock(Arc::new(SimClock::new(1_000_000)))
    }

    const ALICE: Cred = Cred { uid: 100, gid: 100 };
    const BOB: Cred = Cred { uid: 101, gid: 101 };

    #[test]
    fn create_lookup_read_write_roundtrip() {
        let fs = fs();
        let root = fs.root();
        let ino = fs.fs_create(&ALICE, root, "a.txt", 0o644).unwrap();
        assert_eq!(fs.fs_lookup(&ALICE, root, "a.txt").unwrap(), ino);

        fs.fs_write(&ALICE, ino, 0, b"hello world").unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(fs.fs_read(&ALICE, ino, 6, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"world");
        assert_eq!(fs.fs_getattr(&ALICE, ino).unwrap().size, 11);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "s", 0o644).unwrap();
        fs.fs_write(&ALICE, ino, 4, b"x").unwrap();
        let mut buf = [9u8; 5];
        assert_eq!(fs.fs_read(&ALICE, ino, 0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, &[0, 0, 0, 0, b'x']);
    }

    #[test]
    fn read_past_eof_returns_zero() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o644).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.fs_read(&ALICE, ino, 100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn permission_checks_on_open() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "private", 0o600).unwrap();
        assert_eq!(fs.fs_open(&BOB, ino, OpenFlags::read_only()), Err(FsError::AccessDenied));
        assert!(fs.fs_open(&ALICE, ino, OpenFlags::read_write()).is_ok());
    }

    #[test]
    fn read_only_file_rejects_owner_write_open() {
        // This is the exact mechanism the rfd mode exploits (§4.2): the file
        // is marked read-only at link time, so an ordinary write open fails
        // and DLFS falls back to an upcall.
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "linked", 0o644).unwrap();
        fs.fs_setattr(&Cred::root(), ino, &SetAttr::chmod(0o444)).unwrap();
        assert_eq!(fs.fs_open(&ALICE, ino, OpenFlags::write_only()), Err(FsError::AccessDenied));
        assert!(fs.fs_open(&ALICE, ino, OpenFlags::read_only()).is_ok());
    }

    #[test]
    fn takeover_blocks_other_readers() {
        // rdb/rdd take-over: chown to the DLFM uid and chmod 0600. Any other
        // user's read open must now fail at the physical FS.
        let fs = fs();
        let dlfm = Cred::user(900);
        let ino = fs.fs_create(&ALICE, fs.root(), "ctl", 0o644).unwrap();
        fs.fs_setattr(&Cred::root(), ino, &SetAttr::chown(dlfm.uid, dlfm.gid)).unwrap();
        fs.fs_setattr(&Cred::root(), ino, &SetAttr::chmod(0o600)).unwrap();
        assert_eq!(fs.fs_open(&ALICE, ino, OpenFlags::read_only()), Err(FsError::AccessDenied));
        assert!(fs.fs_open(&dlfm, ino, OpenFlags::read_only()).is_ok());
    }

    #[test]
    fn chown_requires_root() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o644).unwrap();
        assert_eq!(fs.fs_setattr(&ALICE, ino, &SetAttr::chown(42, 42)), Err(FsError::NotPermitted));
    }

    #[test]
    fn chmod_requires_owner_or_root() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o644).unwrap();
        assert_eq!(fs.fs_setattr(&BOB, ino, &SetAttr::chmod(0o777)), Err(FsError::NotPermitted));
        assert!(fs.fs_setattr(&ALICE, ino, &SetAttr::chmod(0o600)).is_ok());
        assert!(fs.fs_setattr(&Cred::root(), ino, &SetAttr::chmod(0o644)).is_ok());
    }

    #[test]
    fn mtime_advances_on_write_only() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o644).unwrap();
        let before = fs.fs_getattr(&ALICE, ino).unwrap().mtime;
        fs.fs_write(&ALICE, ino, 0, b"data").unwrap();
        let after = fs.fs_getattr(&ALICE, ino).unwrap().mtime;
        assert!(after > before, "write must advance mtime");
        let again = fs.fs_getattr(&ALICE, ino).unwrap().mtime;
        assert_eq!(after, again, "getattr must not move mtime");
    }

    #[test]
    fn truncate_on_open() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o644).unwrap();
        fs.fs_write(&ALICE, ino, 0, b"content").unwrap();
        fs.fs_open(&ALICE, ino, OpenFlags::write_truncate()).unwrap();
        assert_eq!(fs.fs_getattr(&ALICE, ino).unwrap().size, 0);
    }

    #[test]
    fn remove_and_rename() {
        let fs = fs();
        let root = fs.root();
        fs.fs_create(&ALICE, root, "old", 0o644).unwrap();
        fs.fs_rename(&ALICE, root, "old", root, "new").unwrap();
        assert_eq!(fs.fs_lookup(&ALICE, root, "old"), Err(FsError::NotFound));
        assert!(fs.fs_lookup(&ALICE, root, "new").is_ok());
        fs.fs_remove(&ALICE, root, "new").unwrap();
        assert_eq!(fs.fs_lookup(&ALICE, root, "new"), Err(FsError::NotFound));
    }

    #[test]
    fn rename_refuses_to_clobber() {
        let fs = fs();
        let root = fs.root();
        fs.fs_create(&ALICE, root, "a", 0o644).unwrap();
        fs.fs_create(&ALICE, root, "b", 0o644).unwrap();
        assert_eq!(fs.fs_rename(&ALICE, root, "a", root, "b"), Err(FsError::AlreadyExists));
    }

    #[test]
    fn directories_nest_and_list() {
        let fs = fs();
        let root = fs.root();
        let d = fs.fs_mkdir(&ALICE, root, "movies", 0o755).unwrap();
        fs.fs_create(&ALICE, d, "clip1.mpg", 0o644).unwrap();
        fs.fs_create(&ALICE, d, "clip2.mpg", 0o644).unwrap();
        let names: Vec<String> =
            fs.fs_readdir(&ALICE, d).unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["clip1.mpg", "clip2.mpg"]);
    }

    #[test]
    fn rmdir_requires_empty() {
        let fs = fs();
        let root = fs.root();
        let d = fs.fs_mkdir(&ALICE, root, "dir", 0o755).unwrap();
        fs.fs_create(&ALICE, d, "f", 0o644).unwrap();
        assert_eq!(fs.fs_rmdir(&ALICE, root, "dir"), Err(FsError::NotEmpty));
        fs.fs_remove(&ALICE, d, "f").unwrap();
        assert!(fs.fs_rmdir(&ALICE, root, "dir").is_ok());
    }

    #[test]
    fn remove_of_directory_rejected() {
        let fs = fs();
        let root = fs.root();
        fs.fs_mkdir(&ALICE, root, "dir", 0o755).unwrap();
        assert_eq!(fs.fs_remove(&ALICE, root, "dir"), Err(FsError::IsADirectory));
    }

    #[test]
    fn lookup_requires_search_permission() {
        let fs = fs();
        let root = fs.root();
        let d = fs.fs_mkdir(&ALICE, root, "locked", 0o700).unwrap();
        fs.fs_create(&ALICE, d, "f", 0o644).unwrap();
        assert_eq!(fs.fs_lookup(&BOB, d, "f"), Err(FsError::AccessDenied));
        assert!(fs.fs_lookup(&ALICE, d, "f").is_ok());
    }

    #[test]
    fn lockctl_serializes_between_owners() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o666).unwrap();
        assert!(fs
            .fs_lockctl(
                &ALICE,
                ino,
                LockOwner(1),
                LockOp::TryLock(crate::flock::LockKind::Exclusive)
            )
            .unwrap());
        assert_eq!(
            fs.fs_lockctl(&BOB, ino, LockOwner(2), LockOp::TryLock(crate::flock::LockKind::Shared)),
            Err(FsError::WouldBlock)
        );
    }

    #[test]
    fn io_model_charges_time() {
        let clock = Arc::new(SimClock::new(0));
        let fs =
            MemFs::with_clock(clock).with_io_model(IoModel { per_op_ns: 200_000, per_kib_ns: 0 });
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o644).unwrap();
        fs.fs_write(&ALICE, ino, 0, &[0u8; 1024]).unwrap();
        let start = Instant::now();
        let mut buf = [0u8; 1024];
        fs.fs_read(&ALICE, ino, 0, &mut buf).unwrap();
        assert!(start.elapsed() >= Duration::from_micros(180));
    }

    #[test]
    fn stats_count_operations() {
        let fs = fs();
        let ino = fs.fs_create(&ALICE, fs.root(), "f", 0o644).unwrap();
        fs.fs_lookup(&ALICE, fs.root(), "f").unwrap();
        fs.fs_open(&ALICE, ino, OpenFlags::read_only()).unwrap();
        let mut b = [0u8; 1];
        fs.fs_read(&ALICE, ino, 0, &mut b).unwrap();
        assert_eq!(fs.stats.lookups.load(Ordering::Relaxed), 1);
        assert_eq!(fs.stats.opens.load(Ordering::Relaxed), 1);
        assert_eq!(fs.stats.reads.load(Ordering::Relaxed), 1);
    }
}
