//! Logical file system: the kernel-side glue between applications and a
//! [`FileSystem`] implementation.
//!
//! §2.3 of the paper walks through what happens on `open(2)`: "the call is
//! handled by LFS which first calls fs_lookup() to determine if the file
//! exists... It then allocates a file descriptor and a file structure...
//! Finally, it calls fs_open()". [`Lfs::open`] performs exactly that
//! sequence — one `fs_lookup` per path component followed by `fs_open` — so
//! an interposition layer mounted underneath observes the same decoupled
//! call pattern that shaped the paper's token design (§4.1).
//!
//! The LFS also owns the file-descriptor table, per-descriptor positions,
//! the `written` flag reported to `fs_close` (§4.3 uses it to decide whether
//! metadata must be refreshed), and lock ownership for `fs_lockctl`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{FsError, FsResult};
use crate::flock::{LockKind, LockOp, LockOwner};
use crate::path;
use crate::types::{Cred, DirEntry, FileAttr, FileKind, Ino, OpenFlags, SetAttr};
use crate::vnode::FileSystem;

/// A file descriptor handle. Plain `u64` newtype; invalid after close.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u64);

/// Options accepted by [`Lfs::open`], modelled on `open(2)` flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenOptions {
    pub read: bool,
    pub write: bool,
    pub truncate: bool,
    /// Create the file (mode `create_mode`) if it does not exist.
    pub create: bool,
    pub create_mode: u16,
}

impl OpenOptions {
    pub fn read_only() -> Self {
        OpenOptions { read: true, ..Default::default() }
    }

    pub fn write_only() -> Self {
        OpenOptions { write: true, ..Default::default() }
    }

    pub fn read_write() -> Self {
        OpenOptions { read: true, write: true, ..Default::default() }
    }

    pub fn write_truncate() -> Self {
        OpenOptions { write: true, truncate: true, ..Default::default() }
    }

    pub fn create(mode: u16) -> Self {
        OpenOptions { write: true, create: true, create_mode: mode, ..Default::default() }
    }

    fn flags(&self) -> OpenFlags {
        OpenFlags { read: self.read, write: self.write, truncate: self.truncate }
    }
}

struct OpenFile {
    ino: Ino,
    pos: u64,
    flags: OpenFlags,
    cred: Cred,
    written: bool,
    lock_owner: LockOwner,
}

/// The logical file system. Cheap to clone via `Arc`; one per "node".
pub struct Lfs {
    fs: Arc<dyn FileSystem>,
    files: Mutex<HashMap<Fd, OpenFile>>,
    next_fd: AtomicU64,
    next_lock_owner: AtomicU64,
}

impl Lfs {
    pub fn new(fs: Arc<dyn FileSystem>) -> Self {
        Lfs {
            fs,
            files: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3), // 0..2 reserved, as tradition demands
            next_lock_owner: AtomicU64::new(1),
        }
    }

    /// The underlying file system (used by admin tooling and tests).
    pub fn filesystem(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }

    /// Walks all components of `dir_path`, returning the directory inode.
    fn walk_dir(&self, cred: &Cred, dir_path: &str) -> FsResult<Ino> {
        let mut ino = self.fs.root();
        for comp in path::components(dir_path)? {
            ino = self.fs.fs_lookup(cred, ino, comp)?;
        }
        Ok(ino)
    }

    /// Opens `abs_path` per `opts`, reproducing the kernel's
    /// lookup-then-open sequence.
    pub fn open(&self, cred: &Cred, abs_path: &str, opts: OpenOptions) -> FsResult<Fd> {
        if !opts.read && !opts.write && !opts.truncate {
            return Err(FsError::InvalidArgument("open with no access mode".into()));
        }
        let (parent_path, name) = path::split_parent(abs_path)?;
        let parent = self.walk_dir(cred, &parent_path)?;

        let ino = match self.fs.fs_lookup(cred, parent, &name) {
            Ok(ino) => ino,
            Err(FsError::NotFound) if opts.create => {
                self.fs.fs_create(cred, parent, &name, opts.create_mode)?
            }
            Err(e) => return Err(e),
        };

        let flags = opts.flags();
        self.fs.fs_open(cred, ino, flags)?;

        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        let lock_owner = LockOwner(self.next_lock_owner.fetch_add(1, Ordering::Relaxed));
        self.files.lock().insert(
            fd,
            OpenFile { ino, pos: 0, flags, cred: *cred, written: opts.truncate, lock_owner },
        );
        Ok(fd)
    }

    /// Closes `fd`, releasing its locks and reporting the `written` flag to
    /// the file system's `fs_close` entry point.
    ///
    /// If `fs_close` fails (e.g. the DataLinks close-commit was rejected),
    /// the descriptor is still destroyed — matching the kernel behaviour
    /// that `close(2)` invalidates the fd even on error — and the error is
    /// returned to the caller.
    pub fn close(&self, fd: Fd) -> FsResult<()> {
        let file = self.files.lock().remove(&fd).ok_or(FsError::BadDescriptor)?;
        // Locks release before fs_close so a blocked writer can proceed as
        // soon as the descriptor is gone.
        let _ = self.fs.fs_lockctl(&file.cred, file.ino, file.lock_owner, LockOp::Unlock);
        self.fs.fs_close(&file.cred, file.ino, file.flags, file.written)
    }

    fn with_file<T>(&self, fd: Fd, f: impl FnOnce(&mut OpenFile) -> FsResult<T>) -> FsResult<T> {
        let mut files = self.files.lock();
        let file = files.get_mut(&fd).ok_or(FsError::BadDescriptor)?;
        f(file)
    }

    /// Sequential read at the descriptor's position.
    pub fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let (ino, pos, cred) = self.with_file(fd, |f| {
            if !f.flags.read {
                return Err(FsError::BadDescriptor);
            }
            Ok((f.ino, f.pos, f.cred))
        })?;
        let n = self.fs.fs_read(&cred, ino, pos, buf)?;
        self.with_file(fd, |f| {
            f.pos += n as u64;
            Ok(())
        })?;
        Ok(n)
    }

    /// Positional read; does not move the descriptor position.
    pub fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let (ino, cred) = self.with_file(fd, |f| {
            if !f.flags.read {
                return Err(FsError::BadDescriptor);
            }
            Ok((f.ino, f.cred))
        })?;
        self.fs.fs_read(&cred, ino, offset, buf)
    }

    /// Reads from the current position to EOF.
    pub fn read_to_end(&self, fd: Fd) -> FsResult<Vec<u8>> {
        let mut out = Vec::new();
        let mut chunk = vec![0u8; 64 * 1024];
        loop {
            let n = self.read(fd, &mut chunk)?;
            if n == 0 {
                return Ok(out);
            }
            out.extend_from_slice(&chunk[..n]);
        }
    }

    /// Sequential write at the descriptor's position.
    pub fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let (ino, pos, cred) = self.with_file(fd, |f| {
            if !f.flags.wants_write() {
                return Err(FsError::BadDescriptor);
            }
            Ok((f.ino, f.pos, f.cred))
        })?;
        let n = self.fs.fs_write(&cred, ino, pos, data)?;
        self.with_file(fd, |f| {
            f.pos += n as u64;
            f.written = true;
            Ok(())
        })?;
        Ok(n)
    }

    /// Positional write; does not move the descriptor position.
    pub fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let (ino, cred) = self.with_file(fd, |f| {
            if !f.flags.wants_write() {
                return Err(FsError::BadDescriptor);
            }
            Ok((f.ino, f.cred))
        })?;
        let n = self.fs.fs_write(&cred, ino, offset, data)?;
        self.with_file(fd, |f| {
            f.written = true;
            Ok(())
        })?;
        Ok(n)
    }

    /// Moves the descriptor position (absolute).
    pub fn seek(&self, fd: Fd, pos: u64) -> FsResult<()> {
        self.with_file(fd, |f| {
            f.pos = pos;
            Ok(())
        })
    }

    /// Acquires/releases a whole-file lock on the open descriptor.
    pub fn lockctl(&self, fd: Fd, op: LockOp) -> FsResult<bool> {
        let (ino, owner, cred) = self.with_file(fd, |f| Ok((f.ino, f.lock_owner, f.cred)))?;
        self.fs.fs_lockctl(&cred, ino, owner, op)
    }

    /// Convenience: exclusive-lock the descriptor, blocking.
    pub fn lock_exclusive(&self, fd: Fd) -> FsResult<()> {
        self.lockctl(fd, LockOp::Lock(LockKind::Exclusive)).map(|_| ())
    }

    /// Attributes of the file behind `fd`.
    pub fn fstat(&self, fd: Fd) -> FsResult<FileAttr> {
        let (ino, cred) = self.with_file(fd, |f| Ok((f.ino, f.cred)))?;
        self.fs.fs_getattr(&cred, ino)
    }

    /// Attributes of `abs_path`.
    pub fn stat(&self, cred: &Cred, abs_path: &str) -> FsResult<FileAttr> {
        let ino = self.resolve(cred, abs_path)?;
        self.fs.fs_getattr(cred, ino)
    }

    /// Resolves a path to an inode number.
    pub fn resolve(&self, cred: &Cred, abs_path: &str) -> FsResult<Ino> {
        if abs_path == "/" {
            return Ok(self.fs.root());
        }
        let (parent_path, name) = path::split_parent(abs_path)?;
        let parent = self.walk_dir(cred, &parent_path)?;
        self.fs.fs_lookup(cred, parent, &name)
    }

    /// Creates a regular file, failing if it exists.
    pub fn create(&self, cred: &Cred, abs_path: &str, mode: u16) -> FsResult<Ino> {
        let (parent_path, name) = path::split_parent(abs_path)?;
        let parent = self.walk_dir(cred, &parent_path)?;
        self.fs.fs_create(cred, parent, &name, mode)
    }

    /// Creates a directory and any missing ancestors.
    pub fn mkdir_p(&self, cred: &Cred, abs_path: &str, mode: u16) -> FsResult<Ino> {
        let comps = path::components(abs_path)?;
        let mut ino = self.fs.root();
        for comp in comps {
            ino = match self.fs.fs_lookup(cred, ino, comp) {
                Ok(child) => child,
                Err(FsError::NotFound) => self.fs.fs_mkdir(cred, ino, comp, mode)?,
                Err(e) => return Err(e),
            };
        }
        Ok(ino)
    }

    /// Removes a regular file.
    pub fn remove(&self, cred: &Cred, abs_path: &str) -> FsResult<()> {
        let (parent_path, name) = path::split_parent(abs_path)?;
        let parent = self.walk_dir(cred, &parent_path)?;
        self.fs.fs_remove(cred, parent, &name)
    }

    /// Renames a file or directory (destination must not exist).
    pub fn rename(&self, cred: &Cred, from: &str, to: &str) -> FsResult<()> {
        let (fparent_path, fname) = path::split_parent(from)?;
        let (tparent_path, tname) = path::split_parent(to)?;
        let fparent = self.walk_dir(cred, &fparent_path)?;
        let tparent = self.walk_dir(cred, &tparent_path)?;
        self.fs.fs_rename(cred, fparent, &fname, tparent, &tname)
    }

    /// Lists a directory.
    pub fn readdir(&self, cred: &Cred, abs_path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve(cred, abs_path)?;
        self.fs.fs_readdir(cred, ino)
    }

    /// Applies attribute changes to a path (admin helper).
    pub fn setattr(&self, cred: &Cred, abs_path: &str, set: &SetAttr) -> FsResult<FileAttr> {
        let ino = self.resolve(cred, abs_path)?;
        self.fs.fs_setattr(cred, ino, set)
    }

    /// Reads an entire file by path (convenience).
    pub fn read_file(&self, cred: &Cred, abs_path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(cred, abs_path, OpenOptions::read_only())?;
        let result = self.read_to_end(fd);
        let close = self.close(fd);
        let data = result?;
        close?;
        Ok(data)
    }

    /// Creates-or-truncates and writes an entire file by path (convenience).
    pub fn write_file(&self, cred: &Cred, abs_path: &str, data: &[u8]) -> FsResult<()> {
        let opts = OpenOptions {
            read: false,
            write: true,
            truncate: true,
            create: true,
            create_mode: 0o644,
        };
        let fd = self.open(cred, abs_path, opts)?;
        let result = self.write(fd, data).map(|_| ());
        let close = self.close(fd);
        result?;
        close
    }

    /// True if `abs_path` names an existing file or directory.
    pub fn exists(&self, cred: &Cred, abs_path: &str) -> bool {
        self.stat(cred, abs_path).is_ok()
    }

    /// Number of currently open descriptors (diagnostics).
    pub fn open_count(&self) -> usize {
        self.files.lock().len()
    }

    /// True if `abs_path` is a directory.
    pub fn is_dir(&self, cred: &Cred, abs_path: &str) -> bool {
        self.stat(cred, abs_path).map(|a| a.kind == FileKind::Dir).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::memfs::MemFs;

    const ALICE: Cred = Cred { uid: 100, gid: 100 };

    fn lfs() -> Lfs {
        Lfs::new(Arc::new(MemFs::with_clock(Arc::new(SimClock::new(1_000)))))
    }

    #[test]
    fn open_create_write_read_roundtrip() {
        let lfs = lfs();
        lfs.mkdir_p(&ALICE, "/data", 0o755).unwrap();
        let fd = lfs.open(&ALICE, "/data/f.txt", OpenOptions::create(0o644)).unwrap();
        lfs.write(fd, b"hello").unwrap();
        lfs.close(fd).unwrap();

        assert_eq!(lfs.read_file(&ALICE, "/data/f.txt").unwrap(), b"hello");
    }

    #[test]
    fn sequential_position_advances() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"abcdef").unwrap();
        let fd = lfs.open(&ALICE, "/f", OpenOptions::read_only()).unwrap();
        let mut buf = [0u8; 3];
        lfs.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        lfs.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"def");
        assert_eq!(lfs.read(fd, &mut buf).unwrap(), 0);
        lfs.close(fd).unwrap();
    }

    #[test]
    fn positional_io_does_not_move_cursor() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"abcdef").unwrap();
        let fd = lfs.open(&ALICE, "/f", OpenOptions::read_only()).unwrap();
        let mut buf = [0u8; 2];
        lfs.read_at(fd, 4, &mut buf).unwrap();
        assert_eq!(&buf, b"ef");
        let mut buf3 = [0u8; 3];
        lfs.read(fd, &mut buf3).unwrap();
        assert_eq!(&buf3, b"abc");
        lfs.close(fd).unwrap();
    }

    #[test]
    fn seek_repositions() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"abcdef").unwrap();
        let fd = lfs.open(&ALICE, "/f", OpenOptions::read_only()).unwrap();
        lfs.seek(fd, 3).unwrap();
        let mut buf = [0u8; 3];
        lfs.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"def");
        lfs.close(fd).unwrap();
    }

    #[test]
    fn read_on_write_only_fd_rejected() {
        let lfs = lfs();
        let fd = lfs.open(&ALICE, "/f", OpenOptions::create(0o644)).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(lfs.read(fd, &mut buf), Err(FsError::BadDescriptor));
        lfs.close(fd).unwrap();
    }

    #[test]
    fn write_on_read_only_fd_rejected() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"x").unwrap();
        let fd = lfs.open(&ALICE, "/f", OpenOptions::read_only()).unwrap();
        assert_eq!(lfs.write(fd, b"y"), Err(FsError::BadDescriptor));
        lfs.close(fd).unwrap();
    }

    #[test]
    fn close_invalidates_fd() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"x").unwrap();
        let fd = lfs.open(&ALICE, "/f", OpenOptions::read_only()).unwrap();
        lfs.close(fd).unwrap();
        assert_eq!(lfs.close(fd), Err(FsError::BadDescriptor));
        let mut buf = [0u8; 1];
        assert_eq!(lfs.read(fd, &mut buf), Err(FsError::BadDescriptor));
    }

    #[test]
    fn open_missing_without_create_fails() {
        let lfs = lfs();
        assert_eq!(lfs.open(&ALICE, "/nope", OpenOptions::read_only()), Err(FsError::NotFound));
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let lfs = lfs();
        lfs.mkdir_p(&ALICE, "/a/b/c", 0o755).unwrap();
        lfs.mkdir_p(&ALICE, "/a/b/c", 0o755).unwrap();
        assert!(lfs.is_dir(&ALICE, "/a/b/c"));
    }

    #[test]
    fn write_file_truncates_previous_content() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"long content here").unwrap();
        lfs.write_file(&ALICE, "/f", b"tiny").unwrap();
        assert_eq!(lfs.read_file(&ALICE, "/f").unwrap(), b"tiny");
    }

    #[test]
    fn locks_release_on_close() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"x").unwrap();
        let fd1 = lfs.open(&ALICE, "/f", OpenOptions::read_write()).unwrap();
        lfs.lock_exclusive(fd1).unwrap();
        let fd2 = lfs.open(&ALICE, "/f", OpenOptions::read_write()).unwrap();
        assert_eq!(
            lfs.lockctl(fd2, LockOp::TryLock(LockKind::Exclusive)),
            Err(FsError::WouldBlock)
        );
        lfs.close(fd1).unwrap();
        assert!(lfs.lockctl(fd2, LockOp::TryLock(LockKind::Exclusive)).unwrap());
        lfs.close(fd2).unwrap();
    }

    #[test]
    fn written_flag_only_set_after_write() {
        // Observed indirectly: a truncating open marks written even without
        // an explicit write call.
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"data").unwrap();
        let fd = lfs.open(&ALICE, "/f", OpenOptions::write_truncate()).unwrap();
        lfs.close(fd).unwrap();
        assert_eq!(lfs.read_file(&ALICE, "/f").unwrap(), b"");
    }

    #[test]
    fn open_count_tracks_descriptors() {
        let lfs = lfs();
        lfs.write_file(&ALICE, "/f", b"x").unwrap();
        assert_eq!(lfs.open_count(), 0);
        let fd = lfs.open(&ALICE, "/f", OpenOptions::read_only()).unwrap();
        assert_eq!(lfs.open_count(), 1);
        lfs.close(fd).unwrap();
        assert_eq!(lfs.open_count(), 0);
    }
}
