//! Minimal absolute-path handling.
//!
//! Paths in this stack are always absolute, `/`-separated, and contain no
//! `.`/`..` components once normalized. Keeping our own helpers (rather than
//! `std::path`) keeps semantics identical across platforms and matches the
//! URL pathnames stored in DATALINK columns.

use crate::error::{FsError, FsResult};

/// Splits a normalized absolute path into components.
///
/// Returns an error for relative paths or paths containing empty, `.` or
/// `..` components. The root path `/` yields an empty component list.
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidArgument(format!("path not absolute: {path}")));
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" => continue,
            "." | ".." => {
                return Err(FsError::InvalidArgument(format!("path not normalized: {path}")))
            }
            c => out.push(c),
        }
    }
    Ok(out)
}

/// Splits a path into (parent directory path, final component).
///
/// `/a/b/c` becomes `("/a/b", "c")`. The root has no parent and is rejected.
pub fn split_parent(path: &str) -> FsResult<(String, String)> {
    let comps = components(path)?;
    let Some((last, init)) = comps.split_last() else {
        return Err(FsError::InvalidArgument("root has no parent".into()));
    };
    let parent = if init.is_empty() { "/".to_string() } else { format!("/{}", init.join("/")) };
    Ok((parent, (*last).to_string()))
}

/// Joins a directory path and a child name.
pub fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// Validates a single directory-entry name.
pub fn validate_name(name: &str) -> FsResult<()> {
    if name.is_empty() {
        return Err(FsError::InvalidArgument("empty name".into()));
    }
    if name == "." || name == ".." {
        return Err(FsError::InvalidArgument("reserved name".into()));
    }
    if name.contains('/') {
        return Err(FsError::InvalidArgument(format!("name contains '/': {name}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_root_is_empty() {
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn components_splits() {
        assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        // Repeated separators collapse.
        assert_eq!(components("//a///b").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn relative_and_dotted_paths_rejected() {
        assert!(components("a/b").is_err());
        assert!(components("/a/./b").is_err());
        assert!(components("/a/../b").is_err());
    }

    #[test]
    fn split_parent_works() {
        assert_eq!(split_parent("/a").unwrap(), ("/".into(), "a".into()));
        assert_eq!(split_parent("/a/b/c").unwrap(), ("/a/b".into(), "c".into()));
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("/", "x"), "/x");
        assert_eq!(join("/a", "x"), "/a/x");
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("movie.mpg").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".").is_err());
        assert!(validate_name("a/b").is_err());
    }
}
