//! Full-state snapshots with ping-pong slots.
//!
//! A snapshot serializes every committed table (schema, indexed columns,
//! rows) plus the WAL position it covers (`base_lsn`). Two slot devices
//! ("snap.a"/"snap.b") alternate so a crash mid-snapshot always leaves the
//! previous generation intact; recovery picks the valid slot with the
//! highest generation and replays the log from its `base_lsn`.
//!
//! Since format version 2 a snapshot is a **complete recovery image**, not
//! just table data: it also carries the transaction-resolution state that
//! recovery previously reconstructed by scanning the whole log — the next
//! transaction id, coordinator outcomes of 2PC transactions, and the redo
//! ops of transactions prepared but undecided as of `base_lsn`. That
//! completeness is what makes WAL truncation below `base_lsn` safe
//! ([`crate::wal::Wal::truncate_below`]): nothing recovery needs can hide
//! in the truncated prefix.

use std::collections::HashMap;
use std::sync::Arc;

use crate::codec::{crc32, get_row, get_schema, put_row, put_schema, Dec, Enc};
use crate::device::{Device, StorageEnv};
use crate::error::{DbError, DbResult};
use crate::ops::RowOp;
use crate::table::TableStore;
use crate::wal::{Lsn, TxId};

const MAGIC: u32 = 0x444C_534E; // "DLSN"
const VERSION: u32 = 2;

/// The two ping-pong slot device names.
pub(crate) const SNAPSHOT_SLOTS: [&str; 2] = ["snap.a", "snap.b"];

/// The slot device a snapshot of `generation` is written to (alternating
/// parity, so the previous generation always survives a torn write).
pub(crate) fn slot_for_generation(generation: u64) -> &'static str {
    if generation.is_multiple_of(2) {
        SNAPSHOT_SLOTS[1]
    } else {
        SNAPSHOT_SLOTS[0]
    }
}

/// Reads both ping-pong slots of `env` and returns the newest valid
/// snapshot accepted by `usable` (recovery-time filtering, e.g. a
/// point-in-time bound), if any. The single source of truth for snapshot
/// selection — recovery, standby open and the replication feed all go
/// through here.
pub fn latest_valid_snapshot(
    env: &StorageEnv,
    usable: impl Fn(&SnapshotData) -> bool,
) -> DbResult<Option<SnapshotData>> {
    let mut best: Option<SnapshotData> = None;
    for slot in SNAPSHOT_SLOTS {
        if let Some(snap) = read_snapshot(&env.device(slot)?)? {
            if usable(&snap) && best.as_ref().is_none_or(|b| snap.generation >= b.generation) {
                best = Some(snap);
            }
        }
    }
    Ok(best)
}

/// Decoded snapshot contents — a complete recovery image of the database
/// as of `base_lsn` (see the module docs).
#[derive(Clone)]
pub struct SnapshotData {
    /// Monotonic snapshot generation (ping-pong slot selection).
    pub generation: u64,
    /// The snapshot covers every log record strictly below this LSN.
    pub base_lsn: Lsn,
    /// First transaction id recovery may hand out (ids below it may have
    /// been used by records since truncated away).
    pub next_txid: TxId,
    /// Coordinator outcomes of transactions that had 2PC participants.
    pub outcomes: HashMap<TxId, bool>,
    /// Redo ops of transactions prepared but undecided as of `base_lsn`.
    pub prepared: HashMap<TxId, Vec<RowOp>>,
    /// Committed table stores.
    pub tables: HashMap<String, TableStore>,
}

/// Borrowed write-side view of a snapshot: what [`write_snapshot`]
/// serializes. Mirrors [`SnapshotData`] field-for-field but borrows the
/// collections, so a checkpoint never has to clone the table stores just
/// to persist them.
pub struct SnapshotSource<'a> {
    /// Monotonic snapshot generation.
    pub generation: u64,
    /// The snapshot covers every log record strictly below this LSN.
    pub base_lsn: Lsn,
    /// First transaction id recovery may hand out.
    pub next_txid: TxId,
    /// Coordinator outcomes of transactions that had 2PC participants.
    pub outcomes: &'a HashMap<TxId, bool>,
    /// Redo ops of transactions prepared but undecided as of `base_lsn`.
    pub prepared: &'a HashMap<TxId, Vec<RowOp>>,
    /// Committed table stores.
    pub tables: &'a HashMap<String, TableStore>,
}

impl<'a> From<&'a SnapshotData> for SnapshotSource<'a> {
    fn from(snap: &'a SnapshotData) -> SnapshotSource<'a> {
        SnapshotSource {
            generation: snap.generation,
            base_lsn: snap.base_lsn,
            next_txid: snap.next_txid,
            outcomes: &snap.outcomes,
            prepared: &snap.prepared,
            tables: &snap.tables,
        }
    }
}

/// Serializes a complete recovery image into `dev` (see [`SnapshotData`]
/// for the field meanings).
pub fn write_snapshot(dev: &Arc<dyn Device>, snap: SnapshotSource<'_>) -> DbResult<()> {
    let mut body = Enc::with_capacity(4096);
    body.put_u64(snap.generation);
    body.put_u64(snap.base_lsn);
    body.put_u64(snap.next_txid);
    // Deterministic order keeps snapshots byte-comparable in tests.
    let mut outcome_ids: Vec<&TxId> = snap.outcomes.keys().collect();
    outcome_ids.sort();
    body.put_u32(outcome_ids.len() as u32);
    for txid in outcome_ids {
        body.put_u64(*txid);
        body.put_bool(snap.outcomes[txid]);
    }
    let mut prepared_ids: Vec<&TxId> = snap.prepared.keys().collect();
    prepared_ids.sort();
    body.put_u32(prepared_ids.len() as u32);
    for txid in prepared_ids {
        body.put_u64(*txid);
        RowOp::encode_list(&snap.prepared[txid], &mut body);
    }
    body.put_u32(snap.tables.len() as u32);
    let mut names: Vec<&String> = snap.tables.keys().collect();
    names.sort();
    for name in names {
        let store = &snap.tables[name];
        put_schema(&mut body, &store.schema);
        let indexed = store.indexed_columns();
        body.put_u32(indexed.len() as u32);
        for col in &indexed {
            body.put_str(col);
        }
        body.put_u32(store.len() as u32);
        for (_, row) in store.iter() {
            put_row(&mut body, row);
        }
    }
    let payload = body.into_bytes();

    let mut frame = Enc::with_capacity(payload.len() + 16);
    frame.put_u32(MAGIC);
    frame.put_u32(VERSION);
    frame.put_u32(payload.len() as u32);
    frame.put_u32(crc32(&payload));
    let mut bytes = frame.into_bytes();
    bytes.extend_from_slice(&payload);

    // Invalidate the slot header first so a crash mid-write cannot leave a
    // stale-but-valid-looking header over new bytes.
    dev.set_len(0)?;
    dev.write_at(0, &bytes)?;
    dev.sync()?;
    Ok(())
}

/// Reads a snapshot slot; `Ok(None)` when empty or invalid (a torn write
/// simply invalidates the slot — the other slot still has the previous
/// generation).
pub fn read_snapshot(dev: &Arc<dyn Device>) -> DbResult<Option<SnapshotData>> {
    let total = dev.len()?;
    if total < 16 {
        return Ok(None);
    }
    let mut header = [0u8; 16];
    if dev.read_at(0, &mut header)? < 16 {
        return Ok(None);
    }
    let mut dec = Dec::new(&header);
    let magic = dec.get_u32()?;
    let version = dec.get_u32()?;
    let len = dec.get_u32()? as usize;
    let crc = dec.get_u32()?;
    if magic != MAGIC || version != VERSION || 16 + len as u64 > total {
        return Ok(None);
    }
    let mut payload = vec![0u8; len];
    if dev.read_at(16, &mut payload)? < len {
        return Ok(None);
    }
    if crc32(&payload) != crc {
        return Ok(None);
    }

    let mut dec = Dec::new(&payload);
    let generation = dec.get_u64()?;
    let base_lsn = dec.get_u64()?;
    let next_txid = dec.get_u64()?;
    let noutcomes = dec.get_u32()? as usize;
    let mut outcomes = HashMap::with_capacity(noutcomes);
    for _ in 0..noutcomes {
        let txid = dec.get_u64()?;
        outcomes.insert(txid, dec.get_bool()?);
    }
    let nprepared = dec.get_u32()? as usize;
    let mut prepared = HashMap::with_capacity(nprepared);
    for _ in 0..nprepared {
        let txid = dec.get_u64()?;
        prepared.insert(txid, RowOp::decode_list(&mut dec)?);
    }
    let ntables = dec.get_u32()? as usize;
    let mut tables = HashMap::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = get_schema(&mut dec)?;
        let nindexes = dec.get_u32()? as usize;
        let mut indexed = Vec::with_capacity(nindexes);
        for _ in 0..nindexes {
            indexed.push(dec.get_str()?);
        }
        let nrows = dec.get_u32()? as usize;
        let name = schema.table.clone();
        let mut store = TableStore::new(schema);
        for _ in 0..nrows {
            store.apply_insert(get_row(&mut dec)?);
        }
        for col in &indexed {
            store.create_index(col)?;
        }
        tables.insert(name, store);
    }
    if !dec.is_done() {
        return Err(DbError::Corrupt("trailing bytes in snapshot".into()));
    }
    Ok(Some(SnapshotData { generation, base_lsn, next_txid, outcomes, prepared, tables }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::value::{Column, ColumnType, Schema, Value};

    fn sample() -> SnapshotData {
        let schema = Schema::new(
            "movies",
            vec![Column::new("id", ColumnType::Int), Column::new("title", ColumnType::Text)],
            "id",
        )
        .unwrap();
        let mut store = TableStore::new(schema);
        store.apply_insert(vec![Value::Int(1), Value::Text("Alien".into())]);
        store.apply_insert(vec![Value::Int(2), Value::Text("Brazil".into())]);
        store.create_index("title").unwrap();
        let mut tables = HashMap::new();
        tables.insert("movies".to_string(), store);
        let mut outcomes = HashMap::new();
        outcomes.insert(7u64, true);
        outcomes.insert(8u64, false);
        let mut prepared = HashMap::new();
        prepared.insert(
            9u64,
            vec![RowOp::Insert {
                table: "movies".into(),
                row: vec![Value::Int(3), Value::Text("Stalker".into())],
            }],
        );
        SnapshotData { generation: 3, base_lsn: 128, next_txid: 10, outcomes, prepared, tables }
    }

    #[test]
    fn roundtrip() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, (&sample()).into()).unwrap();
        let snap = read_snapshot(&dev).unwrap().expect("valid snapshot");
        assert_eq!(snap.generation, 3);
        assert_eq!(snap.base_lsn, 128);
        assert_eq!(snap.next_txid, 10);
        assert_eq!(snap.outcomes.get(&7), Some(&true));
        assert_eq!(snap.outcomes.get(&8), Some(&false));
        assert_eq!(snap.prepared.get(&9).map(|ops| ops.len()), Some(1));
        let movies = &snap.tables["movies"];
        assert_eq!(movies.len(), 2);
        assert!(movies.has_index("title"));
        assert_eq!(
            movies.find_equal("title", &Value::Text("Brazil".into())).unwrap(),
            vec![Value::Int(2)]
        );
    }

    #[test]
    fn empty_device_reads_none() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        assert!(read_snapshot(&dev).unwrap().is_none());
    }

    #[test]
    fn corrupt_payload_reads_none() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, (&sample()).into()).unwrap();
        // Flip a byte in the payload.
        let mut b = [0u8; 1];
        dev.read_at(20, &mut b).unwrap();
        dev.write_at(20, &[b[0] ^ 0xFF]).unwrap();
        assert!(read_snapshot(&dev).unwrap().is_none());
    }

    #[test]
    fn truncated_payload_reads_none() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, (&sample()).into()).unwrap();
        let len = dev.len().unwrap();
        dev.set_len(len - 4).unwrap();
        assert!(read_snapshot(&dev).unwrap().is_none());
    }

    #[test]
    fn rewrite_replaces_generation() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, (&sample()).into()).unwrap();
        let mut newer = sample();
        newer.generation = 4;
        newer.base_lsn = 99;
        write_snapshot(&dev, (&newer).into()).unwrap();
        let snap = read_snapshot(&dev).unwrap().unwrap();
        assert_eq!((snap.generation, snap.base_lsn), (4, 99));
    }

    #[test]
    fn outdated_format_version_reads_none() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, (&sample()).into()).unwrap();
        // Rewrite the version field to 1 (the pre-checkpoint-shipping
        // format): the slot must read as invalid, not misparse.
        dev.write_at(4, &1u32.to_le_bytes()).unwrap();
        assert!(read_snapshot(&dev).unwrap().is_none());
    }
}
