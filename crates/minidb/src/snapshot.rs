//! Full-state snapshots with ping-pong slots.
//!
//! A snapshot serializes every committed table (schema, indexed columns,
//! rows) plus the WAL position it covers (`base_lsn`). Two slot devices
//! ("snap.a"/"snap.b") alternate so a crash mid-snapshot always leaves the
//! previous generation intact; recovery picks the valid slot with the
//! highest generation and replays the log from its `base_lsn`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::codec::{crc32, get_row, get_schema, put_row, put_schema, Dec, Enc};
use crate::device::Device;
use crate::error::{DbError, DbResult};
use crate::table::TableStore;
use crate::wal::Lsn;

const MAGIC: u32 = 0x444C_534E; // "DLSN"
const VERSION: u32 = 1;

/// Decoded snapshot contents.
pub struct SnapshotData {
    pub generation: u64,
    pub base_lsn: Lsn,
    pub tables: HashMap<String, TableStore>,
}

/// Serializes `tables` into `dev` as generation `generation` covering the
/// log up to `base_lsn`.
pub fn write_snapshot(
    dev: &Arc<dyn Device>,
    generation: u64,
    base_lsn: Lsn,
    tables: &HashMap<String, TableStore>,
) -> DbResult<()> {
    let mut body = Enc::with_capacity(4096);
    body.put_u64(generation);
    body.put_u64(base_lsn);
    body.put_u32(tables.len() as u32);
    // Deterministic order keeps snapshots byte-comparable in tests.
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    for name in names {
        let store = &tables[name];
        put_schema(&mut body, &store.schema);
        let indexed = store.indexed_columns();
        body.put_u32(indexed.len() as u32);
        for col in &indexed {
            body.put_str(col);
        }
        body.put_u32(store.len() as u32);
        for (_, row) in store.iter() {
            put_row(&mut body, row);
        }
    }
    let payload = body.into_bytes();

    let mut frame = Enc::with_capacity(payload.len() + 16);
    frame.put_u32(MAGIC);
    frame.put_u32(VERSION);
    frame.put_u32(payload.len() as u32);
    frame.put_u32(crc32(&payload));
    let mut bytes = frame.into_bytes();
    bytes.extend_from_slice(&payload);

    // Invalidate the slot header first so a crash mid-write cannot leave a
    // stale-but-valid-looking header over new bytes.
    dev.set_len(0)?;
    dev.write_at(0, &bytes)?;
    dev.sync()?;
    Ok(())
}

/// Reads a snapshot slot; `Ok(None)` when empty or invalid (a torn write
/// simply invalidates the slot — the other slot still has the previous
/// generation).
pub fn read_snapshot(dev: &Arc<dyn Device>) -> DbResult<Option<SnapshotData>> {
    let total = dev.len()?;
    if total < 16 {
        return Ok(None);
    }
    let mut header = [0u8; 16];
    if dev.read_at(0, &mut header)? < 16 {
        return Ok(None);
    }
    let mut dec = Dec::new(&header);
    let magic = dec.get_u32()?;
    let version = dec.get_u32()?;
    let len = dec.get_u32()? as usize;
    let crc = dec.get_u32()?;
    if magic != MAGIC || version != VERSION || 16 + len as u64 > total {
        return Ok(None);
    }
    let mut payload = vec![0u8; len];
    if dev.read_at(16, &mut payload)? < len {
        return Ok(None);
    }
    if crc32(&payload) != crc {
        return Ok(None);
    }

    let mut dec = Dec::new(&payload);
    let generation = dec.get_u64()?;
    let base_lsn = dec.get_u64()?;
    let ntables = dec.get_u32()? as usize;
    let mut tables = HashMap::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = get_schema(&mut dec)?;
        let nindexes = dec.get_u32()? as usize;
        let mut indexed = Vec::with_capacity(nindexes);
        for _ in 0..nindexes {
            indexed.push(dec.get_str()?);
        }
        let nrows = dec.get_u32()? as usize;
        let name = schema.table.clone();
        let mut store = TableStore::new(schema);
        for _ in 0..nrows {
            store.apply_insert(get_row(&mut dec)?);
        }
        for col in &indexed {
            store.create_index(col)?;
        }
        tables.insert(name, store);
    }
    if !dec.is_done() {
        return Err(DbError::Corrupt("trailing bytes in snapshot".into()));
    }
    Ok(Some(SnapshotData { generation, base_lsn, tables }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::value::{Column, ColumnType, Schema, Value};

    fn sample_tables() -> HashMap<String, TableStore> {
        let schema = Schema::new(
            "movies",
            vec![Column::new("id", ColumnType::Int), Column::new("title", ColumnType::Text)],
            "id",
        )
        .unwrap();
        let mut store = TableStore::new(schema);
        store.apply_insert(vec![Value::Int(1), Value::Text("Alien".into())]);
        store.apply_insert(vec![Value::Int(2), Value::Text("Brazil".into())]);
        store.create_index("title").unwrap();
        let mut tables = HashMap::new();
        tables.insert("movies".to_string(), store);
        tables
    }

    #[test]
    fn roundtrip() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, 3, 128, &sample_tables()).unwrap();
        let snap = read_snapshot(&dev).unwrap().expect("valid snapshot");
        assert_eq!(snap.generation, 3);
        assert_eq!(snap.base_lsn, 128);
        let movies = &snap.tables["movies"];
        assert_eq!(movies.len(), 2);
        assert!(movies.has_index("title"));
        assert_eq!(
            movies.find_equal("title", &Value::Text("Brazil".into())).unwrap(),
            vec![Value::Int(2)]
        );
    }

    #[test]
    fn empty_device_reads_none() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        assert!(read_snapshot(&dev).unwrap().is_none());
    }

    #[test]
    fn corrupt_payload_reads_none() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, 1, 0, &sample_tables()).unwrap();
        // Flip a byte in the payload.
        let mut b = [0u8; 1];
        dev.read_at(20, &mut b).unwrap();
        dev.write_at(20, &[b[0] ^ 0xFF]).unwrap();
        assert!(read_snapshot(&dev).unwrap().is_none());
    }

    #[test]
    fn truncated_payload_reads_none() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, 1, 0, &sample_tables()).unwrap();
        let len = dev.len().unwrap();
        dev.set_len(len - 4).unwrap();
        assert!(read_snapshot(&dev).unwrap().is_none());
    }

    #[test]
    fn rewrite_replaces_generation() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new());
        write_snapshot(&dev, 1, 0, &sample_tables()).unwrap();
        write_snapshot(&dev, 2, 99, &sample_tables()).unwrap();
        let snap = read_snapshot(&dev).unwrap().unwrap();
        assert_eq!((snap.generation, snap.base_lsn), (2, 99));
    }
}
