//! Typed values, rows and schemas.
//!
//! The type system is deliberately small: what the paper's scenarios need
//! (movie catalogues, web-page metadata) plus the `DataLink` type proposed
//! for the SQL/MED standard (§2.1). A `DataLink` value carries the URL text;
//! interpretation (control mode, tokens) belongs to the DataLinks engine in
//! `dl-core`, keeping this crate a generic substrate.

use std::cmp::Ordering;
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Float,
    Bool,
    Text,
    Bytes,
    /// SQL/MED DATALINK: a URL referencing an external file (§2.1).
    DataLink,
}

/// A single typed value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Text(String),
    Bytes(Vec<u8>),
    /// URL of an external file, e.g. `dlfs://server1/movies/clip.mpg`.
    DataLink(String),
}

impl Value {
    /// True when the value is compatible with `ty` (Null matches anything
    /// nullable; nullability is checked separately by the schema).
    pub fn matches(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColumnType::Int)
                | (Value::Float(_), ColumnType::Float)
                | (Value::Bool(_), ColumnType::Bool)
                | (Value::Text(_), ColumnType::Text)
                | (Value::Bytes(_), ColumnType::Bytes)
                | (Value::DataLink(_), ColumnType::DataLink)
        )
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts text from `Text` or `DataLink` values.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) | Value::DataLink(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Discriminant used for cross-type ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
            Value::Bytes(_) => 5,
            Value::DataLink(_) => 6,
        }
    }
}

/// Equality matches the total order below: floats compare *bitwise* via the
/// IEEE total-order key, so `NaN == NaN` and `-0.0 != +0.0`. That keeps
/// `Eq`, `Ord` and `Hash` mutually consistent, which values-as-keys require.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.rank());
        match self {
            Value::Null => {}
            Value::Int(i) => state.write_i64(*i),
            Value::Float(f) => state.write_u64(total_order_key(*f)),
            Value::Bool(b) => state.write_u8(u8::from(*b)),
            Value::Text(s) | Value::DataLink(s) => state.write(s.as_bytes()),
            Value::Bytes(b) => state.write(b),
        }
    }
}

/// Total order over values so they can serve as B-tree keys. Floats are
/// ordered by their IEEE total-order bit pattern (NaN sorts high), matching
/// what a database index needs: *some* deterministic total order.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => {
                let ka = total_order_key(*a);
                let kb = total_order_key(*b);
                ka.cmp(&kb)
            }
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (DataLink(a), DataLink(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn total_order_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}'", hex(b)),
            Value::DataLink(u) => write!(f, "DATALINK('{u}')"),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Convenience conversions for terser test and example code.
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A row is a vector of values, positionally matching the schema's columns.
pub type Row = Vec<Value>;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Column { name: name.to_string(), ty, nullable: false }
    }

    pub fn nullable(name: &str, ty: ColumnType) -> Self {
        Column { name: name.to_string(), ty, nullable: true }
    }
}

/// A table schema: named columns with a single-column primary key.
///
/// Composite keys are not needed by any DataLinks structure (the repository
/// keys everything by file path or token id), so the engine keeps the
/// textbook single-column primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    pub table: String,
    pub columns: Vec<Column>,
    /// Index into `columns` of the primary-key column.
    pub primary_key: usize,
}

impl Schema {
    /// Builds a schema; the primary key is the column named `pk`.
    pub fn new(table: &str, columns: Vec<Column>, pk: &str) -> Result<Self, String> {
        let primary_key = columns
            .iter()
            .position(|c| c.name == pk)
            .ok_or_else(|| format!("primary key column {pk} not in column list"))?;
        if columns[primary_key].nullable {
            return Err(format!("primary key column {pk} must not be nullable"));
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != columns.len() {
            return Err(format!("duplicate column names in table {table}"));
        }
        Ok(Schema { table: table.to_string(), columns, primary_key })
    }

    /// Index of column `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates a row against the schema; returns a description of the
    /// first violation.
    pub fn validate(&self, row: &Row) -> Result<(), String> {
        if row.len() != self.columns.len() {
            return Err(format!(
                "row has {} values, table {} has {} columns",
                row.len(),
                self.table,
                self.columns.len()
            ));
        }
        for (value, col) in row.iter().zip(&self.columns) {
            if value.is_null() {
                if !col.nullable {
                    return Err(format!("column {} is not nullable", col.name));
                }
            } else if !value.matches(col.ty) {
                return Err(format!(
                    "value {value} does not match type {:?} of column {}",
                    col.ty, col.name
                ));
            }
        }
        if row[self.primary_key].is_null() {
            return Err("primary key is null".to_string());
        }
        Ok(())
    }

    /// Extracts the primary-key value of a row.
    pub fn key_of(&self, row: &Row) -> Value {
        row[self.primary_key].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_schema() -> Schema {
        Schema::new(
            "movies",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("title", ColumnType::Text),
                Column::nullable("clip", ColumnType::DataLink),
                Column::nullable("price", ColumnType::Float),
            ],
            "id",
        )
        .unwrap()
    }

    #[test]
    fn schema_rejects_unknown_pk() {
        assert!(Schema::new("t", vec![Column::new("a", ColumnType::Int)], "b").is_err());
    }

    #[test]
    fn schema_rejects_nullable_pk() {
        assert!(Schema::new("t", vec![Column::nullable("a", ColumnType::Int)], "a").is_err());
    }

    #[test]
    fn schema_rejects_duplicate_columns() {
        assert!(Schema::new(
            "t",
            vec![Column::new("a", ColumnType::Int), Column::new("a", ColumnType::Text)],
            "a"
        )
        .is_err());
    }

    #[test]
    fn validate_accepts_good_row() {
        let s = movie_schema();
        let row = vec![
            Value::Int(1),
            Value::Text("Vertigo".into()),
            Value::DataLink("dlfs://srv/clips/vertigo.mpg".into()),
            Value::Float(9.99),
        ];
        assert!(s.validate(&row).is_ok());
        assert_eq!(s.key_of(&row), Value::Int(1));
    }

    #[test]
    fn validate_rejects_wrong_arity_and_types() {
        let s = movie_schema();
        assert!(s.validate(&vec![Value::Int(1)]).is_err());
        let bad_type = vec![
            Value::Int(1),
            Value::Int(2), // title must be text
            Value::Null,
            Value::Null,
        ];
        assert!(s.validate(&bad_type).is_err());
    }

    #[test]
    fn validate_rejects_null_in_non_nullable() {
        let s = movie_schema();
        let row = vec![Value::Int(1), Value::Null, Value::Null, Value::Null];
        assert!(s.validate(&row).is_err());
    }

    #[test]
    fn nullable_columns_accept_null() {
        let s = movie_schema();
        let row = vec![Value::Int(1), Value::Text("M".into()), Value::Null, Value::Null];
        assert!(s.validate(&row).is_ok());
    }

    #[test]
    fn value_total_order_is_consistent() {
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Float(-1.5),
            Value::Float(2.0),
            Value::Int(3),
            Value::Null,
            Value::Text("b".into()),
            Value::Text("a".into()),
        ];
        vals.sort();
        // Null < ints < floats < text; floats ordered, NaN last among floats.
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(3));
        assert_eq!(vals[2], Value::Float(-1.5));
        assert_eq!(vals[3], Value::Float(2.0));
        assert!(matches!(vals[4], Value::Float(f) if f.is_nan()));
        assert_eq!(vals[5], Value::Text("a".into()));
    }

    #[test]
    fn float_total_order_handles_signs_and_zero() {
        let a = Value::Float(-0.0);
        let b = Value::Float(0.0);
        assert!(a < b, "-0.0 sorts before +0.0 in total order");
        assert!(Value::Float(f64::NEG_INFINITY) < Value::Float(-1.0));
        assert!(Value::Float(1.0) < Value::Float(f64::INFINITY));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Text("x".into()).to_string(), "'x'");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "x'ab01'");
        assert_eq!(Value::DataLink("dlfs://s/f".into()).to_string(), "DATALINK('dlfs://s/f')");
    }

    #[test]
    fn value_matches_types() {
        assert!(Value::Int(1).matches(ColumnType::Int));
        assert!(!Value::Int(1).matches(ColumnType::Text));
        assert!(Value::Null.matches(ColumnType::Bytes));
        assert!(Value::DataLink("u".into()).matches(ColumnType::DataLink));
    }
}
