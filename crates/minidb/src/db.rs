//! The database facade: open/recover, DDL, transactions, checkpoints,
//! observers, 2PC participant registry, and read-committed helpers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::device::StorageEnv;
use crate::error::{DbError, DbResult};
use crate::lock::LockManager;
use crate::ops::RowOp;
use crate::replica::ReplicationFeed;
use crate::snapshot::{latest_valid_snapshot, slot_for_generation, write_snapshot, SnapshotSource};
use crate::table::TableStore;
use crate::txn::Txn;
use crate::value::{Row, Schema, Value};
use crate::wal::{Lsn, TxId, Wal, WalOptions, WalRecord};

/// Kind of DML statement reported to observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Insert,
    Update,
    Delete,
}

/// A DML event delivered to observers *during statement execution*, inside
/// the transaction — the interception point the DataLinks engine uses to
/// turn DATALINK column changes into link/unlink sub-transactions (§2.2).
pub struct DmlEvent<'a> {
    pub txid: TxId,
    pub table: &'a str,
    pub kind: OpKind,
    pub key: &'a Value,
    pub before: Option<&'a Row>,
    pub after: Option<&'a Row>,
}

/// Synchronous DML hook. Returning `Err` vetoes the statement (the
/// transaction stays alive; the statement reports [`DbError::Vetoed`]).
pub trait DmlObserver: Send + Sync {
    fn on_dml(&self, db: &Database, event: &DmlEvent<'_>) -> Result<(), String>;
}

/// A two-phase-commit participant enlisted in a host transaction. DLFM
/// child agents implement this so link/unlink work commits and aborts with
/// the host SQL transaction (§2.2).
pub trait Participant: Send + Sync {
    /// Phase one: durably promise to commit. An error aborts the host
    /// transaction.
    fn prepare(&self, txid: TxId) -> Result<(), String>;
    /// Phase two, commit path. Must succeed (retries are internal).
    fn commit(&self, txid: TxId);
    /// Abort path; also called when the host transaction never prepared.
    /// Must be idempotent.
    fn abort(&self, txid: TxId);
}

/// A DML statement injected into a running transaction by an observer.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectedDml {
    /// Insert the row, or replace the existing row with the same key.
    Upsert { table: String, row: Row },
    /// Delete the row at `key`; a missing row is not an error.
    Delete { table: String, key: Value },
}

/// Options for opening a database.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbOptions {
    /// Replay the log only up to (and including) this LSN — point-in-time
    /// restore (§4.4 coordinated backup and recovery).
    pub stop_at_lsn: Option<Lsn>,
    /// Commit durability policy: group commit (default) or per-commit sync,
    /// batch bound and optional commit-delay window. See [`WalOptions`].
    pub wal: WalOptions,
    /// Log retention budget in bytes. A commit that leaves more than this
    /// many log bytes retained triggers an automatic
    /// [`Database::checkpoint_and_truncate`], keeping the log (and every
    /// standby log fed from it) bounded under sustained write load.
    ///
    /// Zero (the default) **self-tunes**: the effective budget is
    /// `max(128 KiB, 4 x last snapshot size)`, so small databases never
    /// checkpoint just for churn noise while large ones bound their log
    /// to a small multiple of the work a recovery replay would cost.
    /// [`DbOptions::NO_AUTO_CHECKPOINT`] disables automatic checkpointing
    /// entirely (the pre-self-tuning opt-out — full-replay experiments
    /// and deep point-in-time restores need the log intact). Note:
    /// truncation limits point-in-time restore to states at or above the
    /// low-water mark.
    pub checkpoint_every_bytes: u64,
}

impl DbOptions {
    /// Sentinel for [`DbOptions::checkpoint_every_bytes`]: never
    /// checkpoint automatically; the log grows until an explicit
    /// [`Database::checkpoint_and_truncate`].
    pub const NO_AUTO_CHECKPOINT: u64 = u64::MAX;

    /// Floor of the self-tuned retention budget: below this much retained
    /// log, replay is so cheap that truncation is pure overhead.
    pub const AUTO_CHECKPOINT_FLOOR: u64 = 128 * 1024;
}

/// Participants enlisted in one transaction, keyed by deduplication name.
type EnlistedParticipants = Vec<(String, Arc<dyn Participant>)>;

pub(crate) struct DbInner {
    pub(crate) env: StorageEnv,
    pub(crate) wal: Wal,
    pub(crate) tables: RwLock<HashMap<String, TableStore>>,
    pub(crate) locks: LockManager,
    next_txid: AtomicU64,
    observers: RwLock<Vec<Arc<dyn DmlObserver>>>,
    participants: Mutex<HashMap<TxId, EnlistedParticipants>>,
    /// Commit pipeline gate: committers hold it *shared* across log append
    /// and table apply (so they group-commit concurrently); checkpoints and
    /// backups take it *exclusive* to quiesce the pipeline and observe a
    /// state where the log tail and the committed stores agree.
    pub(crate) commit_latch: RwLock<()>,
    snapshot_gen: AtomicU64,
    /// Participant-side transactions prepared but undecided at recovery.
    in_doubt: Mutex<HashMap<TxId, Vec<RowOp>>>,
    /// *Live* prepared transactions (2PC phase one done, decision pending,
    /// the `Txn` handle still open). A checkpoint persists these alongside
    /// the recovery-time in-doubt set so WAL truncation can never cut away
    /// the only durable copy of an undecided transaction's redo ops.
    live_prepared: Mutex<HashMap<TxId, Vec<RowOp>>>,
    /// Coordinator-side outcomes for transactions that had participants.
    outcomes: Mutex<HashMap<TxId, bool>>,
    /// Observer-injected statements awaiting pickup by their transaction.
    injected: Mutex<HashMap<TxId, Vec<InjectedDml>>>,
    /// Log retention budget ([`DbOptions::checkpoint_every_bytes`]).
    auto_checkpoint_bytes: u64,
    /// Serialized size of the newest snapshot (0 = none yet) — what the
    /// self-tuned retention budget keys off.
    last_snapshot_bytes: AtomicU64,
    /// At most one automatic checkpoint runs at a time.
    checkpoint_running: AtomicBool,
    /// Checkpoint telemetry (see [`DbTelemetry`]).
    telemetry: DbTelemetry,
}

/// Telemetry handles for one database, beyond what the WAL itself records
/// ([`crate::wal::WalTelemetry`]): shared `Arc`s a metric registry adopts.
#[derive(Clone)]
pub struct DbTelemetry {
    /// Wall-clock duration of each checkpoint (snapshot write + log
    /// record), in nanoseconds. Checkpoints run under the exclusive commit
    /// latch, so this is also how long the commit pipeline stalls.
    pub checkpoint_ns: Arc<dl_obs::Histogram>,
    /// Serialized size of the newest snapshot, in bytes.
    pub checkpoint_bytes: Arc<dl_obs::Gauge>,
}

impl DbTelemetry {
    fn new() -> DbTelemetry {
        DbTelemetry {
            checkpoint_ns: Arc::new(dl_obs::Histogram::new()),
            checkpoint_bytes: Arc::new(dl_obs::Gauge::new()),
        }
    }
}

/// Handle to a database. Clone freely; all clones share state.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

/// Applies one logical op to the committed stores. Used by live commits and
/// by log replay; replay trusts the log and skips validation.
pub(crate) fn apply_op(tables: &mut HashMap<String, TableStore>, op: &RowOp) -> DbResult<()> {
    match op {
        RowOp::CreateTable(schema) => {
            tables.entry(schema.table.clone()).or_insert_with(|| TableStore::new(schema.clone()));
        }
        RowOp::DropTable(name) => {
            tables.remove(name);
        }
        RowOp::CreateIndex { table, column } => {
            let store = tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            store.create_index(column)?;
        }
        RowOp::Insert { table, row } => {
            let store = tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            store.apply_insert(row.clone());
        }
        RowOp::Update { table, key, row } => {
            let store = tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            store.apply_update(key, row.clone());
        }
        RowOp::Delete { table, key } => {
            let store = tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            store.apply_delete(key);
        }
    }
    Ok(())
}

impl Database {
    /// Opens (and recovers) a database from `env`.
    pub fn open(env: StorageEnv) -> DbResult<Database> {
        Self::open_with(env, DbOptions::default())
    }

    /// Opens with options; `stop_at_lsn` gives point-in-time restore.
    /// Restores below the log's checkpoint low-water mark are impossible
    /// (the records are truncated away) and report
    /// [`DbError::TruncatedLog`].
    pub fn open_with(env: StorageEnv, opts: DbOptions) -> DbResult<Database> {
        // Open the WAL first: it resolves the truncation control record
        // (active slot device + logical base) and trims any torn tail.
        let (wal, all_records) = Wal::open_env(&env, opts.wal)?;
        let wal_base = wal.base_lsn();
        if let Some(stop) = opts.stop_at_lsn {
            if stop < wal_base {
                return Err(DbError::TruncatedLog { base: wal_base });
            }
        }
        let records: Vec<(Lsn, WalRecord)> = all_records
            .into_iter()
            .filter(|(lsn, _)| opts.stop_at_lsn.is_none_or(|stop| *lsn < stop))
            .collect();

        // Choose the newest usable snapshot. For point-in-time restores the
        // snapshot must not already contain state past the target LSN.
        let chosen = latest_valid_snapshot(&env, |snap| {
            opts.stop_at_lsn.is_none_or(|stop| snap.base_lsn <= stop)
        })?;
        // Seed the recovery image from the snapshot (a complete image since
        // format v2: tables plus transaction-resolution state).
        let (generation, base_lsn, snap_next_txid, mut outcomes, mut prepared, mut tables) =
            match chosen {
                Some(s) => {
                    (s.generation, s.base_lsn, s.next_txid, s.outcomes, s.prepared, s.tables)
                }
                None => (0, 0, 0, HashMap::new(), HashMap::new(), HashMap::new()),
            };
        if base_lsn < wal_base {
            // The log was truncated on the promise of a durable snapshot at
            // the low-water mark; without one there is a replay gap.
            return Err(DbError::Corrupt(format!(
                "log truncated to {wal_base} but the newest usable snapshot covers only {base_lsn}"
            )));
        }

        // Scan the retained log for transaction-resolution state, overlaid
        // on what the snapshot carried.
        let mut decided: HashMap<TxId, bool> = HashMap::new();
        let mut max_txid: TxId = snap_next_txid.saturating_sub(1);
        for (_, rec) in &records {
            match rec {
                WalRecord::Commit { txid, participants, .. } => {
                    max_txid = max_txid.max(*txid);
                    if !participants.is_empty() {
                        outcomes.insert(*txid, true);
                    }
                }
                WalRecord::Prepare { txid, ops } => {
                    max_txid = max_txid.max(*txid);
                    prepared.insert(*txid, ops.clone());
                }
                WalRecord::Decide { txid, commit } => {
                    max_txid = max_txid.max(*txid);
                    decided.insert(*txid, *commit);
                }
                _ => {}
            }
        }

        // Redo pass from the snapshot's base.
        for (lsn, rec) in &records {
            if *lsn < base_lsn {
                continue;
            }
            match rec {
                WalRecord::Ddl(op) => apply_op(&mut tables, op)?,
                WalRecord::Commit { ops, .. } => {
                    for op in ops {
                        apply_op(&mut tables, op)?;
                    }
                }
                WalRecord::Decide { txid, commit: true } => {
                    if let Some(ops) = prepared.get(txid) {
                        for op in ops {
                            apply_op(&mut tables, op)?;
                        }
                    }
                }
                _ => {}
            }
        }

        // Prepared-but-undecided transactions are in doubt; the coordinator
        // (DataLinks recovery orchestration) resolves them.
        let in_doubt: HashMap<TxId, Vec<RowOp>> =
            prepared.into_iter().filter(|(txid, _)| !decided.contains_key(txid)).collect();

        // Seed the self-tuning checkpoint budget from the snapshot we
        // recovered off (its slot device length is its serialized size).
        let last_snapshot_bytes =
            if generation > 0 { env.device(slot_for_generation(generation))?.len()? } else { 0 };

        Ok(Database {
            inner: Arc::new(DbInner {
                env,
                wal,
                tables: RwLock::new(tables),
                locks: LockManager::new(),
                next_txid: AtomicU64::new(max_txid + 1),
                observers: RwLock::new(Vec::new()),
                participants: Mutex::new(HashMap::new()),
                commit_latch: RwLock::new(()),
                snapshot_gen: AtomicU64::new(generation),
                in_doubt: Mutex::new(in_doubt),
                live_prepared: Mutex::new(HashMap::new()),
                outcomes: Mutex::new(outcomes),
                injected: Mutex::new(HashMap::new()),
                auto_checkpoint_bytes: opts.checkpoint_every_bytes,
                last_snapshot_bytes: AtomicU64::new(last_snapshot_bytes),
                checkpoint_running: AtomicBool::new(false),
                telemetry: DbTelemetry::new(),
            }),
        })
    }

    pub(crate) fn inner(&self) -> &DbInner {
        &self.inner
    }

    // --- DDL (auto-committed) ----------------------------------------------

    /// Creates a table. DDL is auto-committed and logged.
    pub fn create_table(&self, schema: Schema) -> DbResult<()> {
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&schema.table) {
            return Err(DbError::TableExists(schema.table));
        }
        let op = RowOp::CreateTable(schema);
        self.inner.wal.append(&WalRecord::Ddl(op.clone()))?;
        apply_op(&mut tables, &op)
    }

    /// Creates a secondary index on `table.column`, back-filling it.
    pub fn create_index(&self, table: &str, column: &str) -> DbResult<()> {
        let mut tables = self.inner.tables.write();
        let store = tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        if !store.schema.columns.iter().any(|c| c.name == column) {
            return Err(DbError::NoSuchColumn(column.to_string()));
        }
        let op = RowOp::CreateIndex { table: table.to_string(), column: column.to_string() };
        self.inner.wal.append(&WalRecord::Ddl(op))?;
        store.create_index(column)
    }

    /// Drops a table.
    pub fn drop_table(&self, table: &str) -> DbResult<()> {
        let mut tables = self.inner.tables.write();
        if !tables.contains_key(table) {
            return Err(DbError::NoSuchTable(table.to_string()));
        }
        let op = RowOp::DropTable(table.to_string());
        self.inner.wal.append(&WalRecord::Ddl(op.clone()))?;
        apply_op(&mut tables, &op)
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.inner.tables.read().contains_key(name)
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn schema(&self, table: &str) -> DbResult<Schema> {
        self.inner
            .tables
            .read()
            .get(table)
            .map(|s| s.schema.clone())
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))
    }

    // --- Transactions -------------------------------------------------------

    /// Begins a transaction.
    pub fn begin(&self) -> Txn {
        let id = self.inner.next_txid.fetch_add(1, Ordering::SeqCst);
        Txn::new(self.clone(), id)
    }

    /// Registers a DML observer (e.g. the DataLinks engine).
    pub fn register_observer(&self, obs: Arc<dyn DmlObserver>) {
        self.inner.observers.write().push(obs);
    }

    pub(crate) fn notify_observers(&self, event: &DmlEvent<'_>) -> DbResult<()> {
        let observers = self.inner.observers.read().clone();
        for obs in observers {
            obs.on_dml(self, event).map_err(DbError::Vetoed)?;
        }
        Ok(())
    }

    /// Queues a DML statement to be executed *by transaction `txid` itself*
    /// right after the current statement completes. This is how an observer
    /// (which only holds `&Database`) adds system-table maintenance to the
    /// transaction that triggered it — the DataLinks engine keeps its
    /// `__dl_meta` rows consistent "within the same transaction context"
    /// (§4.3) through this hook. Injected statements take normal locks but
    /// do not re-notify observers.
    pub fn inject_dml(&self, txid: TxId, dml: InjectedDml) {
        self.inner.injected.lock().entry(txid).or_default().push(dml);
    }

    pub(crate) fn take_injected(&self, txid: TxId) -> Vec<InjectedDml> {
        self.inner.injected.lock().remove(&txid).unwrap_or_default()
    }

    pub(crate) fn clear_injected(&self, txid: TxId) {
        self.inner.injected.lock().remove(&txid);
    }

    /// Enlists a 2PC participant in transaction `txid`; `name` deduplicates
    /// (one DLFM agent per file server per transaction).
    pub fn enlist_participant(&self, txid: TxId, name: &str, p: Arc<dyn Participant>) {
        let mut map = self.inner.participants.lock();
        let list = map.entry(txid).or_default();
        if !list.iter().any(|(n, _)| n == name) {
            list.push((name.to_string(), p));
        }
    }

    pub(crate) fn take_participants(&self, txid: TxId) -> Vec<(String, Arc<dyn Participant>)> {
        self.inner.participants.lock().remove(&txid).unwrap_or_default()
    }

    pub(crate) fn record_outcome(&self, txid: TxId, committed: bool) {
        self.inner.outcomes.lock().insert(txid, committed);
    }

    /// Did host transaction `txid` (which had participants) commit? `None`
    /// means the log holds no commit decision — presumed abort.
    pub fn coordinator_outcome(&self, txid: TxId) -> Option<bool> {
        self.inner.outcomes.lock().get(&txid).copied()
    }

    // --- Participant-side in-doubt management -------------------------------

    /// Transactions prepared here but undecided at recovery time.
    pub fn in_doubt_txns(&self) -> Vec<TxId> {
        let mut ids: Vec<TxId> = self.inner.in_doubt.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The redo ops of an in-doubt transaction. 2PC recovery orchestrators
    /// inspect these to map a participant transaction back to its
    /// coordinator transaction (the prepare payload is the only durable
    /// record of that association, as in presumed-abort 2PC).
    pub fn in_doubt_ops(&self, txid: TxId) -> Option<Vec<RowOp>> {
        self.inner.in_doubt.lock().get(&txid).cloned()
    }

    /// Settles an in-doubt transaction per the coordinator's decision.
    pub fn resolve_in_doubt(&self, txid: TxId, commit: bool) -> DbResult<()> {
        // Latch before removal: a checkpoint between removing the in-doubt
        // entry and appending the Decide record would snapshot the
        // transaction as neither prepared nor decided — and truncation
        // would then lose its redo ops for good.
        let _latch = self.inner.commit_latch.read();
        let ops = self
            .inner
            .in_doubt
            .lock()
            .remove(&txid)
            .ok_or_else(|| DbError::InvalidTxnState(format!("tx{txid} not in doubt")))?;
        self.inner.wal.append(&WalRecord::Decide { txid, commit })?;
        if commit {
            let mut tables = self.inner.tables.write();
            for op in &ops {
                apply_op(&mut tables, op)?;
            }
        }
        Ok(())
    }

    // --- Durability management ----------------------------------------------

    /// The current tail LSN — the paper's "database state identifier".
    pub fn state_id(&self) -> Lsn {
        self.inner.wal.tail_lsn()
    }

    /// One past the last byte the log has durably synced.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.wal.durable_lsn()
    }

    /// The log's checkpoint low-water mark (0 until the first truncation).
    pub fn wal_base_lsn(&self) -> Lsn {
        self.inner.wal.base_lsn()
    }

    /// Bytes of log currently retained (`tail − base`) — what
    /// [`DbOptions::checkpoint_every_bytes`] budgets against.
    pub fn wal_retained_bytes(&self) -> u64 {
        self.inner.wal.retained_bytes()
    }

    /// Checkpoint telemetry handles (see [`DbTelemetry`]).
    pub fn telemetry(&self) -> DbTelemetry {
        self.inner.telemetry.clone()
    }

    /// The WAL's telemetry handles: fsync latency and group-commit batch
    /// sizes (see [`crate::wal::WalTelemetry`]).
    pub fn wal_telemetry(&self) -> crate::wal::WalTelemetry {
        self.inner.wal.telemetry().clone()
    }

    /// A tail-reading handle over this database's live WAL, fed by the
    /// group-commit leader after every batch sync — the feed a replication
    /// shipper tails (see [`crate::wal::WalReader`] and
    /// [`crate::replica::StandbyDb`]).
    pub fn wal_reader(&self) -> crate::wal::WalReader {
        self.inner.wal.reader()
    }

    /// The full replication feed: the WAL reader plus access to this
    /// database's checkpoint images, so a shipper can fall back to
    /// *checkpoint shipping* (install the latest snapshot, then tail the
    /// suffix) when the frames it needs were truncated away.
    pub fn replication_feed(&self) -> ReplicationFeed {
        ReplicationFeed::new(self.wal_reader(), self.inner.env.clone())
    }

    /// Writes a snapshot to the older ping-pong slot and logs a checkpoint.
    /// Returns the new snapshot generation. Since format v2 the snapshot is
    /// a complete recovery image (tables, coordinator outcomes, undecided
    /// prepared transactions, next transaction id), which is what makes the
    /// follow-up [`Database::checkpoint_and_truncate`] safe.
    pub fn checkpoint(&self) -> DbResult<u64> {
        self.checkpoint_inner().map(|(generation, _)| generation)
    }

    /// Checkpoints, then truncates the log below the snapshot's base —
    /// the low-water mark. Returns `(generation, new log base)`. Everything
    /// a future recovery needs from below the base now lives in the
    /// snapshot; the `Checkpoint` record itself stays in the log (it is the
    /// first retained record), so standbys tailing the log observe the
    /// checkpoint and bound their own logs in lockstep.
    pub fn checkpoint_and_truncate(&self) -> DbResult<(u64, Lsn)> {
        let (generation, base_lsn) = self.checkpoint_inner()?;
        let new_base = self.inner.wal.truncate_below(base_lsn)?;
        Ok((generation, new_base))
    }

    fn checkpoint_inner(&self) -> DbResult<(u64, Lsn)> {
        let _latch = self.inner.commit_latch.write();
        let started = std::time::Instant::now();
        let generation = self.inner.snapshot_gen.load(Ordering::SeqCst) + 1;
        let dev = self.inner.env.device(slot_for_generation(generation))?;
        let base_lsn = self.inner.wal.tail_lsn();
        {
            let tables = self.inner.tables.read();
            // Undecided prepared transactions, whether left over from
            // recovery (in_doubt) or still live right now: the snapshot
            // must carry their redo ops so truncation cannot orphan them.
            let mut prepared = self.inner.in_doubt.lock().clone();
            for (txid, ops) in self.inner.live_prepared.lock().iter() {
                prepared.insert(*txid, ops.clone());
            }
            let outcomes = self.inner.outcomes.lock().clone();
            write_snapshot(
                &dev,
                SnapshotSource {
                    generation,
                    base_lsn,
                    next_txid: self.inner.next_txid.load(Ordering::SeqCst),
                    outcomes: &outcomes,
                    prepared: &prepared,
                    tables: &tables,
                },
            )?;
        }
        self.inner.wal.append(&WalRecord::Checkpoint { generation })?;
        self.inner.snapshot_gen.store(generation, Ordering::SeqCst);
        let snapshot_bytes = dev.len()?;
        self.inner.last_snapshot_bytes.store(snapshot_bytes, Ordering::SeqCst);
        self.inner.telemetry.checkpoint_ns.record_duration(started.elapsed());
        self.inner.telemetry.checkpoint_bytes.set(snapshot_bytes.min(i64::MAX as u64) as i64);
        Ok((generation, base_lsn))
    }

    /// The log-retention budget currently in force: the configured value,
    /// or — under the self-tuning default of 0 — `max(128 KiB, 4 x last
    /// snapshot size)`, so the retained log is bounded by a small multiple
    /// of what a recovery replay would re-derive from the snapshot anyway.
    pub fn effective_checkpoint_budget(&self) -> u64 {
        match self.inner.auto_checkpoint_bytes {
            0 => DbOptions::AUTO_CHECKPOINT_FLOOR
                .max(self.inner.last_snapshot_bytes.load(Ordering::SeqCst).saturating_mul(4)),
            n => n,
        }
    }

    /// Commit-path hook: when the log has outgrown the retention budget
    /// (configured or self-tuned — see
    /// [`Database::effective_checkpoint_budget`]), checkpoint-and-truncate
    /// once (concurrent committers skip rather than pile up behind the
    /// exclusive latch). Errors are deliberately swallowed: the commit
    /// itself already succeeded, and a failed automatic checkpoint
    /// surfaces on the next explicit one.
    pub(crate) fn maybe_auto_checkpoint(&self) {
        if self.inner.auto_checkpoint_bytes == DbOptions::NO_AUTO_CHECKPOINT {
            return;
        }
        let budget = self.effective_checkpoint_budget();
        if self.inner.wal.retained_bytes() <= budget {
            return;
        }
        if self.inner.checkpoint_running.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.checkpoint_and_truncate();
        self.inner.checkpoint_running.store(false, Ordering::SeqCst);
    }

    /// Registers a live prepared transaction (called by [`Txn::prepare`])
    /// so checkpoints persist its redo ops until a decision is logged.
    pub(crate) fn register_prepared(&self, txid: TxId, ops: Vec<RowOp>) {
        self.inner.live_prepared.lock().insert(txid, ops);
    }

    /// Drops a live prepared registration once its decision is durable.
    pub(crate) fn unregister_prepared(&self, txid: TxId) {
        self.inner.live_prepared.lock().remove(&txid);
    }

    /// A moment-in-time backup: forks the storage environment under the
    /// commit latch so the copy is transaction-consistent.
    pub fn backup(&self) -> DbResult<StorageEnv> {
        let _latch = self.inner.commit_latch.write();
        self.inner.env.fork()
    }

    // --- Read-committed helpers (no locks) -----------------------------------

    /// Reads the committed row at `key` without taking locks. The committed
    /// stores only change under the tables write lock (inside the shared
    /// commit latch), so this is a consistent read-committed point lookup.
    pub fn get_committed(&self, table: &str, key: &Value) -> DbResult<Option<Row>> {
        let tables = self.inner.tables.read();
        let store = tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        Ok(store.get(key).cloned())
    }

    /// Scans committed rows without locks.
    pub fn scan_committed(&self, table: &str) -> DbResult<Vec<Row>> {
        let tables = self.inner.tables.read();
        let store = tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        Ok(store.iter().map(|(_, row)| row.clone()).collect())
    }

    /// Committed row count.
    pub fn count(&self, table: &str) -> DbResult<usize> {
        let tables = self.inner.tables.read();
        tables.get(table).map(|s| s.len()).ok_or_else(|| DbError::NoSuchTable(table.to_string()))
    }

    /// Committed primary keys whose `column` equals `value` (uses the index
    /// when present).
    pub fn find_committed(&self, table: &str, column: &str, value: &Value) -> DbResult<Vec<Value>> {
        let tables = self.inner.tables.read();
        let store = tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        store.find_equal(column, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType};

    fn schema(name: &str) -> Schema {
        Schema::new(
            name,
            vec![Column::new("id", ColumnType::Int), Column::nullable("val", ColumnType::Text)],
            "id",
        )
        .unwrap()
    }

    fn row(id: i64, val: &str) -> Row {
        vec![Value::Int(id), Value::Text(val.into())]
    }

    #[test]
    fn ddl_roundtrip_through_recovery() {
        let env = StorageEnv::mem();
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            db.create_index("t", "val").unwrap();
            assert!(db.has_table("t"));
            assert_eq!(db.create_table(schema("t")), Err(DbError::TableExists("t".into())));
        }
        let db = Database::open(env).unwrap();
        assert!(db.has_table("t"));
        assert_eq!(db.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn commit_survives_reopen_abort_does_not() {
        let env = StorageEnv::mem();
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            let mut tx = db.begin();
            tx.insert("t", row(1, "committed")).unwrap();
            tx.commit().unwrap();

            let mut tx2 = db.begin();
            tx2.insert("t", row(2, "aborted")).unwrap();
            tx2.abort();
        }
        let db = Database::open(env).unwrap();
        assert_eq!(db.count("t").unwrap(), 1);
        assert!(db.get_committed("t", &Value::Int(1)).unwrap().is_some());
        assert!(db.get_committed("t", &Value::Int(2)).unwrap().is_none());
    }

    #[test]
    fn checkpoint_then_more_commits_recovers_both() {
        let env = StorageEnv::mem();
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            let mut tx = db.begin();
            tx.insert("t", row(1, "before-ckpt")).unwrap();
            tx.commit().unwrap();
            db.checkpoint().unwrap();
            let mut tx = db.begin();
            tx.insert("t", row(2, "after-ckpt")).unwrap();
            tx.commit().unwrap();
        }
        let db = Database::open(env).unwrap();
        assert_eq!(db.count("t").unwrap(), 2);
    }

    #[test]
    fn double_checkpoint_ping_pongs() {
        let env = StorageEnv::mem();
        let db = Database::open(env.clone()).unwrap();
        db.create_table(schema("t")).unwrap();
        let g1 = db.checkpoint().unwrap();
        let g2 = db.checkpoint().unwrap();
        assert_eq!(g2, g1 + 1);
        let db2 = Database::open(env).unwrap();
        assert!(db2.has_table("t"));
    }

    #[test]
    fn self_tuned_default_bounds_the_log_under_sustained_churn() {
        // Nobody configured a budget: insert-then-delete churn appends far
        // more log than the floor, live data stays tiny, and the self-tuned
        // default must keep truncating without an explicit checkpoint.
        let env = StorageEnv::mem();
        let db = Database::open(env.clone()).unwrap();
        db.create_table(schema("t")).unwrap();
        assert_eq!(db.effective_checkpoint_budget(), DbOptions::AUTO_CHECKPOINT_FLOOR);

        let payload = "x".repeat(4096);
        let mut peak = 0u64;
        for i in 0..128i64 {
            let mut tx = db.begin();
            tx.insert("t", vec![Value::Int(i), Value::Text(payload.clone())]).unwrap();
            tx.commit().unwrap();
            let mut tx = db.begin();
            tx.delete("t", &Value::Int(i)).unwrap();
            tx.commit().unwrap();
            peak = peak.max(db.wal_retained_bytes());
        }

        assert!(db.wal_base_lsn() > 0, "churn alone must have triggered truncation");
        // The snapshot of a near-empty table stays under the floor, so the
        // effective budget is the floor; a committer can overshoot it by at
        // most the commit that noticed, before truncating synchronously.
        let slack = 2 * payload.len() as u64;
        assert!(
            peak <= DbOptions::AUTO_CHECKPOINT_FLOOR + slack,
            "retained log peaked at {peak} bytes against a {} budget",
            DbOptions::AUTO_CHECKPOINT_FLOOR
        );

        let db2 = Database::open(env).unwrap();
        assert_eq!(db2.count("t").unwrap(), 0, "recovery off the truncated log agrees");
    }

    #[test]
    fn point_in_time_restore_stops_at_lsn() {
        let env = StorageEnv::mem();
        let db = Database::open(env.clone()).unwrap();
        db.create_table(schema("t")).unwrap();

        let mut tx = db.begin();
        tx.insert("t", row(1, "first")).unwrap();
        let lsn1 = tx.commit().unwrap();

        let mut tx = db.begin();
        tx.insert("t", row(2, "second")).unwrap();
        tx.commit().unwrap();

        let backup = db.backup().unwrap();
        let restored = Database::open_with(
            backup,
            DbOptions { stop_at_lsn: Some(lsn1), ..Default::default() },
        )
        .unwrap();
        assert_eq!(restored.count("t").unwrap(), 1);
        assert!(restored.get_committed("t", &Value::Int(1)).unwrap().is_some());
    }

    #[test]
    fn point_in_time_restore_ignores_newer_snapshot() {
        let env = StorageEnv::mem();
        let db = Database::open(env.clone()).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "early")).unwrap();
        let lsn1 = tx.commit().unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(2, "late")).unwrap();
        tx.commit().unwrap();
        db.checkpoint().unwrap(); // snapshot now contains both rows

        let backup = db.backup().unwrap();
        let restored = Database::open_with(
            backup,
            DbOptions { stop_at_lsn: Some(lsn1), ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            restored.count("t").unwrap(),
            1,
            "restore must replay from scratch, not use the too-new snapshot"
        );
    }

    #[test]
    fn backup_is_isolated_from_later_writes() {
        let env = StorageEnv::mem();
        let db = Database::open(env).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.commit().unwrap();

        let backup = db.backup().unwrap();

        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.commit().unwrap();

        let restored = Database::open(backup).unwrap();
        assert_eq!(restored.count("t").unwrap(), 1);
    }

    struct VetoAll;
    impl DmlObserver for VetoAll {
        fn on_dml(&self, _db: &Database, _event: &DmlEvent<'_>) -> Result<(), String> {
            Err("computer says no".into())
        }
    }

    #[test]
    fn observer_vetoes_statement_but_txn_survives() {
        let env = StorageEnv::mem();
        let db = Database::open(env).unwrap();
        db.create_table(schema("t")).unwrap();
        db.register_observer(Arc::new(VetoAll));
        let mut tx = db.begin();
        let err = tx.insert("t", row(1, "x")).unwrap_err();
        assert!(matches!(err, DbError::Vetoed(_)));
        // The transaction is still usable for reads and commit.
        assert!(tx.get("t", &Value::Int(1)).unwrap().is_none());
        tx.commit().unwrap();
    }

    struct CountingObserver(std::sync::atomic::AtomicU64);
    impl DmlObserver for CountingObserver {
        fn on_dml(&self, _db: &Database, event: &DmlEvent<'_>) -> Result<(), String> {
            // Only count DataLink-bearing tables to prove events carry data.
            assert!(!event.table.is_empty());
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn observer_sees_before_and_after_images() {
        struct ImageCheck;
        impl DmlObserver for ImageCheck {
            fn on_dml(&self, _db: &Database, e: &DmlEvent<'_>) -> Result<(), String> {
                match e.kind {
                    OpKind::Insert => {
                        assert!(e.before.is_none());
                        assert!(e.after.is_some());
                    }
                    OpKind::Update => {
                        assert!(e.before.is_some());
                        assert!(e.after.is_some());
                    }
                    OpKind::Delete => {
                        assert!(e.before.is_some());
                        assert!(e.after.is_none());
                    }
                }
                Ok(())
            }
        }
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        db.register_observer(Arc::new(ImageCheck));
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.update("t", &Value::Int(1), row(1, "b")).unwrap();
        tx.delete("t", &Value::Int(1)).unwrap();
        tx.commit().unwrap();
    }

    #[test]
    fn observer_counts_all_dml() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let obs = Arc::new(CountingObserver(AtomicU64::new(0)));
        db.register_observer(obs.clone());
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.update("t", &Value::Int(1), row(1, "b")).unwrap();
        tx.delete("t", &Value::Int(1)).unwrap();
        tx.commit().unwrap();
        assert_eq!(obs.0.load(Ordering::Relaxed), 3);
    }

    struct MetaMaintainer;
    impl DmlObserver for MetaMaintainer {
        fn on_dml(&self, db: &Database, e: &DmlEvent<'_>) -> Result<(), String> {
            if e.table != "t" {
                return Ok(());
            }
            match e.kind {
                OpKind::Insert | OpKind::Update => db.inject_dml(
                    e.txid,
                    InjectedDml::Upsert {
                        table: "meta".into(),
                        row: vec![e.key.clone(), Value::Int(1)],
                    },
                ),
                OpKind::Delete => db.inject_dml(
                    e.txid,
                    InjectedDml::Delete { table: "meta".into(), key: e.key.clone() },
                ),
            }
            Ok(())
        }
    }

    fn meta_schema() -> Schema {
        Schema::new(
            "meta",
            vec![Column::new("id", ColumnType::Int), Column::new("v", ColumnType::Int)],
            "id",
        )
        .unwrap()
    }

    #[test]
    fn injected_dml_rides_the_same_transaction() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        db.create_table(meta_schema()).unwrap();
        db.register_observer(Arc::new(MetaMaintainer));

        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        // Same-txn visibility of the injected row.
        assert!(tx.get("meta", &Value::Int(1)).unwrap().is_some());
        tx.commit().unwrap();
        assert_eq!(db.count("meta").unwrap(), 1);

        // Abort discards both the statement and the injected maintenance.
        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.abort();
        assert!(db.get_committed("meta", &Value::Int(2)).unwrap().is_none());

        // Delete injects a meta delete.
        let mut tx = db.begin();
        tx.delete("t", &Value::Int(1)).unwrap();
        tx.commit().unwrap();
        assert_eq!(db.count("meta").unwrap(), 0);
    }

    #[test]
    fn injected_upsert_replaces_existing_row() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        db.create_table(meta_schema()).unwrap();
        db.register_observer(Arc::new(MetaMaintainer));
        let mut tx = db.begin();
        tx.insert("t", row(5, "x")).unwrap();
        tx.update("t", &Value::Int(5), row(5, "y")).unwrap();
        tx.commit().unwrap();
        assert_eq!(db.count("meta").unwrap(), 1);
    }

    // --- 2PC -----------------------------------------------------------------

    #[derive(Default)]
    struct FakeParticipant {
        prepared: AtomicU64,
        committed: AtomicU64,
        aborted: AtomicU64,
        fail_prepare: bool,
    }
    impl Participant for FakeParticipant {
        fn prepare(&self, _txid: TxId) -> Result<(), String> {
            if self.fail_prepare {
                return Err("participant is unwell".into());
            }
            self.prepared.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn commit(&self, _txid: TxId) {
            self.committed.fetch_add(1, Ordering::SeqCst);
        }
        fn abort(&self, _txid: TxId) {
            self.aborted.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn two_phase_commit_drives_participants() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let p = Arc::new(FakeParticipant::default());
        let mut tx = db.begin();
        let txid = tx.id();
        db.enlist_participant(txid, "dlfm@srv1", p.clone());
        tx.insert("t", row(1, "x")).unwrap();
        tx.commit().unwrap();
        assert_eq!(p.prepared.load(Ordering::SeqCst), 1);
        assert_eq!(p.committed.load(Ordering::SeqCst), 1);
        assert_eq!(p.aborted.load(Ordering::SeqCst), 0);
        assert_eq!(db.coordinator_outcome(txid), Some(true));
    }

    #[test]
    fn prepare_failure_aborts_everything() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let good = Arc::new(FakeParticipant::default());
        let bad = Arc::new(FakeParticipant { fail_prepare: true, ..Default::default() });
        let mut tx = db.begin();
        let txid = tx.id();
        db.enlist_participant(txid, "good", good.clone());
        db.enlist_participant(txid, "bad", bad.clone());
        tx.insert("t", row(1, "x")).unwrap();
        let err = tx.commit().unwrap_err();
        assert!(matches!(err, DbError::PrepareFailed(_)));
        assert_eq!(good.aborted.load(Ordering::SeqCst), 1);
        assert_eq!(bad.aborted.load(Ordering::SeqCst), 1);
        assert_eq!(db.count("t").unwrap(), 0);
        // At runtime the abort is recorded explicitly; only after a crash
        // does an unlogged abort become "presumed abort" (None) — covered by
        // coordinator_outcome_survives_recovery below.
        assert_eq!(db.coordinator_outcome(txid), Some(false));
    }

    #[test]
    fn abort_notifies_participants() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let p = Arc::new(FakeParticipant::default());
        let mut tx = db.begin();
        db.enlist_participant(tx.id(), "p", p.clone());
        tx.insert("t", row(1, "x")).unwrap();
        tx.abort();
        assert_eq!(p.aborted.load(Ordering::SeqCst), 1);
        assert_eq!(p.prepared.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn coordinator_outcome_survives_recovery() {
        let env = StorageEnv::mem();
        let txid;
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            let p = Arc::new(FakeParticipant::default());
            let mut tx = db.begin();
            txid = tx.id();
            db.enlist_participant(txid, "dlfm", p);
            tx.insert("t", row(1, "x")).unwrap();
            tx.commit().unwrap();
        }
        let db = Database::open(env).unwrap();
        assert_eq!(db.coordinator_outcome(txid), Some(true));
        assert_eq!(db.coordinator_outcome(txid + 100), None);
    }

    // --- participant-side prepare/decide --------------------------------------

    #[test]
    fn prepared_txn_is_in_doubt_after_crash() {
        let env = StorageEnv::mem();
        let txid;
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            let mut tx = db.begin();
            txid = tx.id();
            tx.insert("t", row(1, "pending")).unwrap();
            tx.prepare().unwrap();
            std::mem::forget(tx); // crash: no decision ever logged
        }
        let db = Database::open(env.clone()).unwrap();
        assert_eq!(db.in_doubt_txns(), vec![txid]);
        assert_eq!(db.count("t").unwrap(), 0, "undecided ops are not applied");

        db.resolve_in_doubt(txid, true).unwrap();
        assert_eq!(db.count("t").unwrap(), 1);
        assert!(db.in_doubt_txns().is_empty());

        // The resolution is durable.
        let db2 = Database::open(env).unwrap();
        assert_eq!(db2.count("t").unwrap(), 1);
        assert!(db2.in_doubt_txns().is_empty());
    }

    #[test]
    fn in_doubt_resolved_as_abort_discards_ops() {
        let env = StorageEnv::mem();
        let txid;
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            let mut tx = db.begin();
            txid = tx.id();
            tx.insert("t", row(1, "pending")).unwrap();
            tx.prepare().unwrap();
            std::mem::forget(tx);
        }
        let db = Database::open(env.clone()).unwrap();
        db.resolve_in_doubt(txid, false).unwrap();
        assert_eq!(db.count("t").unwrap(), 0);
        let db2 = Database::open(env).unwrap();
        assert_eq!(db2.count("t").unwrap(), 0);
        assert!(db2.in_doubt_txns().is_empty());
    }

    #[test]
    fn prepared_then_committed_txn_recovers_committed() {
        let env = StorageEnv::mem();
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            let mut tx = db.begin();
            tx.insert("t", row(1, "x")).unwrap();
            tx.prepare().unwrap();
            tx.commit_prepared().unwrap();
        }
        let db = Database::open(env).unwrap();
        assert_eq!(db.count("t").unwrap(), 1);
        assert!(db.in_doubt_txns().is_empty());
    }

    #[test]
    fn checkpoint_with_pending_prepare_still_recovers_decision() {
        // Prepare, checkpoint (snapshot excludes undecided ops), decide
        // commit, crash: replay must apply the ops via the prepared map from
        // the full-log scan even though Prepare predates the snapshot base.
        let env = StorageEnv::mem();
        {
            let db = Database::open(env.clone()).unwrap();
            db.create_table(schema("t")).unwrap();
            let mut tx = db.begin();
            tx.insert("t", row(1, "x")).unwrap();
            tx.prepare().unwrap();
            db.checkpoint().unwrap();
            tx.commit_prepared().unwrap();
        }
        let db = Database::open(env).unwrap();
        assert_eq!(db.count("t").unwrap(), 1);
    }
}
