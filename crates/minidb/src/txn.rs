//! Transactions: deferred-update write sets, strict 2PL, two commit shapes
//! (coordinator commit and participant prepare/decide).

use std::collections::{BTreeMap, HashMap};

use crate::db::{apply_op, Database, DmlEvent, InjectedDml, OpKind};
use crate::error::{DbError, DbResult};
use crate::lock::{LockMode, LockRes};
use crate::ops::RowOp;
use crate::value::{Row, Value};
use crate::wal::{Lsn, TxId, WalRecord};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    Active,
    Prepared,
    Finished,
}

/// An open transaction. Writes are buffered privately (deferred update) and
/// applied to the shared stores at commit, after the commit record is
/// durable. Dropping an unfinished transaction aborts it.
pub struct Txn {
    db: Database,
    id: TxId,
    /// (table, key) -> pending row (`None` = deleted). Read-your-own-writes.
    overlay: HashMap<(String, Value), Option<Row>>,
    /// Ordered redo list, exactly what the commit record will carry.
    ops: Vec<RowOp>,
    state: TxnState,
}

impl Txn {
    pub(crate) fn new(db: Database, id: TxId) -> Self {
        Txn { db, id, overlay: HashMap::new(), ops: Vec::new(), state: TxnState::Active }
    }

    /// This transaction's id (used to enlist participants).
    pub fn id(&self) -> TxId {
        self.id
    }

    /// Number of buffered operations (diagnostics).
    pub fn pending_ops(&self) -> usize {
        self.ops.len()
    }

    fn ensure_active(&self) -> DbResult<()> {
        if self.state == TxnState::Active {
            Ok(())
        } else {
            Err(DbError::InvalidTxnState(format!("tx{} is {:?}, not active", self.id, self.state)))
        }
    }

    /// Committed-or-buffered current image of a row, assuming locks held.
    fn current(&self, table: &str, key: &Value) -> DbResult<Option<Row>> {
        if let Some(pending) = self.overlay.get(&(table.to_string(), key.clone())) {
            return Ok(pending.clone());
        }
        self.db.get_committed(table, key)
    }

    // --- Reads ---------------------------------------------------------------

    /// Point read under a shared row lock (serializable read).
    pub fn get(&self, table: &str, key: &Value) -> DbResult<Option<Row>> {
        self.ensure_active()?;
        let locks = &self.db.inner().locks;
        locks.lock(self.id, &LockRes::Table(table.to_string()), LockMode::IntentShared)?;
        locks.lock(self.id, &LockRes::Row(table.to_string(), key.clone()), LockMode::Shared)?;
        self.current(table, key)
    }

    /// Point read under an exclusive row lock; avoids the S→X upgrade
    /// deadlock in read-modify-write cycles.
    pub fn get_for_update(&self, table: &str, key: &Value) -> DbResult<Option<Row>> {
        self.ensure_active()?;
        let locks = &self.db.inner().locks;
        locks.lock(self.id, &LockRes::Table(table.to_string()), LockMode::IntentExclusive)?;
        locks.lock(self.id, &LockRes::Row(table.to_string(), key.clone()), LockMode::Exclusive)?;
        self.current(table, key)
    }

    /// Full scan under a table shared lock (blocks concurrent writers, so
    /// no phantoms). Rows are returned in primary-key order and reflect this
    /// transaction's own pending writes.
    pub fn scan(&self, table: &str) -> DbResult<Vec<Row>> {
        self.ensure_active()?;
        let locks = &self.db.inner().locks;
        locks.lock(self.id, &LockRes::Table(table.to_string()), LockMode::Shared)?;
        let committed = self.db.scan_committed(table)?;
        let schema = self.db.schema(table)?;
        let mut merged: BTreeMap<Value, Row> =
            committed.into_iter().map(|row| (schema.key_of(&row), row)).collect();
        for ((t, key), pending) in &self.overlay {
            if t != table {
                continue;
            }
            match pending {
                Some(row) => {
                    merged.insert(key.clone(), row.clone());
                }
                None => {
                    merged.remove(key);
                }
            }
        }
        Ok(merged.into_values().collect())
    }

    /// Scan filtered by a predicate.
    pub fn select(&self, table: &str, pred: impl Fn(&Row) -> bool) -> DbResult<Vec<Row>> {
        Ok(self.scan(table)?.into_iter().filter(|r| pred(r)).collect())
    }

    /// Primary keys with `column == value`, index-accelerated when possible.
    /// Takes a table shared lock (same phantom protection as a scan).
    pub fn find_equal(&self, table: &str, column: &str, value: &Value) -> DbResult<Vec<Value>> {
        self.ensure_active()?;
        let locks = &self.db.inner().locks;
        locks.lock(self.id, &LockRes::Table(table.to_string()), LockMode::Shared)?;
        let mut keys = self.db.find_committed(table, column, value)?;
        // Fold in pending writes.
        let schema = self.db.schema(table)?;
        let col =
            schema.column_index(column).ok_or_else(|| DbError::NoSuchColumn(column.to_string()))?;
        for ((t, key), pending) in &self.overlay {
            if t != table {
                continue;
            }
            match pending {
                Some(row) if &row[col] == value => {
                    if !keys.contains(key) {
                        keys.push(key.clone());
                    }
                }
                _ => keys.retain(|k| k != key),
            }
        }
        keys.sort();
        Ok(keys)
    }

    // --- Writes --------------------------------------------------------------

    fn write_locks(&self, table: &str, key: &Value) -> DbResult<()> {
        let locks = &self.db.inner().locks;
        locks.lock(self.id, &LockRes::Table(table.to_string()), LockMode::IntentExclusive)?;
        locks.lock(self.id, &LockRes::Row(table.to_string(), key.clone()), LockMode::Exclusive)
    }

    /// Inserts a row.
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<()> {
        self.ensure_active()?;
        let schema = self.db.schema(table)?;
        schema.validate(&row).map_err(DbError::SchemaMismatch)?;
        let key = schema.key_of(&row);
        self.write_locks(table, &key)?;
        if self.current(table, &key)?.is_some() {
            return Err(DbError::DuplicateKey(key.to_string()));
        }
        self.observe(&DmlEvent {
            txid: self.id,
            table,
            kind: OpKind::Insert,
            key: &key,
            before: None,
            after: Some(&row),
        })?;
        self.overlay.insert((table.to_string(), key.clone()), Some(row.clone()));
        self.ops.push(RowOp::Insert { table: table.to_string(), row });
        self.apply_injected()
    }

    /// Replaces the row at `key` with `row` (primary key must be unchanged).
    pub fn update(&mut self, table: &str, key: &Value, row: Row) -> DbResult<()> {
        self.ensure_active()?;
        let schema = self.db.schema(table)?;
        schema.validate(&row).map_err(DbError::SchemaMismatch)?;
        if &schema.key_of(&row) != key {
            return Err(DbError::SchemaMismatch(
                "primary key is immutable; delete and re-insert instead".into(),
            ));
        }
        self.write_locks(table, key)?;
        let before = self.current(table, key)?.ok_or(DbError::RowNotFound)?;
        self.observe(&DmlEvent {
            txid: self.id,
            table,
            kind: OpKind::Update,
            key,
            before: Some(&before),
            after: Some(&row),
        })?;
        self.overlay.insert((table.to_string(), key.clone()), Some(row.clone()));
        self.ops.push(RowOp::Update { table: table.to_string(), key: key.clone(), row });
        self.apply_injected()
    }

    /// Updates a single column of the row at `key`.
    pub fn update_column(
        &mut self,
        table: &str,
        key: &Value,
        column: &str,
        value: Value,
    ) -> DbResult<()> {
        self.ensure_active()?;
        let schema = self.db.schema(table)?;
        let col =
            schema.column_index(column).ok_or_else(|| DbError::NoSuchColumn(column.to_string()))?;
        self.write_locks(table, key)?;
        let mut row = self.current(table, key)?.ok_or(DbError::RowNotFound)?;
        row[col] = value;
        self.update(table, key, row)
    }

    /// Deletes the row at `key`.
    pub fn delete(&mut self, table: &str, key: &Value) -> DbResult<()> {
        self.ensure_active()?;
        self.db.schema(table)?; // surface NoSuchTable before locking
        self.write_locks(table, key)?;
        let before = self.current(table, key)?.ok_or(DbError::RowNotFound)?;
        self.observe(&DmlEvent {
            txid: self.id,
            table,
            kind: OpKind::Delete,
            key,
            before: Some(&before),
            after: None,
        })?;
        self.overlay.insert((table.to_string(), key.clone()), None);
        self.ops.push(RowOp::Delete { table: table.to_string(), key: key.clone() });
        self.apply_injected()
    }

    /// Notifies observers; a veto clears any statements they injected.
    fn observe(&mut self, event: &DmlEvent<'_>) -> DbResult<()> {
        match self.db.notify_observers(event) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.db.clear_injected(self.id);
                Err(e)
            }
        }
    }

    /// Executes observer-injected statements as part of this transaction:
    /// normal locking and logging, but no observer re-notification.
    fn apply_injected(&mut self) -> DbResult<()> {
        let injected = self.db.take_injected(self.id);
        for dml in injected {
            match dml {
                InjectedDml::Upsert { table, row } => {
                    let schema = self.db.schema(&table)?;
                    schema.validate(&row).map_err(DbError::SchemaMismatch)?;
                    let key = schema.key_of(&row);
                    self.write_locks(&table, &key)?;
                    let exists = self.current(&table, &key)?.is_some();
                    self.overlay.insert((table.clone(), key.clone()), Some(row.clone()));
                    self.ops.push(if exists {
                        RowOp::Update { table, key, row }
                    } else {
                        RowOp::Insert { table, row }
                    });
                }
                InjectedDml::Delete { table, key } => {
                    self.write_locks(&table, &key)?;
                    if self.current(&table, &key)?.is_some() {
                        self.overlay.insert((table.clone(), key.clone()), None);
                        self.ops.push(RowOp::Delete { table, key });
                    }
                }
            }
        }
        Ok(())
    }

    // --- Coordinator commit ----------------------------------------------------

    /// Commits: prepares any enlisted participants, logs the commit decision
    /// (with redo ops), applies to the shared stores, then completes the
    /// participants. Returns the commit LSN — the database state identifier
    /// the archive tags file versions with (§4.4).
    pub fn commit(mut self) -> DbResult<Lsn> {
        self.ensure_active()?;
        let participants = self.db.take_participants(self.id);

        // Phase one.
        for (name, p) in &participants {
            if let Err(e) = p.prepare(self.id) {
                for (_, q) in &participants {
                    q.abort(self.id);
                }
                self.db.record_outcome(self.id, false);
                self.finish_local();
                return Err(DbError::PrepareFailed(format!("{name}: {e}")));
            }
        }

        // Decision + apply. Empty read-only transactions skip the log write.
        let lsn = if self.ops.is_empty() && participants.is_empty() {
            self.db.inner().wal.tail_lsn()
        } else {
            let names: Vec<String> = participants.iter().map(|(n, _)| n.clone()).collect();
            let inner = self.db.inner();
            // Shared: concurrent committers ride the same group-commit
            // batch; only checkpoint/backup take this exclusively.
            let _latch = inner.commit_latch.read();
            let lsn = inner.wal.append(&WalRecord::Commit {
                txid: self.id,
                participants: names,
                ops: self.ops.clone(),
            })?;
            let mut tables = inner.tables.write();
            for op in &self.ops {
                apply_op(&mut tables, op)?;
            }
            lsn
        };

        if !participants.is_empty() {
            self.db.record_outcome(self.id, true);
        }
        // Phase two.
        for (_, p) in &participants {
            p.commit(self.id);
        }
        self.finish_local();
        // Log retention budget: an over-budget log checkpoints and
        // truncates now that this commit is fully done (outside the shared
        // latch, so it cannot deadlock with the exclusive checkpoint latch).
        self.db.maybe_auto_checkpoint();
        Ok(lsn)
    }

    /// Aborts: participants are told to roll back, locks released, buffered
    /// writes discarded. Never fails.
    pub fn abort(mut self) {
        self.abort_in_place();
    }

    fn abort_in_place(&mut self) {
        if self.state == TxnState::Finished {
            return;
        }
        let participants = self.db.take_participants(self.id);
        for (_, p) in &participants {
            p.abort(self.id);
        }
        if !participants.is_empty() {
            self.db.record_outcome(self.id, false);
        }
        self.finish_local();
    }

    fn finish_local(&mut self) {
        self.db.clear_injected(self.id);
        self.db.inner().locks.release_all(self.id);
        self.overlay.clear();
        self.state = TxnState::Finished;
    }

    // --- Participant-side prepare/decide ---------------------------------------

    /// Durably prepares this transaction (2PC phase one, participant role):
    /// the redo ops hit the log, locks are retained, and the transaction can
    /// only finish via [`Txn::commit_prepared`] / [`Txn::abort_prepared`].
    pub fn prepare(&mut self) -> DbResult<()> {
        self.ensure_active()?;
        // The shared latch makes append + live-prepared registration atomic
        // with respect to checkpoints: without it, a checkpoint could
        // snapshot between the two — missing the registration — and then
        // truncate the Prepare record, losing the only durable copy of an
        // undecided transaction's redo ops.
        let _latch = self.db.inner().commit_latch.read();
        self.db.inner().wal.append(&WalRecord::Prepare { txid: self.id, ops: self.ops.clone() })?;
        self.db.register_prepared(self.id, self.ops.clone());
        self.state = TxnState::Prepared;
        Ok(())
    }

    /// Commits a prepared transaction (2PC phase two).
    pub fn commit_prepared(mut self) -> DbResult<Lsn> {
        if self.state != TxnState::Prepared {
            return Err(DbError::InvalidTxnState(format!(
                "tx{} is {:?}, not prepared",
                self.id, self.state
            )));
        }
        let lsn = {
            let inner = self.db.inner();
            let _latch = inner.commit_latch.read();
            let lsn = inner.wal.append(&WalRecord::Decide { txid: self.id, commit: true })?;
            let mut tables = inner.tables.write();
            for op in &self.ops {
                apply_op(&mut tables, op)?;
            }
            // Deregister while still holding the latch: a checkpoint must
            // never observe the decided state with the transaction still
            // listed as prepared (it would resurface as in-doubt after the
            // Decide record is truncated, and a re-resolution would
            // double-apply or contradict the acknowledged decision).
            self.db.unregister_prepared(self.id);
            lsn
        };
        self.finish_local();
        self.db.maybe_auto_checkpoint();
        Ok(lsn)
    }

    /// Rolls back a prepared transaction (2PC phase two, abort path).
    pub fn abort_prepared(mut self) -> DbResult<()> {
        if self.state != TxnState::Prepared {
            return Err(DbError::InvalidTxnState(format!(
                "tx{} is {:?}, not prepared",
                self.id, self.state
            )));
        }
        {
            // Same latch discipline as commit_prepared: decision append and
            // deregistration are atomic w.r.t. checkpoints.
            let _latch = self.db.inner().commit_latch.read();
            self.db.inner().wal.append(&WalRecord::Decide { txid: self.id, commit: false })?;
            self.db.unregister_prepared(self.id);
        }
        self.finish_local();
        Ok(())
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        match self.state {
            TxnState::Finished => {}
            TxnState::Prepared => {
                // A *dropped* prepared transaction is a programming bug, not
                // a crash (crashes never run Drop). Settle it as an abort so
                // locks and log state stay coherent (same latch discipline
                // as abort_prepared).
                {
                    let _latch = self.db.inner().commit_latch.read();
                    let _ = self
                        .db
                        .inner()
                        .wal
                        .append(&WalRecord::Decide { txid: self.id, commit: false });
                    self.db.unregister_prepared(self.id);
                }
                self.abort_in_place();
            }
            TxnState::Active => self.abort_in_place(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StorageEnv;
    use crate::value::{Column, ColumnType, Schema};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn db() -> Database {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(
            Schema::new(
                "t",
                vec![Column::new("id", ColumnType::Int), Column::nullable("val", ColumnType::Text)],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn row(id: i64, val: &str) -> Row {
        vec![Value::Int(id), Value::Text(val.into())]
    }

    #[test]
    fn read_your_own_writes() {
        let d = db();
        let mut tx = d.begin();
        tx.insert("t", row(1, "mine")).unwrap();
        assert_eq!(tx.get("t", &Value::Int(1)).unwrap().unwrap()[1], Value::Text("mine".into()));
        // Not visible outside before commit.
        assert!(d.get_committed("t", &Value::Int(1)).unwrap().is_none());
        tx.commit().unwrap();
        assert!(d.get_committed("t", &Value::Int(1)).unwrap().is_some());
    }

    #[test]
    fn delete_then_insert_same_key() {
        let d = db();
        let mut tx = d.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.commit().unwrap();

        let mut tx = d.begin();
        tx.delete("t", &Value::Int(1)).unwrap();
        assert!(tx.get("t", &Value::Int(1)).unwrap().is_none());
        tx.insert("t", row(1, "b")).unwrap();
        tx.commit().unwrap();
        assert_eq!(
            d.get_committed("t", &Value::Int(1)).unwrap().unwrap()[1],
            Value::Text("b".into())
        );
    }

    #[test]
    fn duplicate_insert_rejected() {
        let d = db();
        let mut tx = d.begin();
        tx.insert("t", row(1, "a")).unwrap();
        assert!(matches!(tx.insert("t", row(1, "b")), Err(DbError::DuplicateKey(_))));
        tx.commit().unwrap();

        let mut tx = d.begin();
        assert!(matches!(tx.insert("t", row(1, "c")), Err(DbError::DuplicateKey(_))));
        tx.abort();
    }

    #[test]
    fn update_missing_row_fails() {
        let d = db();
        let mut tx = d.begin();
        assert_eq!(tx.update("t", &Value::Int(9), row(9, "x")), Err(DbError::RowNotFound));
        tx.abort();
    }

    #[test]
    fn primary_key_is_immutable() {
        let d = db();
        let mut tx = d.begin();
        tx.insert("t", row(1, "a")).unwrap();
        assert!(matches!(
            tx.update("t", &Value::Int(1), row(2, "a")),
            Err(DbError::SchemaMismatch(_))
        ));
        tx.abort();
    }

    #[test]
    fn update_column_convenience() {
        let d = db();
        let mut tx = d.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.update_column("t", &Value::Int(1), "val", Value::Text("z".into())).unwrap();
        tx.commit().unwrap();
        assert_eq!(
            d.get_committed("t", &Value::Int(1)).unwrap().unwrap()[1],
            Value::Text("z".into())
        );
    }

    #[test]
    fn scan_merges_overlay() {
        let d = db();
        let mut setup = d.begin();
        setup.insert("t", row(1, "a")).unwrap();
        setup.insert("t", row(2, "b")).unwrap();
        setup.commit().unwrap();

        let mut tx = d.begin();
        tx.delete("t", &Value::Int(1)).unwrap();
        tx.insert("t", row(3, "c")).unwrap();
        tx.update("t", &Value::Int(2), row(2, "B")).unwrap();
        let rows = tx.scan("t").unwrap();
        let ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(rows[0][1], Value::Text("B".into()));
        tx.abort();

        // Abort leaves committed state untouched.
        assert_eq!(d.count("t").unwrap(), 2);
    }

    #[test]
    fn select_filters() {
        let d = db();
        let mut tx = d.begin();
        for i in 0..10 {
            tx.insert("t", row(i, if i % 2 == 0 { "even" } else { "odd" })).unwrap();
        }
        let evens = tx.select("t", |r| r[1] == Value::Text("even".into())).unwrap();
        assert_eq!(evens.len(), 5);
        tx.commit().unwrap();
    }

    #[test]
    fn find_equal_respects_overlay() {
        let d = db();
        d.create_index("t", "val").unwrap();
        let mut setup = d.begin();
        setup.insert("t", row(1, "x")).unwrap();
        setup.insert("t", row(2, "y")).unwrap();
        setup.commit().unwrap();

        let mut tx = d.begin();
        tx.update("t", &Value::Int(2), row(2, "x")).unwrap();
        tx.insert("t", row(3, "x")).unwrap();
        tx.delete("t", &Value::Int(1)).unwrap();
        let hits = tx.find_equal("t", "val", &Value::Text("x".into())).unwrap();
        assert_eq!(hits, vec![Value::Int(2), Value::Int(3)]);
        tx.abort();
    }

    #[test]
    fn drop_aborts_active_txn() {
        let d = db();
        {
            let mut tx = d.begin();
            tx.insert("t", row(1, "ghost")).unwrap();
            // dropped here
        }
        assert_eq!(d.count("t").unwrap(), 0);
        // Locks were released: another writer proceeds immediately.
        let mut tx = d.begin();
        tx.insert("t", row(1, "real")).unwrap();
        tx.commit().unwrap();
    }

    #[test]
    fn writer_blocks_reader_until_commit() {
        let d = db();
        let mut setup = d.begin();
        setup.insert("t", row(1, "v0")).unwrap();
        setup.commit().unwrap();

        let mut writer = d.begin();
        writer.update("t", &Value::Int(1), row(1, "v1")).unwrap();

        let d2 = d.clone();
        let reader = thread::spawn(move || {
            let tx = d2.begin();
            let row = tx.get("t", &Value::Int(1)).unwrap().unwrap();
            row[1].clone()
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!reader.is_finished(), "reader must block on writer's X lock");
        writer.commit().unwrap();
        assert_eq!(reader.join().unwrap(), Value::Text("v1".into()));
    }

    #[test]
    fn concurrent_disjoint_writers_proceed() {
        let d = db();
        let mut handles = Vec::new();
        for i in 0..8 {
            let d = d.clone();
            handles.push(thread::spawn(move || {
                let mut tx = d.begin();
                tx.insert("t", row(i, "w")).unwrap();
                tx.commit().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.count("t").unwrap(), 8);
    }

    #[test]
    fn deadlock_victim_can_retry() {
        let d = db();
        let mut setup = d.begin();
        setup.insert("t", row(1, "a")).unwrap();
        setup.insert("t", row(2, "b")).unwrap();
        setup.commit().unwrap();

        // tx1 locks row1, tx2 locks row2; tx1 then wants row2 (blocks) and
        // tx2 wants row1 (deadlock). Victim retries and succeeds.
        let d1 = d.clone();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let b1 = Arc::clone(&barrier);
        let h1 = thread::spawn(move || {
            let mut tx = d1.begin();
            tx.update("t", &Value::Int(1), row(1, "a1")).unwrap();
            b1.wait();
            match tx.update("t", &Value::Int(2), row(2, "b1")) {
                Ok(()) => {
                    tx.commit().unwrap();
                    true
                }
                Err(DbError::Deadlock) => {
                    tx.abort();
                    false
                }
                Err(e) => panic!("unexpected {e}"),
            }
        });
        let d2 = d.clone();
        let b2 = Arc::clone(&barrier);
        let h2 = thread::spawn(move || {
            let mut tx = d2.begin();
            tx.update("t", &Value::Int(2), row(2, "b2")).unwrap();
            b2.wait();
            match tx.update("t", &Value::Int(1), row(1, "a2")) {
                Ok(()) => {
                    tx.commit().unwrap();
                    true
                }
                Err(DbError::Deadlock) => {
                    tx.abort();
                    false
                }
                Err(e) => panic!("unexpected {e}"),
            }
        });
        let r1 = h1.join().unwrap();
        let r2 = h2.join().unwrap();
        assert!(r1 || r2, "at least one transaction must win");
        // No stuck locks remain either way.
        let mut tx = d.begin();
        tx.update("t", &Value::Int(1), row(1, "final")).unwrap();
        tx.update("t", &Value::Int(2), row(2, "final")).unwrap();
        tx.commit().unwrap();
    }

    #[test]
    fn empty_commit_is_cheap_and_valid() {
        let d = db();
        let before = d.state_id();
        let tx = d.begin();
        let lsn = tx.commit().unwrap();
        assert_eq!(lsn, before, "read-only commit writes nothing");
    }

    #[test]
    fn txn_unusable_after_commit_like_states() {
        let d = db();
        let mut tx = d.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.prepare().unwrap();
        assert!(matches!(tx.insert("t", row(2, "b")), Err(DbError::InvalidTxnState(_))));
        assert!(matches!(tx.get("t", &Value::Int(1)), Err(DbError::InvalidTxnState(_))));
        tx.commit_prepared().unwrap();
    }

    #[test]
    fn prepared_holds_locks_until_decision() {
        let d = db();
        let mut setup = d.begin();
        setup.insert("t", row(1, "v")).unwrap();
        setup.commit().unwrap();

        let mut tx = d.begin();
        tx.update("t", &Value::Int(1), row(1, "p")).unwrap();
        tx.prepare().unwrap();

        let d2 = d.clone();
        let blocked = thread::spawn(move || {
            let mut tx2 = d2.begin();
            tx2.update("t", &Value::Int(1), row(1, "q")).unwrap();
            tx2.commit().unwrap();
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!blocked.is_finished(), "prepared txn must retain its locks");
        tx.commit_prepared().unwrap();
        blocked.join().unwrap();
        assert_eq!(
            d.get_committed("t", &Value::Int(1)).unwrap().unwrap()[1],
            Value::Text("q".into())
        );
    }
}
