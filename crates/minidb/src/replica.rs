//! Apply-only standby mode: the receiving end of WAL shipping.
//!
//! A [`StandbyDb`] holds the same storage-environment shape as a
//! [`crate::Database`] but never originates records: it appends shipped
//! frame bytes ([`crate::wal::ShippedFrames`]) to its own `wal` device
//! *verbatim* — physical replication, so the standby's log is a byte
//! prefix of the primary's at all times — and applies the decoded records
//! to its in-memory tables exactly the way crash replay would. Promotion
//! is therefore trivial: open a normal `Database` on the standby's
//! environment and ordinary recovery sees an honest crash image of the
//! primary as of the last applied frame.
//!
//! The standby serves read-committed lookups (token checks, file-entry
//! reads) but no transactions: there is no lock manager, no WAL append
//! path, no observers. Prepared-but-undecided transactions are carried in
//! the same in-doubt form recovery uses, so a `Decide` frame arriving
//! later settles them.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::db::apply_op;
use crate::device::{Device, StorageEnv};
use crate::error::{DbError, DbResult};
use crate::ops::RowOp;
use crate::table::TableStore;
use crate::value::{Row, Value};
use crate::wal::{read_all, Lsn, ShippedFrames, TxId, WalRecord};

struct StandbyInner {
    tables: HashMap<String, TableStore>,
    /// Prepared-but-undecided participant transactions (in-doubt).
    prepared: HashMap<TxId, Vec<RowOp>>,
    /// Next expected frame base — everything below is applied.
    applied: Lsn,
}

/// A standby database continuously applying a primary's shipped WAL.
pub struct StandbyDb {
    env: StorageEnv,
    dev: Arc<dyn Device>,
    inner: Mutex<StandbyInner>,
}

impl StandbyDb {
    /// Opens (or re-opens after a standby restart) the apply-only database:
    /// replays whatever frames its own `wal` device already holds, exactly
    /// like crash replay.
    pub fn open(env: StorageEnv) -> DbResult<StandbyDb> {
        let dev = env.device("wal")?;
        let mut tables: HashMap<String, TableStore> = HashMap::new();
        let mut prepared: HashMap<TxId, Vec<RowOp>> = HashMap::new();
        let mut applied: Lsn = 0;
        for (lsn, rec, frame_len) in read_all(&dev)? {
            Self::apply_record(&mut tables, &mut prepared, &rec)?;
            applied = lsn + frame_len;
        }
        dev.set_len(applied)?;
        Ok(StandbyDb { env, dev, inner: Mutex::new(StandbyInner { tables, prepared, applied }) })
    }

    fn apply_record(
        tables: &mut HashMap<String, TableStore>,
        prepared: &mut HashMap<TxId, Vec<RowOp>>,
        rec: &WalRecord,
    ) -> DbResult<()> {
        match rec {
            WalRecord::Ddl(op) => apply_op(tables, op)?,
            WalRecord::Commit { ops, .. } => {
                for op in ops {
                    apply_op(tables, op)?;
                }
            }
            WalRecord::Prepare { txid, ops } => {
                prepared.insert(*txid, ops.clone());
            }
            WalRecord::Decide { txid, commit } => {
                if let Some(ops) = prepared.remove(txid) {
                    if *commit {
                        for op in &ops {
                            apply_op(tables, op)?;
                        }
                    }
                }
            }
            WalRecord::Checkpoint { .. } => {}
        }
        Ok(())
    }

    /// Applies one shipped range: appends the raw bytes to the standby log,
    /// syncs, then applies the decoded records. The range may not start
    /// *past* the applied watermark — that gap means frames were lost in
    /// shipping and the standby must refuse rather than diverge — but an
    /// overlap with already-applied frames is fine: the shipper re-sends
    /// from the slowest standby's position, so a faster standby skips the
    /// prefix it already holds (apply is idempotent per frame).
    pub fn apply(&self, frames: &ShippedFrames) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if frames.is_empty() {
            return Ok(());
        }
        if frames.base > inner.applied {
            return Err(DbError::InvalidTxnState(format!(
                "standby expects frames at lsn {}, got {} (ship gap)",
                inner.applied, frames.base
            )));
        }
        if frames.end <= inner.applied {
            return Ok(()); // full resend of applied frames: nothing to do
        }
        // The applied watermark always sits on a frame boundary, so the
        // byte skip is exactly the already-applied frame prefix.
        let skip = (inner.applied - frames.base) as usize;
        self.dev.write_at(inner.applied, &frames.bytes[skip..])?;
        self.dev.sync()?;
        let inner = &mut *inner;
        for (lsn, rec) in &frames.records {
            if *lsn < inner.applied {
                continue;
            }
            Self::apply_record(&mut inner.tables, &mut inner.prepared, rec)?;
        }
        inner.applied = frames.end;
        Ok(())
    }

    /// One past the last applied byte (lag = primary durable − this).
    pub fn applied_lsn(&self) -> Lsn {
        self.inner.lock().applied
    }

    /// The standby's storage environment. Promotion opens a normal
    /// [`crate::Database`] on a clone of this.
    pub fn env(&self) -> &StorageEnv {
        &self.env
    }

    // --- read-committed lookups (mirrors Database's helpers) ---------------

    pub fn has_table(&self, name: &str) -> bool {
        self.inner.lock().tables.contains_key(name)
    }

    pub fn get_committed(&self, table: &str, key: &Value) -> DbResult<Option<Row>> {
        let inner = self.inner.lock();
        let store =
            inner.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        Ok(store.get(key).cloned())
    }

    pub fn scan_committed(&self, table: &str) -> DbResult<Vec<Row>> {
        let inner = self.inner.lock();
        let store =
            inner.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        Ok(store.iter().map(|(_, row)| row.clone()).collect())
    }

    pub fn count(&self, table: &str) -> DbResult<usize> {
        let inner = self.inner.lock();
        inner
            .tables
            .get(table)
            .map(|s| s.len())
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))
    }

    /// Transactions prepared on the primary but undecided as of the applied
    /// watermark (visible in-doubt state; promotion recovery settles them).
    pub fn in_doubt_txns(&self) -> Vec<TxId> {
        let mut ids: Vec<TxId> = self.inner.lock().prepared.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, DbOptions};
    use crate::value::{Column, ColumnType, Schema};
    use crate::wal::WalOptions;

    fn schema(name: &str) -> Schema {
        Schema::new(
            name,
            vec![Column::new("id", ColumnType::Int), Column::nullable("v", ColumnType::Text)],
            "id",
        )
        .unwrap()
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::Text(v.into())]
    }

    /// Ships everything durable on `db` into `standby`.
    fn ship_all(db: &Database, standby: &StandbyDb) {
        let reader = db.wal_reader();
        let frames = reader.read_from(standby.applied_lsn()).unwrap();
        standby.apply(&frames).unwrap();
    }

    #[test]
    fn standby_mirrors_primary_state_and_log_bytes() {
        let primary_env = StorageEnv::mem();
        let db = Database::open(primary_env.clone()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();

        for i in 0..5i64 {
            let mut tx = db.begin();
            tx.insert("t", row(i, "x")).unwrap();
            tx.commit().unwrap();
        }
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 5);
        assert_eq!(standby.applied_lsn(), db.wal_reader().durable_lsn());

        // Physical replication: byte-identical logs.
        let p = primary_env.device("wal").unwrap();
        let s = standby.env().device("wal").unwrap();
        let mut pb = vec![0u8; p.len().unwrap() as usize];
        let mut sb = vec![0u8; s.len().unwrap() as usize];
        p.read_at(0, &mut pb).unwrap();
        s.read_at(0, &mut sb).unwrap();
        assert_eq!(pb, sb);
    }

    #[test]
    fn apply_rejects_ship_gaps() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        let mid = tx.commit().unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.commit().unwrap();

        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        // Ship only the tail: a gap the standby must refuse.
        let frames = db.wal_reader().read_from(mid).unwrap();
        assert!(standby.apply(&frames).is_err());
        assert_eq!(standby.applied_lsn(), 0, "nothing applied across a gap");
    }

    #[test]
    fn apply_skips_already_applied_overlap() {
        // The shipper re-sends from the slowest standby's position; a
        // standby that already applied part (or all) of the range must
        // skip the overlap instead of wedging on it.
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.commit().unwrap();

        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        let first = db.wal_reader().read_from(0).unwrap();
        standby.apply(&first).unwrap();
        let applied = standby.applied_lsn();

        // Full resend: idempotent no-op.
        standby.apply(&first).unwrap();
        assert_eq!(standby.applied_lsn(), applied);
        assert_eq!(standby.count("t").unwrap(), 1, "no double-apply");

        // Partial overlap: a range starting at 0 that extends past the
        // applied watermark applies only the new suffix.
        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.commit().unwrap();
        let overlapping = db.wal_reader().read_from(0).unwrap();
        standby.apply(&overlapping).unwrap();
        assert_eq!(standby.applied_lsn(), overlapping.end);
        assert_eq!(standby.count("t").unwrap(), 2);
    }

    #[test]
    fn promotion_opens_a_normal_database_on_the_standby_env() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(7, "keep")).unwrap();
        tx.commit().unwrap();
        // An in-doubt prepare ships too.
        let mut tx = db.begin();
        tx.insert("t", row(8, "doubt")).unwrap();
        tx.prepare().unwrap();
        std::mem::forget(tx);

        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.in_doubt_txns().len(), 1);

        let promoted = Database::open(standby.env().clone()).unwrap();
        assert_eq!(promoted.count("t").unwrap(), 1);
        assert_eq!(promoted.in_doubt_txns(), standby.in_doubt_txns());
        // The promoted database is a full primary: it can commit.
        let mut tx = promoted.begin();
        tx.insert("t", row(9, "new-primary")).unwrap();
        tx.commit().unwrap();
        assert_eq!(promoted.count("t").unwrap(), 2);
    }

    #[test]
    fn standby_restart_replays_its_own_log() {
        let db = Database::open_with(
            StorageEnv::mem(),
            DbOptions { wal: WalOptions::tuned_for(4), ..Default::default() },
        )
        .unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.commit().unwrap();

        let standby_env = StorageEnv::mem();
        let applied = {
            let standby = StandbyDb::open(standby_env.clone()).unwrap();
            ship_all(&db, &standby);
            standby.applied_lsn()
        };
        // Standby restarts (crash of the replica node): state replays.
        let standby = StandbyDb::open(standby_env).unwrap();
        assert_eq!(standby.applied_lsn(), applied);
        assert_eq!(standby.count("t").unwrap(), 1);

        // And shipping resumes where it left off.
        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.commit().unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 2);
    }

    #[test]
    fn decide_after_prepare_applies_in_doubt_ops() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();

        let mut tx = db.begin();
        tx.insert("t", row(1, "2pc")).unwrap();
        tx.prepare().unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 0, "prepared ops stay pending");
        assert_eq!(standby.in_doubt_txns().len(), 1);

        tx.commit_prepared().unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 1, "decide applies the prepared ops");
        assert!(standby.in_doubt_txns().is_empty());
    }
}
