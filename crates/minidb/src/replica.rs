//! Apply-only standby mode: the receiving end of WAL shipping.
//!
//! A [`StandbyDb`] holds the same storage-environment shape as a
//! [`crate::Database`] but never originates records: it appends shipped
//! frame bytes ([`crate::wal::ShippedFrames`]) to its own log device
//! *verbatim* — physical replication, so the standby's retained log is
//! byte-identical to the primary's over the shared LSN range — and applies
//! the decoded records to its in-memory tables exactly the way crash
//! replay would. Promotion is therefore trivial: open a normal
//! [`crate::Database`] on the standby's environment and ordinary recovery
//! sees an honest crash image of the primary as of the last applied frame.
//!
//! # Checkpoint shipping and bounded standby logs
//!
//! Two mechanisms keep a standby's log from growing forever:
//!
//! * **Lockstep truncation** — when the standby applies a
//!   [`WalRecord::Checkpoint`] frame it schedules its *own* snapshot (a
//!   complete recovery image, same format the primary writes) covering the
//!   log below that frame, then truncates its log below it — the same
//!   slot-flip dance [`crate::wal::Wal::truncate_below`] performs, so a
//!   primary with a retention budget bounds every standby automatically.
//!   The snapshot is written by a background snapshotter thread, *not*
//!   inside [`StandbyDb::apply`]: the image write is the slow part
//!   (full-state serialization plus a device sync), and doing it inline
//!   would stall the ship round — and with it the standby's applied
//!   watermark, which freshness-token readers wait on — for the whole
//!   image write. `apply` only enqueues the (coalescing) snapshot job;
//!   [`StandbyDb::wait_snapshot_idle`] exists for callers that need the
//!   retained-bytes bound to be visible (operators, tests), and dropping
//!   the `StandbyDb` drains the queue.
//! * **Checkpoint install** — a newly-provisioned or badly-lagging standby
//!   whose next frame was already truncated away on the primary receives
//!   the primary's latest checkpoint image instead
//!   ([`StandbyDb::install_checkpoint`], fed by
//!   [`ReplicationFeed::latest_checkpoint`]): it persists the image to its
//!   own snapshot slot, resets its log to empty at the image's base, and
//!   resumes tailing only the WAL suffix — *delta catch-up*, instead of
//!   replaying the primary's whole history.
//!
//! The standby serves read-committed lookups (token checks, file-entry
//! reads) but no transactions: there is no lock manager, no WAL append
//! path, no observers. Prepared-but-undecided transactions are carried in
//! the same in-doubt form recovery uses, so a `Decide` frame arriving
//! later settles them. Readers that need *read-your-writes* freshness wait
//! on [`StandbyDb::wait_applied`] for the standby to reach their write's
//! commit LSN.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::db::apply_op;
use crate::device::{Device, StorageEnv};
use crate::error::{DbError, DbResult};
use crate::ops::RowOp;
use crate::snapshot::{
    latest_valid_snapshot, slot_for_generation, write_snapshot, SnapshotData, SnapshotSource,
};
use crate::table::TableStore;
use crate::value::{Row, Value};
use crate::wal::{
    log_slot_name, parse_frames, read_log_ctl, swap_log_slot, Lsn, ShippedFrames, TxId, WalReader,
    WalRecord,
};

/// The primary-side feed a replication shipper consumes: the live
/// [`WalReader`] plus access to the primary's checkpoint images, so the
/// shipper can fall back to installing a checkpoint when the frames it
/// needs were truncated away (the reader reports
/// [`DbError::TruncatedLog`]). Obtained from
/// [`crate::Database::replication_feed`]; clones share the same source.
#[derive(Clone)]
pub struct ReplicationFeed {
    reader: WalReader,
    env: StorageEnv,
}

impl ReplicationFeed {
    pub(crate) fn new(reader: WalReader, env: StorageEnv) -> ReplicationFeed {
        ReplicationFeed { reader, env }
    }

    /// The live WAL tail reader.
    pub fn reader(&self) -> &WalReader {
        &self.reader
    }

    /// The newest valid checkpoint image the primary has on disk, if any.
    /// May transiently return an older image (or `None`) while the primary
    /// is mid-checkpoint — a shipper simply retries on its next round.
    pub fn latest_checkpoint(&self) -> DbResult<Option<SnapshotData>> {
        latest_valid_snapshot(&self.env, |_| true)
    }
}

struct StandbyInner {
    tables: HashMap<String, TableStore>,
    /// Prepared-but-undecided participant transactions (in-doubt).
    prepared: HashMap<TxId, Vec<RowOp>>,
    /// Coordinator outcomes replicated from `Commit` records that named
    /// participants (persisted by the standby's own checkpoints so a
    /// promotion after truncation still answers outcome queries).
    outcomes: HashMap<TxId, bool>,
    /// Highest transaction id seen in any applied record.
    max_txid: TxId,
    /// Next expected frame base — everything below is applied.
    applied: Lsn,
    /// Active log slot device (flips on truncation, like the primary's).
    dev: Arc<dyn Device>,
    /// Logical LSN of the device's first byte.
    base: Lsn,
    slot: u32,
    ctl_seq: u64,
    /// Bumped by [`StandbyDb::install_checkpoint`]; a queued snapshot job
    /// from an older epoch is obsolete (the install superseded it) and the
    /// snapshotter discards it instead of snapshotting/truncating state
    /// the job was never about.
    epoch: u64,
}

/// One scheduled standby-side snapshot: write an image covering the log
/// below `cut`, then truncate below `cut`. Jobs coalesce — only the newest
/// checkpoint matters, since its image covers everything the older ones
/// would have.
#[derive(Clone, Copy)]
struct SnapJob {
    generation: u64,
    cut: Lsn,
    epoch: u64,
}

struct SnapQueue {
    pending: Option<SnapJob>,
    /// A job is being performed right now (popped but not finished).
    busy: bool,
    shutdown: bool,
}

/// State shared between the standby's callers and its snapshotter thread.
struct StandbyShared {
    env: StorageEnv,
    inner: Mutex<StandbyInner>,
    /// Signalled whenever `applied` advances ([`StandbyDb::wait_applied`]).
    applied_grew: Condvar,
    snap_queue: Mutex<SnapQueue>,
    /// Signalled on enqueue, job completion, and shutdown.
    snap_cv: Condvar,
    /// Serializes snapshot-slot device writes between the snapshotter and
    /// [`StandbyDb::install_checkpoint`]: both write images into the
    /// ping-pong slots, and an interleaved write could tear the image an
    /// install is about to rely on for its log reset.
    snap_io: Mutex<()>,
}

/// A standby database continuously applying a primary's shipped WAL.
pub struct StandbyDb {
    shared: Arc<StandbyShared>,
    snapshotter: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StandbyDb {
    /// Opens (or re-opens after a standby restart) the apply-only database:
    /// restores the newest valid checkpoint image, then replays whatever
    /// log suffix its own devices already hold — exactly like crash replay.
    /// A half-installed checkpoint (image durable, log not yet reset) is
    /// completed here, so the install protocol is crash-safe end to end.
    pub fn open(env: StorageEnv) -> DbResult<StandbyDb> {
        let (mut ctl_seq, mut base, mut slot) = read_log_ctl(&env)?;
        let mut dev = env.device(log_slot_name(slot))?;

        let snap = latest_valid_snapshot(&env, |_| true)?;
        let (snap_base, mut tables, mut prepared, mut outcomes, mut max_txid) = match snap {
            Some(s) => {
                (s.base_lsn, s.tables, s.prepared, s.outcomes, s.next_txid.saturating_sub(1))
            }
            None => (0, HashMap::new(), HashMap::new(), HashMap::new(), 0),
        };
        if snap_base < base {
            return Err(DbError::Corrupt(format!(
                "standby log truncated to {base} but its newest snapshot covers only {snap_base}"
            )));
        }

        // Replay the retained suffix, skipping what the snapshot covers.
        let total = dev.len()?;
        let mut bytes = vec![0u8; total as usize];
        let got = dev.read_at(0, &mut bytes)?;
        bytes.truncate(got);
        let frames = parse_frames(&bytes, base);
        let parsed_end = frames.last().map(|(lsn, _, flen)| lsn + flen).unwrap_or(base);
        let mut applied = base;
        if parsed_end >= snap_base {
            for (lsn, rec, frame_len) in frames {
                if lsn >= snap_base {
                    Self::apply_record(&mut tables, &mut prepared, &mut outcomes, &rec)?;
                    max_txid = max_txid.max(record_txid(&rec));
                }
                applied = lsn + frame_len;
            }
            applied = applied.max(snap_base);
            dev.set_len(applied - base)?;
        } else {
            // The log predates the snapshot: a crash landed between a
            // checkpoint install's image write and its log reset. Finish
            // the reset now (flip to an empty slot at the image's base).
            applied = snap_base;
            let (dst, new_slot, new_seq) = swap_log_slot(&env, slot, ctl_seq, snap_base, &[])?;
            slot = new_slot;
            ctl_seq = new_seq;
            base = snap_base;
            dev = dst;
        }

        let shared = Arc::new(StandbyShared {
            env,
            inner: Mutex::new(StandbyInner {
                tables,
                prepared,
                outcomes,
                max_txid,
                applied,
                dev,
                base,
                slot,
                ctl_seq,
                epoch: 0,
            }),
            applied_grew: Condvar::new(),
            snap_queue: Mutex::new(SnapQueue { pending: None, busy: false, shutdown: false }),
            snap_cv: Condvar::new(),
            snap_io: Mutex::new(()),
        });
        let snapshotter = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("standby-snapshotter".into())
                .spawn(move || shared.snapshot_loop())
                .map_err(|e| DbError::Io(e.to_string()))?
        };
        Ok(StandbyDb { shared, snapshotter: Mutex::new(Some(snapshotter)) })
    }

    fn apply_record(
        tables: &mut HashMap<String, TableStore>,
        prepared: &mut HashMap<TxId, Vec<RowOp>>,
        outcomes: &mut HashMap<TxId, bool>,
        rec: &WalRecord,
    ) -> DbResult<()> {
        match rec {
            WalRecord::Ddl(op) => apply_op(tables, op)?,
            WalRecord::Commit { txid, participants, ops } => {
                if !participants.is_empty() {
                    outcomes.insert(*txid, true);
                }
                for op in ops {
                    apply_op(tables, op)?;
                }
            }
            WalRecord::Prepare { txid, ops } => {
                prepared.insert(*txid, ops.clone());
            }
            WalRecord::Decide { txid, commit } => {
                if let Some(ops) = prepared.remove(txid) {
                    if *commit {
                        for op in &ops {
                            apply_op(tables, op)?;
                        }
                    }
                }
            }
            WalRecord::Checkpoint { .. } => {}
        }
        Ok(())
    }

    /// Applies one shipped range: appends the raw bytes to the standby log,
    /// syncs, then applies the decoded records. The range may not start
    /// *past* the applied watermark — that gap means frames were lost in
    /// shipping and the standby must refuse rather than diverge — but an
    /// overlap with already-applied frames is fine: the shipper re-sends
    /// from the slowest standby's position, so a faster standby skips the
    /// prefix it already holds (apply is idempotent per frame).
    ///
    /// A [`WalRecord::Checkpoint`] frame in the range makes the standby
    /// schedule its own snapshot covering the log below that frame and the
    /// truncation of its log below it — the lockstep-truncation half of
    /// checkpoint shipping (module docs). The snapshot itself is written
    /// by the snapshotter thread; this call only enqueues the job, so a
    /// slow snapshot device never stalls the ship round.
    pub fn apply(&self, frames: &ShippedFrames) -> DbResult<()> {
        let mut inner = self.shared.inner.lock();
        if frames.is_empty() {
            return Ok(());
        }
        if frames.base > inner.applied {
            return Err(DbError::InvalidTxnState(format!(
                "standby expects frames at lsn {}, got {} (ship gap)",
                inner.applied, frames.base
            )));
        }
        if frames.end <= inner.applied {
            return Ok(()); // full resend of applied frames: nothing to do
        }
        // The applied watermark always sits on a frame boundary, so the
        // byte skip is exactly the already-applied frame prefix.
        let skip = (inner.applied - frames.base) as usize;
        let inner = &mut *inner;
        inner.dev.write_at(inner.applied - inner.base, &frames.bytes[skip..])?;
        inner.dev.sync()?;
        let mut checkpoint_cut: Option<(u64, Lsn)> = None;
        for (lsn, rec) in &frames.records {
            if *lsn < inner.applied {
                continue;
            }
            if let WalRecord::Checkpoint { generation } = rec {
                checkpoint_cut = Some((*generation, *lsn));
            }
            Self::apply_record(&mut inner.tables, &mut inner.prepared, &mut inner.outcomes, rec)?;
            inner.max_txid = inner.max_txid.max(record_txid(rec));
        }
        inner.applied = frames.end;
        if let Some((generation, cut)) = checkpoint_cut {
            // Coalescing enqueue: a newer checkpoint's image covers
            // everything an older pending one would have, so the newest
            // job simply replaces whatever is queued.
            let mut q = self.shared.snap_queue.lock();
            q.pending = Some(SnapJob { generation, cut, epoch: inner.epoch });
            self.shared.snap_cv.notify_all();
        }
        self.shared.applied_grew.notify_all();
        Ok(())
    }

    /// Installs a primary checkpoint image: delta catch-up for a standby
    /// whose next frame was truncated away on the primary (or a freshly
    /// provisioned one). Persists the image into the standby's own
    /// snapshot slot, resets the log to empty at the image's base, and
    /// replaces the in-memory state. Returns `false` (and changes nothing)
    /// when the standby is already at or past the image — the shipper then
    /// just resumes framing. Crash-safe: the image is durable before the
    /// log reset, and [`StandbyDb::open`] completes a reset that a crash
    /// interrupted.
    pub fn install_checkpoint(&self, snap: &SnapshotData) -> DbResult<bool> {
        let mut inner = self.shared.inner.lock();
        if snap.base_lsn <= inner.applied {
            return Ok(false);
        }
        {
            // Exclude the snapshotter from the slot devices while the
            // install's image write is in flight (it must be durable and
            // untorn before the log reset below relies on it).
            let _slots = self.shared.snap_io.lock();
            write_snapshot(
                &self.shared.env.device(slot_for_generation(snap.generation))?,
                snap.into(),
            )?;
        }
        // Log reset: empty inactive slot at the image's base, then flip.
        let (dst, slot, seq) =
            swap_log_slot(&self.shared.env, inner.slot, inner.ctl_seq, snap.base_lsn, &[])?;
        inner.slot = slot;
        inner.ctl_seq = seq;
        inner.base = snap.base_lsn;
        inner.dev = dst;
        inner.tables = snap.tables.clone();
        inner.prepared = snap.prepared.clone();
        inner.outcomes = snap.outcomes.clone();
        inner.max_txid = inner.max_txid.max(snap.next_txid.saturating_sub(1));
        inner.applied = snap.base_lsn;
        // Obsolete any queued snapshot job: it described a pre-install
        // checkpoint cut that the log reset just superseded.
        inner.epoch += 1;
        self.shared.applied_grew.notify_all();
        Ok(true)
    }

    /// Blocks until the snapshotter has no queued or in-flight job, or
    /// `timeout` elapses; returns whether it went idle. After a `true`
    /// return (with no new checkpoints shipping concurrently), the
    /// retained-bytes bound from the last shipped checkpoint is visible —
    /// the wait operators and tests use before asserting on
    /// [`StandbyDb::wal_retained_bytes`].
    pub fn wait_snapshot_idle(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.shared.snap_queue.lock();
        while q.pending.is_some() || q.busy {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            if self.shared.snap_cv.wait_for(&mut q, deadline - now).timed_out()
                && (q.pending.is_some() || q.busy)
            {
                return false;
            }
        }
        true
    }

    /// One past the last applied byte (lag = primary durable − this).
    pub fn applied_lsn(&self) -> Lsn {
        self.shared.inner.lock().applied
    }

    /// Snapshotter backlog: queued plus in-progress snapshot jobs (0–2;
    /// jobs coalesce, so `pending` never holds more than one). A depth
    /// stuck at 2 means checkpoints arrive faster than images are written.
    pub fn snapshot_queue_depth(&self) -> usize {
        let q = self.shared.snap_queue.lock();
        usize::from(q.pending.is_some()) + usize::from(q.busy)
    }

    /// Blocks until the applied watermark reaches `lsn` or `timeout`
    /// elapses; returns whether the standby caught up. The read-your-writes
    /// wait: a reader holding the commit LSN of its last write as a
    /// freshness token parks here before reading from this standby.
    pub fn wait_applied(&self, lsn: Lsn, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.inner.lock();
        while inner.applied < lsn {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            if self.shared.applied_grew.wait_for(&mut inner, deadline - now).timed_out()
                && inner.applied < lsn
            {
                return false;
            }
        }
        true
    }

    /// The standby's log low-water mark (0 until its first truncation).
    pub fn wal_base_lsn(&self) -> Lsn {
        self.shared.inner.lock().base
    }

    /// Bytes of log the standby currently retains (`applied − base`): the
    /// quantity checkpoint shipping keeps bounded (once the snapshotter
    /// performed the truncation — [`StandbyDb::wait_snapshot_idle`]).
    pub fn wal_retained_bytes(&self) -> u64 {
        let inner = self.shared.inner.lock();
        inner.applied.saturating_sub(inner.base)
    }

    /// The standby's storage environment. Promotion opens a normal
    /// [`crate::Database`] on a clone of this.
    pub fn env(&self) -> &StorageEnv {
        &self.shared.env
    }

    // --- read-committed lookups (mirrors Database's helpers) ---------------

    /// Whether the replicated catalog has a table `name`.
    pub fn has_table(&self, name: &str) -> bool {
        self.shared.inner.lock().tables.contains_key(name)
    }

    /// Point lookup of the replicated committed row at `key`.
    pub fn get_committed(&self, table: &str, key: &Value) -> DbResult<Option<Row>> {
        let inner = self.shared.inner.lock();
        let store =
            inner.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        Ok(store.get(key).cloned())
    }

    /// All replicated committed rows of `table`.
    pub fn scan_committed(&self, table: &str) -> DbResult<Vec<Row>> {
        let inner = self.shared.inner.lock();
        let store =
            inner.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        Ok(store.iter().map(|(_, row)| row.clone()).collect())
    }

    /// Replicated committed row count of `table`.
    pub fn count(&self, table: &str) -> DbResult<usize> {
        let inner = self.shared.inner.lock();
        inner
            .tables
            .get(table)
            .map(|s| s.len())
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))
    }

    /// Transactions prepared on the primary but undecided as of the applied
    /// watermark (visible in-doubt state; promotion recovery settles them).
    pub fn in_doubt_txns(&self) -> Vec<TxId> {
        let mut ids: Vec<TxId> = self.shared.inner.lock().prepared.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

impl Drop for StandbyDb {
    /// Signals shutdown and joins the snapshotter, which drains any queued
    /// job first — so dropping a standby (node restart in tests, graceful
    /// stop in `dl-repl`) leaves the last shipped checkpoint's snapshot
    /// and truncation durable on disk.
    fn drop(&mut self) {
        self.shared.snap_queue.lock().shutdown = true;
        self.shared.snap_cv.notify_all();
        if let Some(handle) = self.snapshotter.lock().take() {
            let _ = handle.join();
        }
    }
}

impl StandbyShared {
    /// The snapshotter thread body: pop the (coalesced) job, perform it,
    /// repeat. On shutdown it drains a pending job before exiting.
    fn snapshot_loop(&self) {
        loop {
            let job = {
                let mut q = self.snap_queue.lock();
                loop {
                    if let Some(job) = q.pending.take() {
                        q.busy = true;
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    self.snap_cv.wait(&mut q);
                }
            };
            // A failed snapshot leaves the standby's log unbounded but its
            // state correct; the next shipped checkpoint retries. There is
            // nowhere structured to report the error to from a detached
            // thread, so it is intentionally dropped.
            let _ = self.perform_snapshot(job);
            let mut q = self.snap_queue.lock();
            q.busy = false;
            self.snap_cv.notify_all();
        }
    }

    /// Writes one standby-side snapshot and truncates the log below the
    /// job's cut. Clones the state under a brief lock, then performs the
    /// slow image write unlocked so `apply` keeps streaming; the epoch is
    /// re-checked before truncation in case a checkpoint install replaced
    /// the world mid-write.
    fn perform_snapshot(&self, job: SnapJob) -> DbResult<()> {
        let (tables, prepared, outcomes, next_txid, base_lsn) = {
            let inner = self.inner.lock();
            if inner.epoch != job.epoch {
                return Ok(());
            }
            (
                inner.tables.clone(),
                inner.prepared.clone(),
                inner.outcomes.clone(),
                inner.max_txid + 1,
                // The applied watermark sits on a frame boundary and the
                // cloned state covers everything below it — a valid (and
                // possibly fresher-than-the-cut) snapshot base.
                inner.applied,
            )
        };
        {
            let _slots = self.snap_io.lock();
            write_snapshot(
                &self.env.device(slot_for_generation(job.generation))?,
                SnapshotSource {
                    generation: job.generation,
                    base_lsn,
                    next_txid,
                    outcomes: &outcomes,
                    prepared: &prepared,
                    tables: &tables,
                },
            )?;
        }
        let mut inner = self.inner.lock();
        if inner.epoch == job.epoch {
            self.truncate_log(&mut inner, job.cut)?;
        }
        Ok(())
    }

    /// Standby-side log truncation: same crash-safe slot dance as
    /// [`crate::wal::Wal::truncate_below`] — copy the surviving suffix into
    /// the inactive slot, then flip the control record.
    fn truncate_log(&self, inner: &mut StandbyInner, new_base: Lsn) -> DbResult<()> {
        if new_base <= inner.base {
            return Ok(());
        }
        let len = (inner.applied - new_base) as usize;
        let mut suffix = vec![0u8; len];
        let got = inner.dev.read_at(new_base - inner.base, &mut suffix)?;
        if got < len {
            return Err(DbError::Corrupt(format!(
                "standby truncate: short read of suffix at {new_base} ({got} of {len} bytes)"
            )));
        }
        let (dst, slot, seq) =
            swap_log_slot(&self.env, inner.slot, inner.ctl_seq, new_base, &suffix)?;
        inner.slot = slot;
        inner.ctl_seq = seq;
        inner.base = new_base;
        inner.dev = dst;
        Ok(())
    }
}

/// The highest transaction id a record names (0 for txid-less records).
fn record_txid(rec: &WalRecord) -> TxId {
    match rec {
        WalRecord::Commit { txid, .. }
        | WalRecord::Prepare { txid, .. }
        | WalRecord::Decide { txid, .. } => *txid,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, DbOptions};
    use crate::value::{Column, ColumnType, Schema};
    use crate::wal::WalOptions;

    fn schema(name: &str) -> Schema {
        Schema::new(
            name,
            vec![Column::new("id", ColumnType::Int), Column::nullable("v", ColumnType::Text)],
            "id",
        )
        .unwrap()
    }

    fn row(id: i64, v: &str) -> Row {
        vec![Value::Int(id), Value::Text(v.into())]
    }

    /// Ships everything durable on `db` into `standby`, installing a
    /// checkpoint when the frames were truncated away — the same protocol
    /// `dl-repl`'s shipper runs.
    fn ship_all(db: &Database, standby: &StandbyDb) {
        let feed = db.replication_feed();
        loop {
            match feed.reader().read_from(standby.applied_lsn()) {
                Ok(frames) => {
                    standby.apply(&frames).unwrap();
                    return;
                }
                Err(DbError::TruncatedLog { .. }) => {
                    let snap = feed.latest_checkpoint().unwrap().expect("truncation => snapshot");
                    standby.install_checkpoint(&snap).unwrap();
                }
                Err(e) => panic!("ship failed: {e}"),
            }
        }
    }

    #[test]
    fn standby_mirrors_primary_state_and_log_bytes() {
        let primary_env = StorageEnv::mem();
        let db = Database::open(primary_env.clone()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();

        for i in 0..5i64 {
            let mut tx = db.begin();
            tx.insert("t", row(i, "x")).unwrap();
            tx.commit().unwrap();
        }
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 5);
        assert_eq!(standby.applied_lsn(), db.wal_reader().durable_lsn());

        // Physical replication: byte-identical logs.
        let p = primary_env.device("wal").unwrap();
        let s = standby.env().device("wal").unwrap();
        let mut pb = vec![0u8; p.len().unwrap() as usize];
        let mut sb = vec![0u8; s.len().unwrap() as usize];
        p.read_at(0, &mut pb).unwrap();
        s.read_at(0, &mut sb).unwrap();
        assert_eq!(pb, sb);
    }

    #[test]
    fn apply_rejects_ship_gaps() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        let mid = tx.commit().unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.commit().unwrap();

        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        // Ship only the tail: a gap the standby must refuse.
        let frames = db.wal_reader().read_from(mid).unwrap();
        assert!(standby.apply(&frames).is_err());
        assert_eq!(standby.applied_lsn(), 0, "nothing applied across a gap");
    }

    #[test]
    fn apply_skips_already_applied_overlap() {
        // The shipper re-sends from the slowest standby's position; a
        // standby that already applied part (or all) of the range must
        // skip the overlap instead of wedging on it.
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.commit().unwrap();

        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        let first = db.wal_reader().read_from(0).unwrap();
        standby.apply(&first).unwrap();
        let applied = standby.applied_lsn();

        // Full resend: idempotent no-op.
        standby.apply(&first).unwrap();
        assert_eq!(standby.applied_lsn(), applied);
        assert_eq!(standby.count("t").unwrap(), 1, "no double-apply");

        // Partial overlap: a range starting at 0 that extends past the
        // applied watermark applies only the new suffix.
        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.commit().unwrap();
        let overlapping = db.wal_reader().read_from(0).unwrap();
        standby.apply(&overlapping).unwrap();
        assert_eq!(standby.applied_lsn(), overlapping.end);
        assert_eq!(standby.count("t").unwrap(), 2);
    }

    #[test]
    fn promotion_opens_a_normal_database_on_the_standby_env() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(7, "keep")).unwrap();
        tx.commit().unwrap();
        // An in-doubt prepare ships too.
        let mut tx = db.begin();
        tx.insert("t", row(8, "doubt")).unwrap();
        tx.prepare().unwrap();
        std::mem::forget(tx);

        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.in_doubt_txns().len(), 1);

        let promoted = Database::open(standby.env().clone()).unwrap();
        assert_eq!(promoted.count("t").unwrap(), 1);
        assert_eq!(promoted.in_doubt_txns(), standby.in_doubt_txns());
        // The promoted database is a full primary: it can commit.
        let mut tx = promoted.begin();
        tx.insert("t", row(9, "new-primary")).unwrap();
        tx.commit().unwrap();
        assert_eq!(promoted.count("t").unwrap(), 2);
    }

    #[test]
    fn standby_restart_replays_its_own_log() {
        let db = Database::open_with(
            StorageEnv::mem(),
            DbOptions { wal: WalOptions::tuned_for(4), ..Default::default() },
        )
        .unwrap();
        db.create_table(schema("t")).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.commit().unwrap();

        let standby_env = StorageEnv::mem();
        let applied = {
            let standby = StandbyDb::open(standby_env.clone()).unwrap();
            ship_all(&db, &standby);
            standby.applied_lsn()
        };
        // Standby restarts (crash of the replica node): state replays.
        let standby = StandbyDb::open(standby_env).unwrap();
        assert_eq!(standby.applied_lsn(), applied);
        assert_eq!(standby.count("t").unwrap(), 1);

        // And shipping resumes where it left off.
        let mut tx = db.begin();
        tx.insert("t", row(2, "b")).unwrap();
        tx.commit().unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 2);
    }

    #[test]
    fn decide_after_prepare_applies_in_doubt_ops() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();

        let mut tx = db.begin();
        tx.insert("t", row(1, "2pc")).unwrap();
        tx.prepare().unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 0, "prepared ops stay pending");
        assert_eq!(standby.in_doubt_txns().len(), 1);

        tx.commit_prepared().unwrap();
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 1, "decide applies the prepared ops");
        assert!(standby.in_doubt_txns().is_empty());
    }

    // --- checkpoint shipping ----------------------------------------------

    #[test]
    fn fresh_standby_installs_checkpoint_after_primary_truncation() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        for i in 0..20i64 {
            let mut tx = db.begin();
            tx.insert("t", row(i, "pre-truncation")).unwrap();
            tx.commit().unwrap();
        }
        let (_, base) = db.checkpoint_and_truncate().unwrap();
        assert!(base > 0);
        let mut tx = db.begin();
        tx.insert("t", row(100, "post-truncation")).unwrap();
        tx.commit().unwrap();

        // A fresh standby cannot tail from 0 — the frames are gone.
        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        let feed = db.replication_feed();
        assert!(matches!(
            feed.reader().read_from(0),
            Err(DbError::TruncatedLog { base: b }) if b == base
        ));
        // Delta catch-up: install the image, then tail only the suffix.
        ship_all(&db, &standby);
        assert_eq!(standby.count("t").unwrap(), 21);
        assert_eq!(standby.applied_lsn(), db.durable_lsn());
        assert!(standby.wal_base_lsn() >= base, "standby log starts at the image base");
    }

    #[test]
    fn standby_truncates_in_lockstep_with_primary_checkpoints() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        for round in 0..3u64 {
            for i in 0..10u64 {
                let mut tx = db.begin();
                tx.insert("t", row((round * 100 + i) as i64, "x")).unwrap();
                tx.commit().unwrap();
            }
            db.checkpoint_and_truncate().unwrap();
            ship_all(&db, &standby);
            // Lockstep: the standby truncates at the shipped Checkpoint
            // record — on its snapshotter thread, so wait for it — and
            // then its retained bytes match the primary's.
            assert!(standby.wait_snapshot_idle(std::time::Duration::from_secs(10)));
            assert_eq!(standby.wal_base_lsn(), db.wal_base_lsn());
            assert_eq!(standby.wal_retained_bytes(), db.wal_retained_bytes());
        }
        assert_eq!(standby.count("t").unwrap(), 30);

        // A standby restart after lockstep truncation recovers from its own
        // snapshot + suffix.
        let env = standby.env().clone();
        drop(standby);
        let standby = StandbyDb::open(env).unwrap();
        assert_eq!(standby.count("t").unwrap(), 30);
        assert_eq!(standby.applied_lsn(), db.durable_lsn());
    }

    #[test]
    fn apply_does_not_block_on_slow_snapshot_writes() {
        // Regression guard for the async snapshotter: with a slow standby
        // disk, applying a checkpoint-carrying range must cost apply()
        // only its own log append sync — the (much bigger) snapshot image
        // write happens on the snapshotter thread. The inline version
        // paid image-write + truncation syncs inside apply, stalling the
        // ship round and every freshness waiter behind it.
        const SYNC_LATENCY: std::time::Duration = std::time::Duration::from_millis(25);
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby =
            StandbyDb::open(StorageEnv::mem_with_sync_latency(SYNC_LATENCY.as_nanos() as u64))
                .unwrap();
        for i in 0..50i64 {
            let mut tx = db.begin();
            tx.insert("t", row(i, "bulk")).unwrap();
            tx.commit().unwrap();
        }
        ship_all(&db, &standby);
        db.checkpoint_and_truncate().unwrap();

        // The un-shipped range is exactly the Checkpoint frame: the apply
        // below is all checkpoint handling, no bulk row replay.
        let frames = db.replication_feed().reader().read_from(standby.applied_lsn()).unwrap();
        let start = std::time::Instant::now();
        standby.apply(&frames).unwrap();
        let apply_took = start.elapsed();
        // One append sync, plus slack for the apply loop itself. The old
        // inline path paid >= 3 extra device syncs here (image write +
        // slot-swap copy + control flip), i.e. >= 100ms at this latency.
        assert!(
            apply_took < SYNC_LATENCY * 3,
            "apply() stalled on snapshot i/o: {apply_took:?} at {SYNC_LATENCY:?} sync latency"
        );

        // The snapshot + truncation still happen — asynchronously.
        assert!(standby.wait_snapshot_idle(std::time::Duration::from_secs(30)));
        assert_eq!(standby.wal_base_lsn(), db.wal_base_lsn());
        assert_eq!(standby.count("t").unwrap(), 50);

        // And a restart recovers from the async-written snapshot + suffix.
        let env = standby.env().clone();
        drop(standby);
        let standby = StandbyDb::open(env).unwrap();
        assert_eq!(standby.count("t").unwrap(), 50);
        assert_eq!(standby.applied_lsn(), db.durable_lsn());
    }

    #[test]
    fn install_checkpoint_is_skipped_when_already_ahead() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        tx.commit().unwrap();
        db.checkpoint().unwrap();
        ship_all(&db, &standby);

        let snap = db.replication_feed().latest_checkpoint().unwrap().unwrap();
        assert!(!standby.install_checkpoint(&snap).unwrap(), "already past the image");
        assert_eq!(standby.count("t").unwrap(), 1);
    }

    #[test]
    fn promotion_after_checkpoint_install_keeps_outcomes_and_txids() {
        // Outcomes and the txid horizon must survive the image path: a
        // promoted standby answers coordinator_outcome for transactions
        // whose records were truncated away, and never re-issues txids.
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        struct Yes;
        impl crate::db::Participant for Yes {
            fn prepare(&self, _t: TxId) -> Result<(), String> {
                Ok(())
            }
            fn commit(&self, _t: TxId) {}
            fn abort(&self, _t: TxId) {}
        }
        let mut tx = db.begin();
        let txid = tx.id();
        db.enlist_participant(txid, "p", Arc::new(Yes));
        tx.insert("t", row(1, "2pc")).unwrap();
        tx.commit().unwrap();
        db.checkpoint_and_truncate().unwrap();

        let standby = StandbyDb::open(StorageEnv::mem()).unwrap();
        ship_all(&db, &standby);
        let promoted = Database::open(standby.env().clone()).unwrap();
        assert_eq!(promoted.coordinator_outcome(txid), Some(true));
        let tx = promoted.begin();
        assert!(tx.id() > txid, "promoted primary must not reuse txids");
        tx.abort();
    }

    #[test]
    fn wait_applied_times_out_and_wakes() {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(schema("t")).unwrap();
        let standby = Arc::new(StandbyDb::open(StorageEnv::mem()).unwrap());
        let mut tx = db.begin();
        tx.insert("t", row(1, "a")).unwrap();
        let lsn = tx.commit().unwrap();

        // Not shipped yet: the wait must time out.
        assert!(!standby.wait_applied(lsn, std::time::Duration::from_millis(10)));

        let waiter = {
            let standby = Arc::clone(&standby);
            std::thread::spawn(move || {
                standby.wait_applied(lsn, std::time::Duration::from_secs(10))
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        ship_all(&db, &standby);
        assert!(waiter.join().unwrap(), "apply must wake freshness waiters");
    }
}
