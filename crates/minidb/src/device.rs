//! Storage devices and environments.
//!
//! A [`Device`] is a flat, random-access byte store — the abstraction of one
//! disk file. A [`StorageEnv`] hands out named devices ("wal", "snap.a",
//! "snap.b") and can *fork* itself, which is how backups and simulated
//! crashes work: a fork is a moment-in-time copy of the durable state, and a
//! crash is simply re-opening a database from its (still live) environment
//! while dropping all in-memory state.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{DbError, DbResult};

/// A flat byte store with positional I/O, the moral equivalent of a file.
pub trait Device: Send + Sync {
    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read (short
    /// reads only at end of device).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize>;
    /// Writes all of `data` at `offset`, extending the device as needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> DbResult<()>;
    /// Current device length in bytes.
    fn len(&self) -> DbResult<u64>;
    /// True when the device holds no bytes.
    fn is_empty(&self) -> DbResult<bool> {
        Ok(self.len()? == 0)
    }
    /// Durably flushes buffered writes.
    fn sync(&self) -> DbResult<()>;
    /// Truncates or extends to exactly `len` bytes.
    fn set_len(&self, len: u64) -> DbResult<()>;
}

/// In-memory device. The backing vector survives as long as the Arc does,
/// which makes it the "disk" in crash-simulation tests.
#[derive(Debug, Default)]
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
}

impl MemDevice {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deep copy of the current contents (fork support).
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemDevice { data: RwLock::new(bytes) }
    }
}

impl Device for MemDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        let data = self.data.read();
        let off = offset as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        Ok(n)
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> DbResult<()> {
        let mut data = self.data.write();
        let off = offset as usize;
        let end = off + bytes.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[off..end].copy_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> DbResult<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn sync(&self) -> DbResult<()> {
        Ok(())
    }

    fn set_len(&self, len: u64) -> DbResult<()> {
        self.data.write().resize(len as usize, 0);
        Ok(())
    }
}

/// A device backed by an operating-system file.
pub struct FileDevice {
    file: Mutex<File>,
    path: PathBuf,
}

impl FileDevice {
    pub fn open(path: PathBuf) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| DbError::Io(format!("open {path:?}: {e}")))?;
        Ok(FileDevice { file: Mutex::new(file), path })
    }

    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Device for FileDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        let mut total = 0;
        while total < buf.len() {
            match file.read(&mut buf[total..])? {
                0 => break,
                n => total += n,
            }
        }
        Ok(total)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> DbResult<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)?;
        Ok(())
    }

    fn len(&self) -> DbResult<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn sync(&self) -> DbResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> DbResult<()> {
        self.file.lock().set_len(len)?;
        Ok(())
    }
}

/// Provides the named devices a database needs and supports forking.
#[derive(Clone)]
pub enum StorageEnv {
    /// Devices held in memory, shared through Arcs.
    Mem(Arc<RwLock<HashMap<String, Arc<MemDevice>>>>),
    /// Devices are files inside a directory.
    Dir(PathBuf),
}

impl StorageEnv {
    /// A fresh in-memory environment.
    pub fn mem() -> Self {
        StorageEnv::Mem(Arc::new(RwLock::new(HashMap::new())))
    }

    /// A directory-backed environment (created if missing).
    pub fn dir(path: PathBuf) -> DbResult<Self> {
        std::fs::create_dir_all(&path)
            .map_err(|e| DbError::Io(format!("create_dir_all {path:?}: {e}")))?;
        Ok(StorageEnv::Dir(path))
    }

    /// Returns the named device, creating it empty when absent.
    pub fn device(&self, name: &str) -> DbResult<Arc<dyn Device>> {
        match self {
            StorageEnv::Mem(map) => {
                if let Some(dev) = map.read().get(name) {
                    return Ok(Arc::clone(dev) as Arc<dyn Device>);
                }
                let mut w = map.write();
                let dev = w.entry(name.to_string()).or_insert_with(|| Arc::new(MemDevice::new()));
                Ok(Arc::clone(dev) as Arc<dyn Device>)
            }
            StorageEnv::Dir(dir) => {
                let dev = FileDevice::open(dir.join(name))?;
                Ok(Arc::new(dev))
            }
        }
    }

    /// A moment-in-time deep copy of all devices — the backup primitive.
    ///
    /// The caller is responsible for quiescing writers (the database takes
    /// its commit latch around this).
    pub fn fork(&self) -> DbResult<StorageEnv> {
        match self {
            StorageEnv::Mem(map) => {
                let src = map.read();
                let mut dst = HashMap::new();
                for (name, dev) in src.iter() {
                    dst.insert(name.clone(), Arc::new(MemDevice::from_bytes(dev.snapshot())));
                }
                Ok(StorageEnv::Mem(Arc::new(RwLock::new(dst))))
            }
            StorageEnv::Dir(dir) => {
                let dst = dir.with_extension(format!(
                    "fork-{}",
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos())
                        .unwrap_or(0)
                ));
                std::fs::create_dir_all(&dst).map_err(|e| DbError::Io(format!("fork dir: {e}")))?;
                for entry in std::fs::read_dir(dir).map_err(|e| DbError::Io(e.to_string()))? {
                    let entry = entry.map_err(|e| DbError::Io(e.to_string()))?;
                    if entry.path().is_file() {
                        std::fs::copy(entry.path(), dst.join(entry.file_name()))
                            .map_err(|e| DbError::Io(format!("fork copy: {e}")))?;
                    }
                }
                Ok(StorageEnv::Dir(dst))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_positional_io() {
        let d = MemDevice::new();
        d.write_at(4, b"abc").unwrap();
        assert_eq!(d.len().unwrap(), 7);
        let mut buf = [9u8; 7];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, &[0, 0, 0, 0, b'a', b'b', b'c']);
        // Read past end.
        assert_eq!(d.read_at(100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn mem_device_set_len() {
        let d = MemDevice::new();
        d.write_at(0, b"abcdef").unwrap();
        d.set_len(2).unwrap();
        assert_eq!(d.len().unwrap(), 2);
        let mut buf = [0u8; 6];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 2);
    }

    #[test]
    fn env_returns_same_mem_device() {
        let env = StorageEnv::mem();
        let a = env.device("wal").unwrap();
        a.write_at(0, b"log").unwrap();
        let b = env.device("wal").unwrap();
        let mut buf = [0u8; 3];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"log");
    }

    #[test]
    fn fork_is_isolated() {
        let env = StorageEnv::mem();
        env.device("wal").unwrap().write_at(0, b"one").unwrap();
        let fork = env.fork().unwrap();
        env.device("wal").unwrap().write_at(0, b"two").unwrap();

        let mut buf = [0u8; 3];
        fork.device("wal").unwrap().read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"one", "fork must not see post-fork writes");
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dl-minidb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let env = StorageEnv::dir(dir.clone()).unwrap();
        let d = env.device("wal").unwrap();
        d.write_at(0, b"hello").unwrap();
        d.sync().unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        std::fs::remove_dir_all(&dir).ok();
    }
}
