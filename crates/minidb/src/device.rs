//! Storage devices and environments.
//!
//! A [`Device`] is a flat, random-access byte store — the abstraction of one
//! disk file. A [`StorageEnv`] hands out named devices ("wal", "snap.a",
//! "snap.b") and can *fork* itself, which is how backups and simulated
//! crashes work: a fork is a moment-in-time copy of the durable state, and a
//! crash is simply re-opening a database from its (still live) environment
//! while dropping all in-memory state.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{DbError, DbResult};

/// Injectable disk faults shared by every device of a faulted in-memory
/// environment ([`StorageEnv::mem_with_faults`]). Lab scenarios and crash
/// tests *declare* faults here instead of hand-editing device bytes:
///
/// - **ENOSPC budget** — [`DiskFaults::inject_enospc`] arms a budget of
///   `n` *failures*: while the budget is positive every `write_at` on an
///   attached device fails with an `ENOSPC` I/O error and decrements it.
///   Failures are therefore a strict prefix of the writes that follow the
///   injection (the device never interleaves success and failure), which
///   keeps two-phase commit sane: once a prepare's log write has
///   succeeded the budget is exhausted, so the decision record that
///   follows it cannot be the one that fails.
/// - **Torn tail on crash** — [`DiskFaults::arm_torn_tail`] declares that
///   the last `bytes` of a named device never reached the platter. The
///   shear is applied by [`StorageEnv::apply_crash_faults`], which crash
///   simulations call before re-opening: the live process believed the
///   write was durable; only the crash reveals the torn suffix.
#[derive(Default)]
pub struct DiskFaults {
    /// Remaining writes that fail with ENOSPC (counts failures, not writes).
    enospc_budget: AtomicU64,
    /// Writes rejected so far (tests assert the fault actually fired).
    enospc_hits: AtomicU64,
    /// Armed torn tail: device name and bytes to shear off at crash.
    torn: Mutex<Option<(String, u64)>>,
}

impl DiskFaults {
    /// A fresh, quiescent fault handle (no faults armed).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arms `writes` consecutive write failures: the next `writes` calls
    /// to `write_at` on any attached device fail with ENOSPC, then the
    /// device recovers (the operator freed space).
    pub fn inject_enospc(&self, writes: u64) {
        self.enospc_budget.fetch_add(writes, Ordering::SeqCst);
    }

    /// Write failures still to be served from the armed budget.
    pub fn enospc_remaining(&self) -> u64 {
        self.enospc_budget.load(Ordering::SeqCst)
    }

    /// Writes rejected with ENOSPC since this handle was created.
    pub fn enospc_hits(&self) -> u64 {
        self.enospc_hits.load(Ordering::SeqCst)
    }

    /// Declares that the final `bytes` of device `name` were torn (never
    /// durable). Applied by [`StorageEnv::apply_crash_faults`]; re-arming
    /// replaces any previous declaration.
    pub fn arm_torn_tail(&self, name: &str, bytes: u64) {
        *self.torn.lock() = Some((name.to_string(), bytes));
    }

    /// Commit-path check used by attached devices: consumes one unit of
    /// ENOSPC budget if any is armed.
    fn check_write(&self) -> DbResult<()> {
        // Decrement-if-positive without underflow under concurrency.
        loop {
            let cur = self.enospc_budget.load(Ordering::SeqCst);
            if cur == 0 {
                return Ok(());
            }
            if self
                .enospc_budget
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.enospc_hits.fetch_add(1, Ordering::SeqCst);
                return Err(DbError::Io("ENOSPC: injected disk-full fault".into()));
            }
        }
    }

    /// Takes the armed torn-tail declaration, if any.
    fn take_torn(&self) -> Option<(String, u64)> {
        self.torn.lock().take()
    }
}

/// A flat byte store with positional I/O, the moral equivalent of a file.
pub trait Device: Send + Sync {
    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read (short
    /// reads only at end of device).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize>;
    /// Writes all of `data` at `offset`, extending the device as needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> DbResult<()>;
    /// Current device length in bytes.
    fn len(&self) -> DbResult<u64>;
    /// True when the device holds no bytes.
    fn is_empty(&self) -> DbResult<bool> {
        Ok(self.len()? == 0)
    }
    /// Durably flushes buffered writes.
    fn sync(&self) -> DbResult<()>;
    /// Truncates or extends to exactly `len` bytes.
    fn set_len(&self, len: u64) -> DbResult<()>;
}

/// In-memory device. The backing vector survives as long as the Arc does,
/// which makes it the "disk" in crash-simulation tests.
#[derive(Default)]
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
    /// Fault handle shared with the owning environment (None = never fails).
    faults: Option<Arc<DiskFaults>>,
    /// Minimum cost charged by every [`Device::sync`] call. Unlike fskit's
    /// spin-based `IoModel`, this *sleeps*: a real fsync parks the calling
    /// thread in the kernel and leaves the CPU free for other committers —
    /// exactly the property group commit exploits (and the only honest
    /// model on a single-core host). Zero (the default) keeps sync free.
    sync_latency_ns: u64,
    /// Number of `sync` calls served (benchmarks and tests read this).
    syncs: std::sync::atomic::AtomicU64,
}

impl MemDevice {
    pub fn new() -> Self {
        Self::default()
    }

    /// A device whose `sync` costs `ns` nanoseconds — the knob that makes a
    /// group-commit win measurable deterministically (a `sync` on a real
    /// disk is the expensive step every commit pays).
    pub fn with_sync_latency_ns(ns: u64) -> Self {
        MemDevice { sync_latency_ns: ns, ..Default::default() }
    }

    /// Deep copy of the current contents (fork support).
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemDevice { data: RwLock::new(bytes), ..Default::default() }
    }

    /// How many times this device has been synced.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Device for MemDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        let data = self.data.read();
        let off = offset as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        Ok(n)
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> DbResult<()> {
        if let Some(faults) = &self.faults {
            faults.check_write()?;
        }
        let mut data = self.data.write();
        let off = offset as usize;
        let end = off + bytes.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[off..end].copy_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> DbResult<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn sync(&self) -> DbResult<()> {
        self.syncs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.sync_latency_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(self.sync_latency_ns));
        }
        Ok(())
    }

    fn set_len(&self, len: u64) -> DbResult<()> {
        self.data.write().resize(len as usize, 0);
        Ok(())
    }
}

/// A device backed by an operating-system file.
pub struct FileDevice {
    file: Mutex<File>,
    path: PathBuf,
}

impl FileDevice {
    pub fn open(path: PathBuf) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| DbError::Io(format!("open {path:?}: {e}")))?;
        Ok(FileDevice { file: Mutex::new(file), path })
    }

    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Device for FileDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        let mut total = 0;
        while total < buf.len() {
            match file.read(&mut buf[total..])? {
                0 => break,
                n => total += n,
            }
        }
        Ok(total)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> DbResult<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)?;
        Ok(())
    }

    fn len(&self) -> DbResult<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn sync(&self) -> DbResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> DbResult<()> {
        self.file.lock().set_len(len)?;
        Ok(())
    }
}

/// The shared state of an in-memory [`StorageEnv`].
#[derive(Default)]
pub struct MemEnv {
    devices: RwLock<HashMap<String, Arc<MemDevice>>>,
    /// Sync latency handed to every device this environment creates.
    sync_latency_ns: u64,
    /// Fault handle shared with every device this environment creates.
    faults: Option<Arc<DiskFaults>>,
}

/// Provides the named devices a database needs and supports forking.
#[derive(Clone)]
pub enum StorageEnv {
    /// Devices held in memory, shared through Arcs.
    Mem(Arc<MemEnv>),
    /// Devices are files inside a directory.
    Dir(PathBuf),
}

impl StorageEnv {
    /// A fresh in-memory environment.
    pub fn mem() -> Self {
        StorageEnv::Mem(Arc::new(MemEnv::default()))
    }

    /// An in-memory environment whose devices charge `ns` nanoseconds per
    /// `sync` — a deterministic stand-in for disk flush latency.
    pub fn mem_with_sync_latency(ns: u64) -> Self {
        StorageEnv::Mem(Arc::new(MemEnv { sync_latency_ns: ns, ..Default::default() }))
    }

    /// An in-memory environment whose devices consult `faults` on every
    /// write — the injectable disk-fault layer lab scenarios declare
    /// ENOSPC and torn-write faults through (see [`DiskFaults`]) — and
    /// charge `sync_latency_ns` per `sync` (zero keeps sync free).
    pub fn mem_with_faults(faults: Arc<DiskFaults>, sync_latency_ns: u64) -> Self {
        StorageEnv::Mem(Arc::new(MemEnv {
            faults: Some(faults),
            sync_latency_ns,
            ..Default::default()
        }))
    }

    /// The fault handle attached at construction, if any.
    pub fn faults(&self) -> Option<Arc<DiskFaults>> {
        match self {
            StorageEnv::Mem(env) => env.faults.clone(),
            StorageEnv::Dir(_) => None,
        }
    }

    /// Applies any armed crash-boundary fault (currently: the torn tail
    /// declared via [`DiskFaults::arm_torn_tail`]) and returns the number
    /// of bytes sheared. Crash simulations call this between "process
    /// died" and "recovery re-opens the environment": the torn suffix was
    /// never durable, so it must vanish exactly when the crash happens.
    pub fn apply_crash_faults(&self) -> DbResult<u64> {
        let Some(faults) = self.faults() else { return Ok(0) };
        let Some((name, bytes)) = faults.take_torn() else { return Ok(0) };
        let dev = self.device(&name)?;
        let len = dev.len()?;
        let torn = bytes.min(len);
        dev.set_len(len - torn)?;
        Ok(torn)
    }

    /// The per-`sync` latency this environment's devices charge (zero for
    /// directory-backed environments — real fsync cost applies there).
    /// Replica provisioning uses it to give standby environments the same
    /// durability cost as the primary's.
    pub fn sync_latency_ns(&self) -> u64 {
        match self {
            StorageEnv::Mem(env) => env.sync_latency_ns,
            StorageEnv::Dir(_) => 0,
        }
    }

    /// A directory-backed environment (created if missing).
    pub fn dir(path: PathBuf) -> DbResult<Self> {
        std::fs::create_dir_all(&path)
            .map_err(|e| DbError::Io(format!("create_dir_all {path:?}: {e}")))?;
        Ok(StorageEnv::Dir(path))
    }

    /// Returns the named device, creating it empty when absent.
    pub fn device(&self, name: &str) -> DbResult<Arc<dyn Device>> {
        match self {
            StorageEnv::Mem(env) => {
                if let Some(dev) = env.devices.read().get(name) {
                    return Ok(Arc::clone(dev) as Arc<dyn Device>);
                }
                let mut w = env.devices.write();
                let dev = w.entry(name.to_string()).or_insert_with(|| {
                    Arc::new(MemDevice {
                        sync_latency_ns: env.sync_latency_ns,
                        faults: env.faults.clone(),
                        ..Default::default()
                    })
                });
                Ok(Arc::clone(dev) as Arc<dyn Device>)
            }
            StorageEnv::Dir(dir) => {
                let dev = FileDevice::open(dir.join(name))?;
                Ok(Arc::new(dev))
            }
        }
    }

    /// A moment-in-time deep copy of all devices — the backup primitive.
    ///
    /// The caller is responsible for quiescing writers (the database takes
    /// its commit latch around this).
    pub fn fork(&self) -> DbResult<StorageEnv> {
        match self {
            StorageEnv::Mem(env) => {
                let src = env.devices.read();
                let mut dst = HashMap::new();
                for (name, dev) in src.iter() {
                    dst.insert(
                        name.clone(),
                        Arc::new(MemDevice {
                            data: RwLock::new(dev.snapshot()),
                            sync_latency_ns: env.sync_latency_ns,
                            faults: env.faults.clone(),
                            syncs: Default::default(),
                        }),
                    );
                }
                Ok(StorageEnv::Mem(Arc::new(MemEnv {
                    devices: RwLock::new(dst),
                    sync_latency_ns: env.sync_latency_ns,
                    faults: env.faults.clone(),
                })))
            }
            StorageEnv::Dir(dir) => {
                let dst = dir.with_extension(format!(
                    "fork-{}",
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos())
                        .unwrap_or(0)
                ));
                std::fs::create_dir_all(&dst).map_err(|e| DbError::Io(format!("fork dir: {e}")))?;
                for entry in std::fs::read_dir(dir).map_err(|e| DbError::Io(e.to_string()))? {
                    let entry = entry.map_err(|e| DbError::Io(e.to_string()))?;
                    if entry.path().is_file() {
                        std::fs::copy(entry.path(), dst.join(entry.file_name()))
                            .map_err(|e| DbError::Io(format!("fork copy: {e}")))?;
                    }
                }
                Ok(StorageEnv::Dir(dst))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_positional_io() {
        let d = MemDevice::new();
        d.write_at(4, b"abc").unwrap();
        assert_eq!(d.len().unwrap(), 7);
        let mut buf = [9u8; 7];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, &[0, 0, 0, 0, b'a', b'b', b'c']);
        // Read past end.
        assert_eq!(d.read_at(100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn mem_device_set_len() {
        let d = MemDevice::new();
        d.write_at(0, b"abcdef").unwrap();
        d.set_len(2).unwrap();
        assert_eq!(d.len().unwrap(), 2);
        let mut buf = [0u8; 6];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 2);
    }

    #[test]
    fn env_returns_same_mem_device() {
        let env = StorageEnv::mem();
        let a = env.device("wal").unwrap();
        a.write_at(0, b"log").unwrap();
        let b = env.device("wal").unwrap();
        let mut buf = [0u8; 3];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"log");
    }

    #[test]
    fn fork_is_isolated() {
        let env = StorageEnv::mem();
        env.device("wal").unwrap().write_at(0, b"one").unwrap();
        let fork = env.fork().unwrap();
        env.device("wal").unwrap().write_at(0, b"two").unwrap();

        let mut buf = [0u8; 3];
        fork.device("wal").unwrap().read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"one", "fork must not see post-fork writes");
    }

    #[test]
    fn mem_device_sync_latency_is_charged_and_counted() {
        let d = MemDevice::with_sync_latency_ns(200_000);
        let t = std::time::Instant::now();
        d.sync().unwrap();
        d.sync().unwrap();
        assert!(t.elapsed() >= std::time::Duration::from_micros(400));
        assert_eq!(d.sync_count(), 2);
    }

    #[test]
    fn mem_env_sync_latency_survives_fork() {
        let env = StorageEnv::mem_with_sync_latency(150_000);
        env.device("wal").unwrap().write_at(0, b"x").unwrap();
        let fork = env.fork().unwrap();
        for e in [&env, &fork] {
            let d = e.device("wal").unwrap();
            let t = std::time::Instant::now();
            d.sync().unwrap();
            assert!(t.elapsed() >= std::time::Duration::from_micros(150));
        }
    }

    #[test]
    fn enospc_budget_fails_a_strict_prefix_then_recovers() {
        let faults = DiskFaults::new();
        let env = StorageEnv::mem_with_faults(Arc::clone(&faults), 0);
        let dev = env.device("wal").unwrap();
        dev.write_at(0, b"pre").unwrap();

        faults.inject_enospc(2);
        assert!(dev.write_at(3, b"a").is_err());
        assert!(dev.write_at(3, b"b").is_err());
        // Budget spent: the device recovers, no interleaved failures.
        dev.write_at(3, b"c").unwrap();
        dev.write_at(4, b"d").unwrap();
        assert_eq!(faults.enospc_hits(), 2);
        assert_eq!(faults.enospc_remaining(), 0);
        // The failed writes left no bytes behind.
        let mut buf = [0u8; 5];
        assert_eq!(dev.read_at(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"precd");
    }

    #[test]
    fn enospc_budget_covers_every_device_of_the_env() {
        let faults = DiskFaults::new();
        let env = StorageEnv::mem_with_faults(Arc::clone(&faults), 0);
        let a = env.device("wal").unwrap();
        let b = env.device("snap.a").unwrap();
        faults.inject_enospc(1);
        assert!(a.write_at(0, b"x").is_err());
        b.write_at(0, b"y").unwrap();
        assert_eq!(faults.enospc_hits(), 1);
    }

    #[test]
    fn torn_tail_applies_only_at_crash_boundary() {
        let faults = DiskFaults::new();
        let env = StorageEnv::mem_with_faults(Arc::clone(&faults), 0);
        let dev = env.device("wal").unwrap();
        dev.write_at(0, b"0123456789").unwrap();

        faults.arm_torn_tail("wal", 4);
        // The live process still sees every byte it wrote.
        assert_eq!(dev.len().unwrap(), 10);

        assert_eq!(env.apply_crash_faults().unwrap(), 4);
        assert_eq!(dev.len().unwrap(), 6, "torn suffix vanishes at the crash");
        // One-shot: a second crash on the same env shears nothing more.
        assert_eq!(env.apply_crash_faults().unwrap(), 0);
    }

    #[test]
    fn torn_tail_is_clamped_to_device_length() {
        let faults = DiskFaults::new();
        let env = StorageEnv::mem_with_faults(Arc::clone(&faults), 0);
        env.device("wal").unwrap().write_at(0, b"abc").unwrap();
        faults.arm_torn_tail("wal", 1_000);
        assert_eq!(env.apply_crash_faults().unwrap(), 3);
        assert_eq!(env.device("wal").unwrap().len().unwrap(), 0);
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dl-minidb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let env = StorageEnv::dir(dir.clone()).unwrap();
        let d = env.device("wal").unwrap();
        d.write_at(0, b"hello").unwrap();
        d.sync().unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        std::fs::remove_dir_all(&dir).ok();
    }
}
