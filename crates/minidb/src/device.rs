//! Storage devices and environments.
//!
//! A [`Device`] is a flat, random-access byte store — the abstraction of one
//! disk file. A [`StorageEnv`] hands out named devices ("wal", "snap.a",
//! "snap.b") and can *fork* itself, which is how backups and simulated
//! crashes work: a fork is a moment-in-time copy of the durable state, and a
//! crash is simply re-opening a database from its (still live) environment
//! while dropping all in-memory state.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{DbError, DbResult};

/// A flat byte store with positional I/O, the moral equivalent of a file.
pub trait Device: Send + Sync {
    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read (short
    /// reads only at end of device).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize>;
    /// Writes all of `data` at `offset`, extending the device as needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> DbResult<()>;
    /// Current device length in bytes.
    fn len(&self) -> DbResult<u64>;
    /// True when the device holds no bytes.
    fn is_empty(&self) -> DbResult<bool> {
        Ok(self.len()? == 0)
    }
    /// Durably flushes buffered writes.
    fn sync(&self) -> DbResult<()>;
    /// Truncates or extends to exactly `len` bytes.
    fn set_len(&self, len: u64) -> DbResult<()>;
}

/// In-memory device. The backing vector survives as long as the Arc does,
/// which makes it the "disk" in crash-simulation tests.
#[derive(Debug, Default)]
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
    /// Minimum cost charged by every [`Device::sync`] call. Unlike fskit's
    /// spin-based `IoModel`, this *sleeps*: a real fsync parks the calling
    /// thread in the kernel and leaves the CPU free for other committers —
    /// exactly the property group commit exploits (and the only honest
    /// model on a single-core host). Zero (the default) keeps sync free.
    sync_latency_ns: u64,
    /// Number of `sync` calls served (benchmarks and tests read this).
    syncs: std::sync::atomic::AtomicU64,
}

impl MemDevice {
    pub fn new() -> Self {
        Self::default()
    }

    /// A device whose `sync` costs `ns` nanoseconds — the knob that makes a
    /// group-commit win measurable deterministically (a `sync` on a real
    /// disk is the expensive step every commit pays).
    pub fn with_sync_latency_ns(ns: u64) -> Self {
        MemDevice { sync_latency_ns: ns, ..Default::default() }
    }

    /// Deep copy of the current contents (fork support).
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemDevice { data: RwLock::new(bytes), ..Default::default() }
    }

    /// How many times this device has been synced.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Device for MemDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        let data = self.data.read();
        let off = offset as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        Ok(n)
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> DbResult<()> {
        let mut data = self.data.write();
        let off = offset as usize;
        let end = off + bytes.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[off..end].copy_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> DbResult<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn sync(&self) -> DbResult<()> {
        self.syncs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.sync_latency_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(self.sync_latency_ns));
        }
        Ok(())
    }

    fn set_len(&self, len: u64) -> DbResult<()> {
        self.data.write().resize(len as usize, 0);
        Ok(())
    }
}

/// A device backed by an operating-system file.
pub struct FileDevice {
    file: Mutex<File>,
    path: PathBuf,
}

impl FileDevice {
    pub fn open(path: PathBuf) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| DbError::Io(format!("open {path:?}: {e}")))?;
        Ok(FileDevice { file: Mutex::new(file), path })
    }

    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Device for FileDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        let mut total = 0;
        while total < buf.len() {
            match file.read(&mut buf[total..])? {
                0 => break,
                n => total += n,
            }
        }
        Ok(total)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> DbResult<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)?;
        Ok(())
    }

    fn len(&self) -> DbResult<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn sync(&self) -> DbResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> DbResult<()> {
        self.file.lock().set_len(len)?;
        Ok(())
    }
}

/// The shared state of an in-memory [`StorageEnv`].
#[derive(Default)]
pub struct MemEnv {
    devices: RwLock<HashMap<String, Arc<MemDevice>>>,
    /// Sync latency handed to every device this environment creates.
    sync_latency_ns: u64,
}

/// Provides the named devices a database needs and supports forking.
#[derive(Clone)]
pub enum StorageEnv {
    /// Devices held in memory, shared through Arcs.
    Mem(Arc<MemEnv>),
    /// Devices are files inside a directory.
    Dir(PathBuf),
}

impl StorageEnv {
    /// A fresh in-memory environment.
    pub fn mem() -> Self {
        StorageEnv::Mem(Arc::new(MemEnv::default()))
    }

    /// An in-memory environment whose devices charge `ns` nanoseconds per
    /// `sync` — a deterministic stand-in for disk flush latency.
    pub fn mem_with_sync_latency(ns: u64) -> Self {
        StorageEnv::Mem(Arc::new(MemEnv { sync_latency_ns: ns, ..Default::default() }))
    }

    /// The per-`sync` latency this environment's devices charge (zero for
    /// directory-backed environments — real fsync cost applies there).
    /// Replica provisioning uses it to give standby environments the same
    /// durability cost as the primary's.
    pub fn sync_latency_ns(&self) -> u64 {
        match self {
            StorageEnv::Mem(env) => env.sync_latency_ns,
            StorageEnv::Dir(_) => 0,
        }
    }

    /// A directory-backed environment (created if missing).
    pub fn dir(path: PathBuf) -> DbResult<Self> {
        std::fs::create_dir_all(&path)
            .map_err(|e| DbError::Io(format!("create_dir_all {path:?}: {e}")))?;
        Ok(StorageEnv::Dir(path))
    }

    /// Returns the named device, creating it empty when absent.
    pub fn device(&self, name: &str) -> DbResult<Arc<dyn Device>> {
        match self {
            StorageEnv::Mem(env) => {
                if let Some(dev) = env.devices.read().get(name) {
                    return Ok(Arc::clone(dev) as Arc<dyn Device>);
                }
                let mut w = env.devices.write();
                let dev = w.entry(name.to_string()).or_insert_with(|| {
                    Arc::new(MemDevice::with_sync_latency_ns(env.sync_latency_ns))
                });
                Ok(Arc::clone(dev) as Arc<dyn Device>)
            }
            StorageEnv::Dir(dir) => {
                let dev = FileDevice::open(dir.join(name))?;
                Ok(Arc::new(dev))
            }
        }
    }

    /// A moment-in-time deep copy of all devices — the backup primitive.
    ///
    /// The caller is responsible for quiescing writers (the database takes
    /// its commit latch around this).
    pub fn fork(&self) -> DbResult<StorageEnv> {
        match self {
            StorageEnv::Mem(env) => {
                let src = env.devices.read();
                let mut dst = HashMap::new();
                for (name, dev) in src.iter() {
                    dst.insert(
                        name.clone(),
                        Arc::new(MemDevice {
                            data: RwLock::new(dev.snapshot()),
                            sync_latency_ns: env.sync_latency_ns,
                            syncs: Default::default(),
                        }),
                    );
                }
                Ok(StorageEnv::Mem(Arc::new(MemEnv {
                    devices: RwLock::new(dst),
                    sync_latency_ns: env.sync_latency_ns,
                })))
            }
            StorageEnv::Dir(dir) => {
                let dst = dir.with_extension(format!(
                    "fork-{}",
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos())
                        .unwrap_or(0)
                ));
                std::fs::create_dir_all(&dst).map_err(|e| DbError::Io(format!("fork dir: {e}")))?;
                for entry in std::fs::read_dir(dir).map_err(|e| DbError::Io(e.to_string()))? {
                    let entry = entry.map_err(|e| DbError::Io(e.to_string()))?;
                    if entry.path().is_file() {
                        std::fs::copy(entry.path(), dst.join(entry.file_name()))
                            .map_err(|e| DbError::Io(format!("fork copy: {e}")))?;
                    }
                }
                Ok(StorageEnv::Dir(dst))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_positional_io() {
        let d = MemDevice::new();
        d.write_at(4, b"abc").unwrap();
        assert_eq!(d.len().unwrap(), 7);
        let mut buf = [9u8; 7];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, &[0, 0, 0, 0, b'a', b'b', b'c']);
        // Read past end.
        assert_eq!(d.read_at(100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn mem_device_set_len() {
        let d = MemDevice::new();
        d.write_at(0, b"abcdef").unwrap();
        d.set_len(2).unwrap();
        assert_eq!(d.len().unwrap(), 2);
        let mut buf = [0u8; 6];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 2);
    }

    #[test]
    fn env_returns_same_mem_device() {
        let env = StorageEnv::mem();
        let a = env.device("wal").unwrap();
        a.write_at(0, b"log").unwrap();
        let b = env.device("wal").unwrap();
        let mut buf = [0u8; 3];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"log");
    }

    #[test]
    fn fork_is_isolated() {
        let env = StorageEnv::mem();
        env.device("wal").unwrap().write_at(0, b"one").unwrap();
        let fork = env.fork().unwrap();
        env.device("wal").unwrap().write_at(0, b"two").unwrap();

        let mut buf = [0u8; 3];
        fork.device("wal").unwrap().read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"one", "fork must not see post-fork writes");
    }

    #[test]
    fn mem_device_sync_latency_is_charged_and_counted() {
        let d = MemDevice::with_sync_latency_ns(200_000);
        let t = std::time::Instant::now();
        d.sync().unwrap();
        d.sync().unwrap();
        assert!(t.elapsed() >= std::time::Duration::from_micros(400));
        assert_eq!(d.sync_count(), 2);
    }

    #[test]
    fn mem_env_sync_latency_survives_fork() {
        let env = StorageEnv::mem_with_sync_latency(150_000);
        env.device("wal").unwrap().write_at(0, b"x").unwrap();
        let fork = env.fork().unwrap();
        for e in [&env, &fork] {
            let d = e.device("wal").unwrap();
            let t = std::time::Instant::now();
            d.sync().unwrap();
            assert!(t.elapsed() >= std::time::Duration::from_micros(150));
        }
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dl-minidb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let env = StorageEnv::dir(dir.clone()).unwrap();
        let d = env.device("wal").unwrap();
        d.write_at(0, b"hello").unwrap();
        d.sync().unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        std::fs::remove_dir_all(&dir).ok();
    }
}
