//! Transaction lock manager: strict two-phase locking with hierarchical
//! (table → row) granularity, intent locks, blocking waits, and wait-for
//! graph deadlock detection.
//!
//! The host database serializes DATALINK DML exactly as DB2 would: a scan
//! takes a table `S` lock; row DML takes table `IX` plus row `X`; point
//! reads take table `IS` plus row `S`. Locks are held to transaction end
//! (strict 2PL), which is what makes the deferred-update commit protocol
//! serializable. When a requested lock would close a cycle in the wait-for
//! graph, the *requester* receives [`DbError::Deadlock`] and is expected to
//! abort — the simplest industrial-strength victim policy.

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::{Condvar, Mutex};

use crate::error::{DbError, DbResult};
use crate::value::Value;
use crate::wal::TxId;

/// Lock modes, hierarchical-granularity style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Intent shared (table level, before row S).
    IntentShared,
    /// Intent exclusive (table level, before row X).
    IntentExclusive,
    /// Shared.
    Shared,
    /// Exclusive.
    Exclusive,
}

impl LockMode {
    /// Standard compatibility matrix for IS/IX/S/X.
    fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IntentShared, IntentShared)
                | (IntentShared, IntentExclusive)
                | (IntentExclusive, IntentShared)
                | (IntentExclusive, IntentExclusive)
                | (IntentShared, Shared)
                | (Shared, IntentShared)
                | (Shared, Shared)
        )
    }

    /// True when holding `self` already implies `other`.
    fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (x, y) if x == y => true,
            (Exclusive, _) => true,
            (Shared, IntentShared) => true,
            (IntentExclusive, IntentShared) => true,
            _ => false,
        }
    }

    /// The weakest mode that satisfies both held and wanted.
    fn combine(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (Exclusive, _) | (_, Exclusive) => Exclusive,
            // S + IX = SIX in the textbook; we conservatively escalate to X
            // to keep the mode lattice four-valued. Harmless at our scale.
            (Shared, IntentExclusive) | (IntentExclusive, Shared) => Exclusive,
            (Shared, _) | (_, Shared) => Shared,
            (IntentExclusive, _) | (_, IntentExclusive) => IntentExclusive,
            _ => IntentShared,
        }
    }
}

/// A lockable resource.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockRes {
    Table(String),
    Row(String, Value),
}

impl LockRes {
    fn describe(&self) -> String {
        match self {
            LockRes::Table(t) => format!("table {t}"),
            LockRes::Row(t, k) => format!("row {t}[{k}]"),
        }
    }
}

#[derive(Debug, Default)]
struct ResState {
    /// Current holders and their (combined) modes.
    holders: HashMap<TxId, LockMode>,
    /// FIFO of waiting transactions, for diagnostics & fairness checks.
    waiters: VecDeque<TxId>,
}

impl ResState {
    fn grantable(&self, txid: TxId, mode: LockMode) -> bool {
        self.holders.iter().all(|(holder, held)| *holder == txid || held.compatible(mode))
    }
}

#[derive(Default)]
struct LmInner {
    resources: HashMap<LockRes, ResState>,
    /// waiter -> set of holders it waits on (wait-for graph).
    waits_for: HashMap<TxId, HashSet<TxId>>,
}

impl LmInner {
    /// Depth-first search: can `from` reach `target` through wait edges?
    fn reaches(&self, from: TxId, target: TxId, seen: &mut HashSet<TxId>) -> bool {
        if from == target {
            return true;
        }
        if !seen.insert(from) {
            return false;
        }
        match self.waits_for.get(&from) {
            Some(next) => next.iter().any(|n| self.reaches(*n, target, seen)),
            None => false,
        }
    }
}

/// The lock manager. One per database.
#[derive(Default)]
pub struct LockManager {
    inner: Mutex<LmInner>,
    released: Condvar,
}

impl LockManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires `mode` on `res` for `txid`, blocking until granted.
    ///
    /// Returns [`DbError::Deadlock`] if waiting would close a cycle in the
    /// wait-for graph; the caller must abort its transaction.
    pub fn lock(&self, txid: TxId, res: &LockRes, mode: LockMode) -> DbResult<()> {
        let mut guard = self.inner.lock();
        loop {
            let inner = &mut *guard;
            let state = inner.resources.entry(res.clone()).or_default();
            if let Some(held) = state.holders.get(&txid) {
                if held.covers(mode) {
                    return Ok(());
                }
            }
            if state.grantable(txid, mode) {
                let entry = state.holders.entry(txid).or_insert(mode);
                *entry = entry.combine(mode);
                inner.waits_for.remove(&txid);
                return Ok(());
            }

            // Blocked: collect who we would wait for, then check whether any
            // of them (transitively) waits for us — that would be a cycle.
            let holders: HashSet<TxId> =
                state.holders.keys().copied().filter(|h| *h != txid).collect();
            state.waiters.push_back(txid);
            let deadlock = holders.iter().any(|holder| {
                let mut seen = HashSet::new();
                inner.reaches(*holder, txid, &mut seen)
            });
            if deadlock {
                if let Some(state) = inner.resources.get_mut(res) {
                    if let Some(idx) = state.waiters.iter().position(|w| *w == txid) {
                        state.waiters.remove(idx);
                    }
                }
                inner.waits_for.remove(&txid);
                return Err(DbError::Deadlock);
            }
            inner.waits_for.insert(txid, holders);
            self.released.wait(&mut guard);
            let inner = &mut *guard;
            if let Some(state) = inner.resources.get_mut(res) {
                if let Some(idx) = state.waiters.iter().position(|w| *w == txid) {
                    state.waiters.remove(idx);
                }
            }
            inner.waits_for.remove(&txid);
        }
    }

    /// Non-blocking acquire; `DbError::Deadlock` is never returned, a
    /// conflicting hold yields `Err(WouldBlock)` expressed as `Ok(false)`.
    pub fn try_lock(&self, txid: TxId, res: &LockRes, mode: LockMode) -> bool {
        let mut inner = self.inner.lock();
        let state = inner.resources.entry(res.clone()).or_default();
        if let Some(held) = state.holders.get(&txid) {
            if held.covers(mode) {
                return true;
            }
        }
        if state.grantable(txid, mode) {
            let entry = state.holders.entry(txid).or_insert(mode);
            *entry = entry.combine(mode);
            true
        } else {
            false
        }
    }

    /// Releases every lock held by `txid` (strict 2PL end-of-transaction).
    pub fn release_all(&self, txid: TxId) {
        let mut inner = self.inner.lock();
        inner.resources.retain(|_, state| {
            state.holders.remove(&txid);
            !state.holders.is_empty() || !state.waiters.is_empty()
        });
        inner.waits_for.remove(&txid);
        for waiting in inner.waits_for.values_mut() {
            waiting.remove(&txid);
        }
        self.released.notify_all();
    }

    /// Human-readable list of held locks (diagnostics).
    pub fn dump(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut out: Vec<String> = inner
            .resources
            .iter()
            .flat_map(|(res, st)| {
                st.holders
                    .iter()
                    .map(move |(tx, mode)| format!("{}: tx{} {:?}", res.describe(), tx, mode))
            })
            .collect();
        out.sort();
        out
    }

    /// Number of resources with lock state (tests).
    pub fn resource_count(&self) -> usize {
        self.inner.lock().resources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn row(k: i64) -> LockRes {
        LockRes::Row("t".into(), Value::Int(k))
    }

    fn table() -> LockRes {
        LockRes::Table("t".into())
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(IntentShared.compatible(IntentExclusive));
        assert!(IntentExclusive.compatible(IntentExclusive));
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!IntentExclusive.compatible(Shared));
        assert!(!Exclusive.compatible(Exclusive));
        assert!(!Exclusive.compatible(IntentShared));
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let lm = LockManager::new();
        lm.lock(1, &row(1), LockMode::Shared).unwrap();
        lm.lock(2, &row(1), LockMode::Shared).unwrap();
        assert!(!lm.try_lock(3, &row(1), LockMode::Exclusive));
    }

    #[test]
    fn reacquire_is_idempotent() {
        let lm = LockManager::new();
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();
        lm.lock(1, &row(1), LockMode::Shared).unwrap(); // covered by X
    }

    #[test]
    fn upgrade_shared_to_exclusive_when_sole_holder() {
        let lm = LockManager::new();
        lm.lock(1, &row(1), LockMode::Shared).unwrap();
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();
        assert!(!lm.try_lock(2, &row(1), LockMode::Shared));
    }

    #[test]
    fn table_scan_blocks_row_writer() {
        let lm = LockManager::new();
        lm.lock(1, &table(), LockMode::Shared).unwrap(); // scanner
        assert!(!lm.try_lock(2, &table(), LockMode::IntentExclusive)); // writer
    }

    #[test]
    fn intent_locks_allow_concurrent_row_writers() {
        let lm = LockManager::new();
        lm.lock(1, &table(), LockMode::IntentExclusive).unwrap();
        lm.lock(2, &table(), LockMode::IntentExclusive).unwrap();
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();
        lm.lock(2, &row(2), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn release_all_unblocks_waiters() {
        let lm = Arc::new(LockManager::new());
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();

        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.lock(2, &row(1), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished());
        lm.release_all(1);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn two_party_deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();
        lm.lock(2, &row(2), LockMode::Exclusive).unwrap();

        // tx1 waits for row 2 (held by tx2)...
        let lm1 = Arc::clone(&lm);
        let h = thread::spawn(move || lm1.lock(1, &row(2), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));

        // ...and tx2 requesting row 1 would close the cycle.
        let res = lm.lock(2, &row(1), LockMode::Exclusive);
        assert_eq!(res, Err(DbError::Deadlock));

        // Victim aborts; tx1 proceeds.
        lm.release_all(2);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn three_party_deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();
        lm.lock(2, &row(2), LockMode::Exclusive).unwrap();
        lm.lock(3, &row(3), LockMode::Exclusive).unwrap();

        let lm1 = Arc::clone(&lm);
        let h1 = thread::spawn(move || lm1.lock(1, &row(2), LockMode::Exclusive));
        let lm2 = Arc::clone(&lm);
        let h2 = thread::spawn(move || lm2.lock(2, &row(3), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));

        assert_eq!(lm.lock(3, &row(1), LockMode::Exclusive), Err(DbError::Deadlock));
        lm.release_all(3);
        assert!(h2.join().unwrap().is_ok());
        lm.release_all(2);
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn release_cleans_resource_table() {
        let lm = LockManager::new();
        lm.lock(1, &row(1), LockMode::Exclusive).unwrap();
        lm.lock(1, &table(), LockMode::IntentExclusive).unwrap();
        assert_eq!(lm.resource_count(), 2);
        lm.release_all(1);
        assert_eq!(lm.resource_count(), 0);
    }

    #[test]
    fn dump_lists_holders() {
        let lm = LockManager::new();
        lm.lock(7, &table(), LockMode::Shared).unwrap();
        let dump = lm.dump();
        assert_eq!(dump.len(), 1);
        assert!(dump[0].contains("tx7"));
    }
}
