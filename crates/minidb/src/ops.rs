//! Logical row operations — the unit of logging and replay.
//!
//! The engine uses *logical* redo logging: each committed transaction's
//! effects are described as a list of `RowOp`s that can be re-applied to the
//! in-memory stores during recovery. DDL is logged with the same vocabulary
//! so a log replay can rebuild the catalog from scratch.

use crate::codec::{get_row, get_schema, get_value, put_row, put_schema, put_value, Dec, Enc};
use crate::error::{DbError, DbResult};
use crate::value::{Row, Schema, Value};

/// One logical operation against the catalog or a table.
#[derive(Debug, Clone, PartialEq)]
pub enum RowOp {
    CreateTable(Schema),
    DropTable(String),
    /// Secondary index on `column` of `table`.
    CreateIndex {
        table: String,
        column: String,
    },
    Insert {
        table: String,
        row: Row,
    },
    /// Full-row replacement identified by primary key.
    Update {
        table: String,
        key: Value,
        row: Row,
    },
    Delete {
        table: String,
        key: Value,
    },
}

impl RowOp {
    /// Table touched by this op.
    pub fn table(&self) -> &str {
        match self {
            RowOp::CreateTable(s) => &s.table,
            RowOp::DropTable(t) => t,
            RowOp::CreateIndex { table, .. } => table,
            RowOp::Insert { table, .. } => table,
            RowOp::Update { table, .. } => table,
            RowOp::Delete { table, .. } => table,
        }
    }

    pub fn encode(&self, enc: &mut Enc) {
        match self {
            RowOp::CreateTable(schema) => {
                enc.put_u8(0);
                put_schema(enc, schema);
            }
            RowOp::DropTable(table) => {
                enc.put_u8(1);
                enc.put_str(table);
            }
            RowOp::CreateIndex { table, column } => {
                enc.put_u8(2);
                enc.put_str(table);
                enc.put_str(column);
            }
            RowOp::Insert { table, row } => {
                enc.put_u8(3);
                enc.put_str(table);
                put_row(enc, row);
            }
            RowOp::Update { table, key, row } => {
                enc.put_u8(4);
                enc.put_str(table);
                put_value(enc, key);
                put_row(enc, row);
            }
            RowOp::Delete { table, key } => {
                enc.put_u8(5);
                enc.put_str(table);
                put_value(enc, key);
            }
        }
    }

    pub fn decode(dec: &mut Dec<'_>) -> DbResult<RowOp> {
        Ok(match dec.get_u8()? {
            0 => RowOp::CreateTable(get_schema(dec)?),
            1 => RowOp::DropTable(dec.get_str()?),
            2 => RowOp::CreateIndex { table: dec.get_str()?, column: dec.get_str()? },
            3 => RowOp::Insert { table: dec.get_str()?, row: get_row(dec)? },
            4 => RowOp::Update { table: dec.get_str()?, key: get_value(dec)?, row: get_row(dec)? },
            5 => RowOp::Delete { table: dec.get_str()?, key: get_value(dec)? },
            t => return Err(DbError::Corrupt(format!("unknown rowop tag {t}"))),
        })
    }

    pub fn encode_list(ops: &[RowOp], enc: &mut Enc) {
        enc.put_u32(ops.len() as u32);
        for op in ops {
            op.encode(enc);
        }
    }

    pub fn decode_list(dec: &mut Dec<'_>) -> DbResult<Vec<RowOp>> {
        let n = dec.get_u32()? as usize;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(RowOp::decode(dec)?);
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType};

    fn ops_fixture() -> Vec<RowOp> {
        let schema = Schema::new(
            "t",
            vec![Column::new("k", ColumnType::Int), Column::nullable("v", ColumnType::Text)],
            "k",
        )
        .unwrap();
        vec![
            RowOp::CreateTable(schema),
            RowOp::CreateIndex { table: "t".into(), column: "v".into() },
            RowOp::Insert { table: "t".into(), row: vec![Value::Int(1), Value::Text("a".into())] },
            RowOp::Update {
                table: "t".into(),
                key: Value::Int(1),
                row: vec![Value::Int(1), Value::Text("b".into())],
            },
            RowOp::Delete { table: "t".into(), key: Value::Int(1) },
            RowOp::DropTable("t".into()),
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        let ops = ops_fixture();
        let mut enc = Enc::new();
        RowOp::encode_list(&ops, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(RowOp::decode_list(&mut dec).unwrap(), ops);
        assert!(dec.is_done());
    }

    #[test]
    fn table_accessor() {
        for op in ops_fixture() {
            assert_eq!(op.table(), "t");
        }
    }

    #[test]
    fn decode_garbage_is_error() {
        let mut dec = Dec::new(&[42]);
        assert!(RowOp::decode(&mut dec).is_err());
    }
}
