//! Database error type.

use std::fmt;

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Named table does not exist.
    NoSuchTable(String),
    /// Named column does not exist in the table.
    NoSuchColumn(String),
    /// Primary key already present on insert.
    DuplicateKey(String),
    /// Row not found for update/delete/get-by-key.
    RowNotFound,
    /// Row shape or value type does not match the schema.
    SchemaMismatch(String),
    /// Table already exists on create.
    TableExists(String),
    /// Granting a lock would deadlock; the requesting transaction should
    /// abort and retry.
    Deadlock,
    /// Transaction handle used after commit/abort, or unknown txid.
    InvalidTxnState(String),
    /// A DML observer (e.g. the DataLinks engine) vetoed the statement.
    Vetoed(String),
    /// A 2PC participant failed to prepare; the transaction was aborted.
    PrepareFailed(String),
    /// The write-ahead log or snapshot is corrupt beyond the recoverable
    /// prefix.
    Corrupt(String),
    /// The requested log range lies below the checkpoint low-water mark:
    /// those frames were truncated away and are only reachable through a
    /// checkpoint image (a replication shipper falls back to installing
    /// the latest checkpoint, then tails from `base`).
    TruncatedLog {
        /// The current truncation low-water mark of the log.
        base: u64,
    },
    /// Underlying storage failure.
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            DbError::RowNotFound => write!(f, "row not found"),
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::Deadlock => write!(f, "deadlock detected; transaction must abort"),
            DbError::InvalidTxnState(m) => write!(f, "invalid transaction state: {m}"),
            DbError::Vetoed(m) => write!(f, "statement vetoed: {m}"),
            DbError::PrepareFailed(m) => write!(f, "participant failed to prepare: {m}"),
            DbError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            DbError::TruncatedLog { base } => {
                write!(f, "log truncated below checkpoint low-water mark {base}")
            }
            DbError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(DbError::NoSuchTable("t".into()).to_string(), "no such table: t");
        assert_eq!(DbError::Deadlock.to_string(), "deadlock detected; transaction must abort");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk on fire");
        let db: DbError = io.into();
        assert!(matches!(db, DbError::Io(ref m) if m.contains("disk on fire")));
    }
}
