//! Write-ahead log.
//!
//! Redo-only logical logging. Each record is framed as
//! `[len: u32][crc32: u32][payload]`; the LSN of a record is the byte offset
//! of its frame, and the LSN returned by a commit is also the paper's
//! *database state identifier* — §4.4 associates every archived file version
//! with "a database state identifier (for example tail LSN)".
//!
//! Record vocabulary:
//!
//! * `Ddl` — catalog change, applied immediately (DDL is auto-committed).
//! * `Commit` — a coordinator-side commit: the transaction's complete redo
//!   op list plus the names of any enlisted 2PC participants. Writing this
//!   record *is* the commit decision.
//! * `Prepare` / `Decide` — participant-side 2PC: `Prepare` persists the op
//!   list without applying it; `Decide` settles it. A prepared transaction
//!   with no decision on record is *in doubt* after recovery and must be
//!   resolved by the coordinator (the DataLinks recovery orchestrator does
//!   this for DLFM repositories).
//! * `Checkpoint` — marks that a snapshot with the given generation covers
//!   the log strictly before this record.
//!
//! Replay stops at the first corrupt or torn frame and truncates the tail,
//! the standard crash-consistency posture for a log.
//!
//! # Group commit
//!
//! `sync` is the expensive step of every commit, and with one log per
//! database every committer pays it. The WAL therefore runs a
//! *leader/follower group-commit pipeline* (configured by [`WalOptions`]):
//! committers encode their frame into a shared in-memory batch under a
//! short critical section; the first waiter whose frame is not yet durable
//! elects itself leader, writes the whole batch with one `write_at`,
//! issues one `sync`, and wakes the followers parked on a condvar. N
//! concurrent commits thus collapse into ~1 device sync, and no append
//! returns before its own frame is durable. With a single committer the
//! batch always holds exactly one frame, so the log bytes are identical to
//! the per-commit-sync mode — recovery cannot tell the modes apart.
//!
//! # Truncation (bounded logs)
//!
//! LSNs are *logical* byte offsets that never restart, but the log device
//! only has to hold the suffix `[base, end)`: everything below `base` is
//! covered by a durable snapshot ([`crate::snapshot`], a complete recovery
//! image since format v2). [`Wal::truncate_below`] advances `base` — the
//! checkpoint low-water mark — by copying the surviving suffix into the
//! *other* of two slot devices (`wal`/`wal.1`) and then flipping a tiny
//! CRC-framed control record (two ping-pong slots inside `wal.ctl`) that
//! names the active slot and its base. Every step lands in the inactive
//! slot first, so a crash at any point leaves either the old (untruncated)
//! or the new (truncated) state fully intact — never a half-shifted log.
//! Readers see the flip atomically through a shared device view.
//!
//! # Log shipping
//!
//! Replication tails the log through a [`WalReader`] ([`Wal::reader`]):
//! after every successful flush the group-commit leader (or the per-commit
//! path) publishes the new durable watermark on a shared signal, and a
//! reader can wait for growth and then read the raw frames below the
//! watermark straight from the device. The durable watermark always lands
//! on a frame boundary, so a shipped range is a whole number of frames —
//! what [`crate::replica::StandbyDb`] applies byte-identically. A reader
//! asking for frames below the truncation base gets
//! [`DbError::TruncatedLog`] — the signal for a shipper to fall back to
//! *checkpoint shipping* (install the latest snapshot, then tail the
//! suffix).

use std::sync::Arc;
use std::time::{Duration, Instant};

use dl_obs::Histogram;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::codec::{crc32, Dec, Enc};
use crate::device::{Device, StorageEnv};
use crate::error::{DbError, DbResult};
use crate::ops::RowOp;

/// Log sequence number: logical byte offset of a record frame in the log.
pub type Lsn = u64;

/// Transaction identifier.
pub type TxId = u64;

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Auto-committed catalog change.
    Ddl(RowOp),
    /// Coordinator commit decision with full redo information.
    Commit { txid: TxId, participants: Vec<String>, ops: Vec<RowOp> },
    /// Participant prepared state (2PC phase one).
    Prepare { txid: TxId, ops: Vec<RowOp> },
    /// Participant decision (2PC phase two).
    Decide { txid: TxId, commit: bool },
    /// Snapshot `generation` covers the log strictly before this record.
    Checkpoint { generation: u64 },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            WalRecord::Ddl(op) => {
                enc.put_u8(0);
                op.encode(&mut enc);
            }
            WalRecord::Commit { txid, participants, ops } => {
                enc.put_u8(1);
                enc.put_u64(*txid);
                enc.put_u32(participants.len() as u32);
                for p in participants {
                    enc.put_str(p);
                }
                RowOp::encode_list(ops, &mut enc);
            }
            WalRecord::Prepare { txid, ops } => {
                enc.put_u8(2);
                enc.put_u64(*txid);
                RowOp::encode_list(ops, &mut enc);
            }
            WalRecord::Decide { txid, commit } => {
                enc.put_u8(3);
                enc.put_u64(*txid);
                enc.put_bool(*commit);
            }
            WalRecord::Checkpoint { generation } => {
                enc.put_u8(4);
                enc.put_u64(*generation);
            }
        }
        enc.into_bytes()
    }

    fn decode(payload: &[u8]) -> DbResult<WalRecord> {
        let mut dec = Dec::new(payload);
        let rec = match dec.get_u8()? {
            0 => WalRecord::Ddl(RowOp::decode(&mut dec)?),
            1 => {
                let txid = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(dec.get_str()?);
                }
                let ops = RowOp::decode_list(&mut dec)?;
                WalRecord::Commit { txid, participants, ops }
            }
            2 => WalRecord::Prepare { txid: dec.get_u64()?, ops: RowOp::decode_list(&mut dec)? },
            3 => WalRecord::Decide { txid: dec.get_u64()?, commit: dec.get_bool()? },
            4 => WalRecord::Checkpoint { generation: dec.get_u64()? },
            t => return Err(DbError::Corrupt(format!("unknown wal record tag {t}"))),
        };
        if !dec.is_done() {
            return Err(DbError::Corrupt("trailing bytes in wal record".into()));
        }
        Ok(rec)
    }
}

const FRAME_HEADER: usize = 8; // len + crc

// --- log control record (truncation metadata) ------------------------------

const CTL_MAGIC: u32 = 0x444C_5743; // "DLWC"
const CTL_SLOT_SIZE: u64 = 32;
const CTL_RECORD_SIZE: usize = 28; // magic + seq + base + slot + crc

/// Device name of wal slot `slot` (two slots ping-pong across truncations).
pub(crate) fn log_slot_name(slot: u32) -> &'static str {
    if slot == 0 {
        "wal"
    } else {
        "wal.1"
    }
}

/// Reads the newest valid log control record: `(seq, base, active slot)`.
/// A missing or fully-torn control device means "never truncated":
/// `(0, 0, slot 0)` — exactly the pre-truncation layout.
pub(crate) fn read_log_ctl(env: &StorageEnv) -> DbResult<(u64, Lsn, u32)> {
    let dev = env.device("wal.ctl")?;
    let mut bytes = [0u8; (CTL_SLOT_SIZE * 2) as usize];
    let got = dev.read_at(0, &mut bytes)?;
    let mut best: Option<(u64, Lsn, u32)> = None;
    for i in 0..2usize {
        let off = i * CTL_SLOT_SIZE as usize;
        if off + CTL_RECORD_SIZE > got {
            continue;
        }
        let rec = &bytes[off..off + CTL_RECORD_SIZE];
        let mut dec = Dec::new(rec);
        let Ok(magic) = dec.get_u32() else { continue };
        let Ok(seq) = dec.get_u64() else { continue };
        let Ok(base) = dec.get_u64() else { continue };
        let Ok(slot) = dec.get_u32() else { continue };
        let Ok(crc) = dec.get_u32() else { continue };
        if magic != CTL_MAGIC || slot > 1 || crc != crc32(&rec[..CTL_RECORD_SIZE - 4]) {
            continue;
        }
        if best.map(|(s, _, _)| seq > s).unwrap_or(true) {
            best = Some((seq, base, slot));
        }
    }
    Ok(best.unwrap_or((0, 0, 0)))
}

/// The shared crash-safe truncation commit: writes `suffix` (the log bytes
/// whose first byte is logical offset `new_base`) into the *inactive* slot
/// device, syncs it, then flips the control record. The flip is the commit
/// point — a crash before it leaves the old slot authoritative and
/// untouched, a crash after it the new one, never a half-shifted log.
/// [`Wal::truncate_below`] and the standby's lockstep truncation /
/// checkpoint install all route through here. Returns the new
/// `(device, slot, ctl seq)`.
pub(crate) fn swap_log_slot(
    env: &StorageEnv,
    cur_slot: u32,
    cur_ctl_seq: u64,
    new_base: Lsn,
    suffix: &[u8],
) -> DbResult<(Arc<dyn Device>, u32, u64)> {
    let next_slot = 1 - cur_slot;
    let dst = env.device(log_slot_name(next_slot))?;
    dst.set_len(0)?;
    if !suffix.is_empty() {
        dst.write_at(0, suffix)?;
    }
    dst.sync()?;
    let seq = cur_ctl_seq + 1;
    write_log_ctl(env, seq, new_base, next_slot)?;
    Ok((dst, next_slot, seq))
}

/// Writes log control record `seq` (into the ctl slot `seq % 2`, so a torn
/// write can only damage the slot *not* holding the previous record) and
/// syncs it. After this returns, `(base, slot)` is the durable truth.
pub(crate) fn write_log_ctl(env: &StorageEnv, seq: u64, base: Lsn, slot: u32) -> DbResult<()> {
    let dev = env.device("wal.ctl")?;
    let mut enc = Enc::with_capacity(CTL_RECORD_SIZE);
    enc.put_u32(CTL_MAGIC);
    enc.put_u64(seq);
    enc.put_u64(base);
    enc.put_u32(slot);
    let mut bytes = enc.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    dev.write_at((seq % 2) * CTL_SLOT_SIZE, &bytes)?;
    dev.sync()
}

/// Durability policy of the log (see the module docs on group commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Batch concurrent appends and sync once per batch (leader/follower).
    /// When off, every append performs its own `write_at` + `sync` under
    /// the log mutex — the classic per-commit-sync baseline.
    pub group_commit: bool,
    /// Maximum frames per batch; appenders beyond it wait for the current
    /// batch to flush (back-pressure, bounds batch memory).
    pub max_batch: usize,
    /// Optional window, in microseconds, the leader waits before flushing
    /// so more followers can join the batch. Zero (the default) flushes
    /// immediately; latency is only traded for throughput when asked.
    pub commit_delay_us: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { group_commit: true, max_batch: 64, commit_delay_us: 0 }
    }
}

impl WalOptions {
    /// The per-commit-sync baseline (pre-group-commit behaviour).
    pub fn per_commit_sync() -> Self {
        WalOptions { group_commit: false, ..Default::default() }
    }

    /// Group-commit options tuned for an expected number of concurrent
    /// committers. The guidance the bare default (`commit_delay_us: 0`)
    /// lacks: with one or two committers a gather window only adds latency
    /// (the batch rarely holds a second frame), so the delay stays zero;
    /// from three committers up, a short window — ~20 µs per expected
    /// committer, capped at 200 µs so worst-case commit latency stays
    /// bounded — lets followers join the leader's batch and trades that
    /// latency for sync collapse. `max_batch` grows with the committer
    /// count so back-pressure never caps a full gather window.
    pub fn tuned_for(threads: usize) -> Self {
        let commit_delay_us = if threads <= 2 { 0 } else { ((threads as u64) * 20).min(200) };
        WalOptions { group_commit: true, max_batch: threads.max(64), commit_delay_us }
    }
}

/// Mutable log state, guarded by one short-critical-section mutex.
struct WalState {
    /// Next unassigned logical offset (`durable` + in-flight + batched).
    end: Lsn,
    /// Everything below this offset is written *and* synced.
    durable: Lsn,
    /// Encoded frames accepted but not yet handed to a leader; occupies
    /// `[batch_base, end)` of the log's address space.
    batch: Vec<u8>,
    batch_base: Lsn,
    batch_frames: usize,
    /// A leader is currently writing/syncing `[durable, batch_base)`.
    leader_active: bool,
    /// Recycled batch buffer (micro-fix: no fresh frame `Vec` per append).
    spare: Vec<u8>,
    /// Durable watermark captured at each failed flush, in order. A failed
    /// flush drops *every* non-durable frame (the failed batch and anything
    /// batched while it was in flight) and rewinds the log to the durable
    /// watermark; the log itself stays usable, so a transient device fault
    /// (ENOSPC) costs exactly the commits caught in it. A waiter that
    /// enqueued when this had length `e` decides its fate exactly: if a
    /// failure `failures[e]` exists, its frame survived iff it was durable
    /// before that first post-enqueue failure (`my_lsn <= failures[e]`) —
    /// an LSN-only check would misread reused log address space. Grows 8
    /// bytes per failed flush; device faults are rare enough not to bound
    /// it.
    failures: Vec<Lsn>,
    /// Message of the most recent failed flush (error-text context for
    /// waiters whose frame the failure dropped).
    last_failure: Option<String>,
    /// Active wal slot (flips on truncation).
    slot: u32,
    /// Sequence of the newest durable control record.
    ctl_seq: u64,
}

/// Shared durable-watermark signal between the log and its readers: the
/// flush paths publish the new watermark here after every successful sync,
/// waking shippers parked in [`WalReader::wait_past`].
struct ShipSignal {
    durable: Mutex<Lsn>,
    grew: Condvar,
}

impl ShipSignal {
    fn publish(&self, durable: Lsn) {
        let mut cur = self.durable.lock();
        if durable > *cur {
            *cur = durable;
            self.grew.notify_all();
        }
    }
}

/// The truncation-aware device view shared by the log and its readers:
/// which slot device currently holds the bytes and the LSN of its first
/// byte. Truncation swaps both atomically under the write lock.
struct LogView {
    dev: Arc<dyn Device>,
    base: Lsn,
}

/// A contiguous run of whole frames read from the log: the ship unit of the
/// replication pipeline. `bytes` are the raw device bytes of
/// `[base, end)` — a standby appends them verbatim so its log stays
/// byte-identical to the primary's — and `records` are the same frames
/// decoded for table apply.
#[derive(Debug, Clone)]
pub struct ShippedFrames {
    /// Logical offset of the first frame.
    pub base: Lsn,
    /// One past the last byte (the standby's next expected base).
    pub end: Lsn,
    /// Raw frame bytes of `[base, end)`.
    pub bytes: Vec<u8>,
    /// Decoded records with their LSNs.
    pub records: Vec<(Lsn, WalRecord)>,
}

impl ShippedFrames {
    fn empty(at: Lsn) -> ShippedFrames {
        ShippedFrames { base: at, end: at, bytes: Vec::new(), records: Vec::new() }
    }

    /// True when the range carries no frames.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Tail-reading handle over a live log (replication shipping). Obtained
/// from [`Wal::reader`] / `Database::wal_reader`; reads only bytes below
/// the durable watermark, so a shipped frame is always synced on the
/// primary before any standby sees it (no standby can run ahead of the
/// primary's own durability).
#[derive(Clone)]
pub struct WalReader {
    view: Arc<RwLock<LogView>>,
    signal: Arc<ShipSignal>,
}

impl WalReader {
    /// The current durable watermark.
    pub fn durable_lsn(&self) -> Lsn {
        *self.signal.durable.lock()
    }

    /// The truncation low-water mark: frames below it are gone from the
    /// log and only reachable through a checkpoint image.
    pub fn base_lsn(&self) -> Lsn {
        self.view.read().base
    }

    /// Blocks until the durable watermark exceeds `seen` or `timeout`
    /// elapses; returns the current watermark either way.
    pub fn wait_past(&self, seen: Lsn, timeout: Duration) -> Lsn {
        let mut durable = self.signal.durable.lock();
        if *durable <= seen {
            let _ = self.signal.grew.wait_for(&mut durable, timeout);
        }
        *durable
    }

    /// Reads all whole frames in `[from, durable)`. The watermark only ever
    /// lands on frame boundaries, so the parsed prefix covers the full
    /// range; a shorter parse means the device bytes are corrupt. Asking
    /// for frames below the truncation base returns
    /// [`DbError::TruncatedLog`] — the shipper's cue to install a
    /// checkpoint instead.
    pub fn read_from(&self, from: Lsn) -> DbResult<ShippedFrames> {
        // Hold the view read lock across the device read: truncation takes
        // it exclusively, so the slot device cannot be swapped from under
        // a half-finished read.
        let view = self.view.read();
        if from < view.base {
            return Err(DbError::TruncatedLog { base: view.base });
        }
        let durable = self.durable_lsn();
        if from >= durable {
            return Ok(ShippedFrames::empty(from));
        }
        let len = (durable - from) as usize;
        let mut bytes = vec![0u8; len];
        let got = view.dev.read_at(from - view.base, &mut bytes)?;
        if got < len {
            return Err(DbError::Corrupt(format!(
                "wal reader: short read at {from} ({got} of {len} durable bytes)"
            )));
        }
        let parsed = parse_frames(&bytes, from);
        let end = parsed.last().map(|(lsn, _, flen)| lsn + flen).unwrap_or(from);
        if end != durable {
            return Err(DbError::Corrupt(format!(
                "wal reader: durable watermark {durable} not on a frame boundary (parsed to {end})"
            )));
        }
        Ok(ShippedFrames {
            base: from,
            end,
            bytes,
            records: parsed.into_iter().map(|(lsn, rec, _)| (lsn, rec)).collect(),
        })
    }
}

/// Append handle over the log device. Appends are serialized internally;
/// under group commit concurrent appends share one `write_at` + `sync`.
pub struct Wal {
    /// Storage environment, needed to reach the other wal slot and the
    /// control device; `None` for bare-device logs (no truncation).
    env: Option<StorageEnv>,
    view: Arc<RwLock<LogView>>,
    opts: WalOptions,
    state: Mutex<WalState>,
    flushed: Condvar,
    ship: Arc<ShipSignal>,
    telemetry: WalTelemetry,
}

/// Telemetry handles for one log: shared `Arc`s so the assembled system can
/// adopt them into a metric registry while the log keeps recording.
#[derive(Clone)]
pub struct WalTelemetry {
    /// Latency of each durable flush (the `write_at` + `sync` pair), in
    /// nanoseconds — one observation per device sync, both commit modes.
    pub fsync_ns: Arc<Histogram>,
    /// Frames made durable per flush: the group-commit batch-size
    /// distribution (always 1 in per-commit-sync mode).
    pub batch_frames: Arc<Histogram>,
}

impl WalTelemetry {
    fn new() -> WalTelemetry {
        WalTelemetry {
            fsync_ns: Arc::new(Histogram::new()),
            batch_frames: Arc::new(Histogram::new()),
        }
    }
}

impl Wal {
    /// Opens the log over a bare device with default options, scanning to
    /// find the end of the valid prefix and truncating any torn tail.
    /// Bare-device logs always have base 0 and cannot be truncated; a
    /// database opens through [`Wal::open_env`] instead.
    pub fn open(dev: Arc<dyn Device>) -> DbResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        Self::open_with(dev, WalOptions::default())
    }

    /// Opens a bare-device log with explicit durability options.
    pub fn open_with(
        dev: Arc<dyn Device>,
        opts: WalOptions,
    ) -> DbResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        Self::open_parts(None, dev, 0, 0, 0, opts)
    }

    /// Opens the log inside a storage environment, honouring the truncation
    /// control record: the active slot device and the logical base come
    /// from `wal.ctl` (absent means "never truncated": slot `wal`, base 0).
    pub fn open_env(env: &StorageEnv, opts: WalOptions) -> DbResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        let (ctl_seq, base, slot) = read_log_ctl(env)?;
        let dev = env.device(log_slot_name(slot))?;
        Self::open_parts(Some(env.clone()), dev, base, slot, ctl_seq, opts)
    }

    fn open_parts(
        env: Option<StorageEnv>,
        dev: Arc<dyn Device>,
        base: Lsn,
        slot: u32,
        ctl_seq: u64,
        opts: WalOptions,
    ) -> DbResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        let records = read_all(&dev, base)?;
        let mut valid_end: Lsn = base;
        let mut out = Vec::with_capacity(records.len());
        for (lsn, rec, frame_len) in records {
            valid_end = lsn + frame_len;
            out.push((lsn, rec));
        }
        dev.set_len(valid_end - base)?;
        Ok((
            Wal {
                env,
                view: Arc::new(RwLock::new(LogView { dev, base })),
                opts,
                state: Mutex::new(WalState {
                    end: valid_end,
                    durable: valid_end,
                    batch: Vec::new(),
                    batch_base: valid_end,
                    batch_frames: 0,
                    leader_active: false,
                    spare: Vec::new(),
                    failures: Vec::new(),
                    last_failure: None,
                    slot,
                    ctl_seq,
                }),
                flushed: Condvar::new(),
                ship: Arc::new(ShipSignal { durable: Mutex::new(valid_end), grew: Condvar::new() }),
                telemetry: WalTelemetry::new(),
            },
            out,
        ))
    }

    /// Telemetry handles for this log (see [`WalTelemetry`]).
    pub fn telemetry(&self) -> &WalTelemetry {
        &self.telemetry
    }

    /// A tail-reading handle for replication shipping (see [`WalReader`]).
    pub fn reader(&self) -> WalReader {
        WalReader { view: Arc::clone(&self.view), signal: Arc::clone(&self.ship) }
    }

    /// Appends a record and returns only once it is durably synced. The
    /// returned LSN is the log tail *after* the record — the paper's "tail
    /// LSN" database state identifier: a state covers every record strictly
    /// below it.
    pub fn append(&self, rec: &WalRecord) -> DbResult<Lsn> {
        let payload = rec.encode();
        if self.opts.group_commit {
            self.append_grouped(&payload)
        } else {
            self.append_per_commit(&payload)
        }
    }

    /// Baseline path: one `write_at` + `sync` per record, serialized under
    /// the log mutex (held across the I/O, exactly the pre-batching
    /// behaviour). Reuses the spare buffer instead of allocating a frame.
    fn append_per_commit(&self, payload: &[u8]) -> DbResult<Lsn> {
        let mut state = self.state.lock();
        let mut frame = std::mem::take(&mut state.spare);
        frame.clear();
        encode_frame(&mut frame, payload);
        let start = state.end;
        let (dev, base) = {
            let view = self.view.read();
            (Arc::clone(&view.dev), view.base)
        };
        let flush_start = Instant::now();
        let result = dev.write_at(start - base, &frame).and_then(|()| dev.sync());
        state.spare = frame;
        result?;
        self.telemetry.fsync_ns.record_duration(flush_start.elapsed());
        self.telemetry.batch_frames.record(1);
        state.end = start + (FRAME_HEADER + payload.len()) as u64;
        state.durable = state.end;
        state.batch_base = state.end;
        self.ship.publish(state.end);
        Ok(state.end)
    }

    /// Group-commit path: enqueue the frame, then either follow (park on
    /// the condvar until a leader makes it durable) or lead (flush the
    /// whole batch with one write + one sync).
    fn append_grouped(&self, payload: &[u8]) -> DbResult<Lsn> {
        let mut state = self.state.lock();
        // Back-pressure: a full batch must flush before growing further.
        while state.batch_frames >= self.opts.max_batch.max(1) {
            self.flushed.wait(&mut state);
        }
        // The failure epoch our frame enqueues under: a failed flush drops
        // every non-durable frame and rewinds the log, so after a failure
        // our LSN may be reassigned to a *different* frame. The failure
        // log decides our fate exactly (see `WalState::failures`).
        let epoch = state.failures.len();
        encode_frame(&mut state.batch, payload);
        state.batch_frames += 1;
        state.end += (FRAME_HEADER + payload.len()) as u64;
        let my_lsn = state.end;

        loop {
            if let Some(&durable_at_failure) = state.failures.get(epoch) {
                // A flush failed after we enqueued. It dropped every frame
                // not yet durable, so ours survived iff it was durable
                // before that first post-enqueue failure. (`state.durable`
                // alone cannot tell: our log address space may since have
                // been reassigned to a later frame and flushed.)
                if my_lsn <= durable_at_failure {
                    return Ok(my_lsn);
                }
                let e = state.last_failure.clone().unwrap_or_default();
                return Err(DbError::Io(format!("wal flush failed; commit dropped: {e}")));
            }
            if state.durable >= my_lsn {
                return Ok(my_lsn);
            }
            if state.leader_active {
                // Follow: a leader is flushing; it (or a successor) will
                // cover our frame and wake us.
                self.flushed.wait(&mut state);
            } else {
                self.lead_flush(&mut state)?;
            }
        }
    }

    /// Leader duty: take the pending batch, write it with one `write_at`,
    /// sync once, advance `durable`, wake everyone. The state lock is
    /// dropped around the device I/O (and the optional commit-delay nap) so
    /// followers keep appending into the next batch meanwhile. Truncation
    /// cannot swap the slot device mid-flush: it waits for
    /// `leader_active` to clear.
    fn lead_flush(&self, state: &mut parking_lot::MutexGuard<'_, WalState>) -> DbResult<()> {
        state.leader_active = true;
        if self.opts.commit_delay_us > 0 {
            // Gather window: let more committers join this batch.
            parking_lot::MutexGuard::unlocked(state, || {
                std::thread::sleep(std::time::Duration::from_micros(self.opts.commit_delay_us));
            });
        }
        let next = std::mem::take(&mut state.spare);
        let buf = std::mem::replace(&mut state.batch, next);
        let lsn_base = state.batch_base;
        let flush_to = state.end;
        let frames = state.batch_frames as u64;
        state.batch_base = flush_to;
        state.batch_frames = 0;
        let (dev, base) = {
            let view = self.view.read();
            (Arc::clone(&view.dev), view.base)
        };

        let flush_start = Instant::now();
        let result = parking_lot::MutexGuard::unlocked(state, || {
            dev.write_at(lsn_base - base, &buf).and_then(|()| dev.sync())
        });

        match result {
            Ok(()) => {
                self.telemetry.fsync_ns.record_duration(flush_start.elapsed());
                self.telemetry.batch_frames.record(frames);
                state.durable = flush_to;
                let mut buf = buf;
                buf.clear();
                state.spare = buf;
                state.leader_active = false;
                self.flushed.notify_all();
                self.ship.publish(flush_to);
                Ok(())
            }
            Err(e) => {
                // Transient failure: drop every non-durable frame — the
                // failed batch *and* anything batched while it was in
                // flight (later frames' device offsets assume the failed
                // range was written) — and rewind to the durable
                // watermark. Waiters read the failure log and report
                // their commit as dropped; the log stays usable.
                let durable = state.durable;
                state.failures.push(durable);
                state.last_failure = Some(e.to_string());
                state.end = state.durable;
                state.batch_base = state.durable;
                state.batch.clear();
                state.batch_frames = 0;
                let mut buf = buf;
                buf.clear();
                state.spare = buf;
                state.leader_active = false;
                self.flushed.notify_all();
                Err(e)
            }
        }
    }

    /// The log tail: one past the last accepted record. Records at or above
    /// [`Wal::durable_lsn`] may still be in flight, but every `append`
    /// returns only after its own frame is durable, so an LSN handed to a
    /// caller always refers to synced bytes.
    pub fn tail_lsn(&self) -> Lsn {
        self.state.lock().end
    }

    /// One past the last *synced* byte.
    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().durable
    }

    /// The truncation low-water mark (0 until the first truncation).
    pub fn base_lsn(&self) -> Lsn {
        self.view.read().base
    }

    /// Bytes the log currently retains (`tail − base`): what a checkpoint
    /// policy compares against its budget.
    pub fn retained_bytes(&self) -> u64 {
        let end = self.state.lock().end;
        end.saturating_sub(self.view.read().base)
    }

    /// Truncates the log below `new_base` (clamped to the durable
    /// watermark): everything `< new_base` must already be covered by a
    /// durable snapshot. Quiesces the group-commit pipeline, copies the
    /// surviving suffix into the inactive slot device, then flips the
    /// control record — the crash-safe slot dance described in the module
    /// docs. Returns the new base (unchanged if `new_base` was not an
    /// advance). Bare-device logs ([`Wal::open`]) cannot truncate.
    pub fn truncate_below(&self, new_base: Lsn) -> DbResult<Lsn> {
        let Some(env) = &self.env else {
            return Err(DbError::Io("wal has no storage environment; cannot truncate".into()));
        };
        let mut state = self.state.lock();
        // Quiesce: no leader mid-flush, no batched frames waiting. Waiting
        // on the flush condvar releases the state lock, so in-flight
        // leaders finish and wake us.
        while state.leader_active || state.batch_frames > 0 {
            self.flushed.wait(&mut state);
        }
        let mut view = self.view.write();
        let new_base = new_base.min(state.durable);
        if new_base <= view.base {
            return Ok(view.base);
        }
        // Copy the surviving suffix [new_base, end) into the other slot.
        let len = (state.end - new_base) as usize;
        let mut suffix = vec![0u8; len];
        let got = view.dev.read_at(new_base - view.base, &mut suffix)?;
        if got < len {
            return Err(DbError::Corrupt(format!(
                "wal truncate: short read of suffix at {new_base} ({got} of {len} bytes)"
            )));
        }
        let (dst, slot, seq) = swap_log_slot(env, state.slot, state.ctl_seq, new_base, &suffix)?;
        state.ctl_seq = seq;
        state.slot = slot;
        view.dev = dst;
        view.base = new_base;
        Ok(new_base)
    }
}

/// Appends `[len][crc][payload]` to `buf`.
fn encode_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.reserve(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Parses the valid frame prefix of `bytes`, whose first byte sits at log
/// offset `base`. Stops quietly at the first torn/corrupt frame — callers
/// that require the whole range (log shipping) check the parsed end.
pub(crate) fn parse_frames(bytes: &[u8], base: Lsn) -> Vec<(Lsn, WalRecord, u64)> {
    let mut out = Vec::new();
    let mut pos: usize = 0;
    while pos + FRAME_HEADER <= bytes.len() {
        let header = &bytes[pos..pos + FRAME_HEADER];
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let frame_end = pos + FRAME_HEADER + len;
        if frame_end > bytes.len() {
            break; // torn write
        }
        let payload = &bytes[pos + FRAME_HEADER..frame_end];
        if crc32(payload) != crc {
            break; // corrupt tail
        }
        match WalRecord::decode(payload) {
            Ok(rec) => out.push((base + pos as u64, rec, (FRAME_HEADER + len) as u64)),
            Err(_) => break,
        }
        pos = frame_end;
    }
    out
}

/// Reads every valid record with its LSN and frame length; the device's
/// first byte sits at logical offset `base`. Stops quietly at the first
/// torn/corrupt frame.
pub(crate) fn read_all(dev: &Arc<dyn Device>, base: Lsn) -> DbResult<Vec<(Lsn, WalRecord, u64)>> {
    let total = dev.len()?;
    let mut bytes = vec![0u8; total as usize];
    let got = dev.read_at(0, &mut bytes)?;
    bytes.truncate(got);
    Ok(parse_frames(&bytes, base))
}

/// Reads records up to (but excluding) the state `stop_at`: a state
/// identifier is a log tail, so it covers records whose frames lie strictly
/// below it. The device's first byte sits at logical offset `base`.
pub fn read_until(
    dev: &Arc<dyn Device>,
    base: Lsn,
    stop_at: Option<Lsn>,
) -> DbResult<Vec<(Lsn, WalRecord)>> {
    let mut out = Vec::new();
    for (lsn, rec, _) in read_all(dev, base)? {
        if let Some(limit) = stop_at {
            if lsn >= limit {
                break;
            }
        }
        out.push((lsn, rec));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::value::Value;

    fn dev() -> Arc<dyn Device> {
        Arc::new(MemDevice::new())
    }

    fn insert_op(i: i64) -> RowOp {
        RowOp::Insert { table: "t".into(), row: vec![Value::Int(i)] }
    }

    #[test]
    fn append_and_replay() {
        let d = dev();
        {
            let (wal, recs) = Wal::open(Arc::clone(&d)).unwrap();
            assert!(recs.is_empty());
            wal.append(&WalRecord::Commit {
                txid: 1,
                participants: vec![],
                ops: vec![insert_op(1)],
            })
            .unwrap();
            wal.append(&WalRecord::Decide { txid: 2, commit: false }).unwrap();
        }
        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].1, WalRecord::Commit { txid: 1, .. }));
        assert!(matches!(recs[1].1, WalRecord::Decide { txid: 2, commit: false }));
    }

    #[test]
    fn append_returns_advancing_state_ids() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let a = wal.append(&WalRecord::Checkpoint { generation: 1 }).unwrap();
        let b = wal.append(&WalRecord::Checkpoint { generation: 2 }).unwrap();
        assert!(a > 0, "state id covers the first record");
        assert!(b > a);
        assert_eq!(wal.tail_lsn(), b, "append returns the new tail");
    }

    #[test]
    fn torn_tail_is_truncated() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        wal.append(&WalRecord::Commit { txid: 1, participants: vec![], ops: vec![insert_op(1)] })
            .unwrap();
        let good_end = wal.tail_lsn();
        // Simulate a torn write: a header promising more bytes than exist.
        d.write_at(good_end, &[200, 0, 0, 0, 1, 2, 3, 4, 9, 9]).unwrap();

        let (wal2, recs) = Wal::open(Arc::clone(&d)).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, 0, "record frames start at offset zero");
        assert_eq!(wal2.tail_lsn(), good_end, "torn frame must be truncated");
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let first_end = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        // Flip a payload byte of the second record (which starts at the
        // first record's end).
        let mut b = [0u8; 1];
        d.read_at(first_end + FRAME_HEADER as u64, &mut b).unwrap();
        d.write_at(first_end + FRAME_HEADER as u64, &[b[0] ^ 0xFF]).unwrap();

        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 1, "corrupt record and everything after is dropped");
    }

    #[test]
    fn read_until_respects_state_semantics() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let a = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        let b = wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        wal.append(&WalRecord::Decide { txid: 3, commit: true }).unwrap();

        // A state id covers exactly the records logged before it.
        assert_eq!(read_until(&d, 0, Some(a)).unwrap().len(), 1);
        assert_eq!(read_until(&d, 0, Some(b)).unwrap().len(), 2);
        assert_eq!(read_until(&d, 0, None).unwrap().len(), 3);
        assert_eq!(read_until(&d, 0, Some(0)).unwrap().len(), 0);
    }

    #[test]
    fn per_commit_and_group_commit_write_identical_bytes() {
        // Single-threaded, the two modes must be byte-for-byte identical:
        // recovery cannot tell them apart (the equivalence the group-commit
        // pipeline promises).
        let records: Vec<WalRecord> = (0..20)
            .map(|i| WalRecord::Commit {
                txid: i,
                participants: vec![],
                ops: vec![insert_op(i as i64)],
            })
            .collect();
        let d_per = Arc::new(MemDevice::new());
        let d_grp = Arc::new(MemDevice::new());
        {
            let (wal, _) = Wal::open_with(
                Arc::clone(&d_per) as Arc<dyn Device>,
                WalOptions::per_commit_sync(),
            )
            .unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        {
            let (wal, _) =
                Wal::open_with(Arc::clone(&d_grp) as Arc<dyn Device>, WalOptions::default())
                    .unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        assert_eq!(d_per.snapshot(), d_grp.snapshot());
        // Per-commit pays one sync per record; grouped solo appends too
        // (one frame per batch) — but never more.
        assert_eq!(d_per.sync_count(), 20);
        assert!(d_grp.sync_count() <= 20);
    }

    #[test]
    fn concurrent_group_commit_collapses_syncs_and_loses_nothing() {
        let dev = Arc::new(MemDevice::with_sync_latency_ns(100_000));
        let wal = Arc::new(
            Wal::open_with(
                Arc::clone(&dev) as Arc<dyn Device>,
                WalOptions { commit_delay_us: 100, ..Default::default() },
            )
            .unwrap()
            .0,
        );
        let threads = 8;
        let per = 10;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for k in 0..per {
                        let lsn = wal
                            .append(&WalRecord::Commit {
                                txid: (t * per + k) as u64,
                                participants: vec![],
                                ops: vec![insert_op(k as i64)],
                            })
                            .unwrap();
                        // Durability before acknowledgement.
                        assert!(wal.durable_lsn() >= lsn);
                    }
                });
            }
        });
        // Every append must survive replay.
        let (_, recs) = Wal::open(Arc::clone(&dev) as Arc<dyn Device>).unwrap();
        assert_eq!(recs.len(), threads * per);
        let mut txids: Vec<u64> = recs
            .iter()
            .filter_map(|(_, r)| match r {
                WalRecord::Commit { txid, .. } => Some(*txid),
                _ => None,
            })
            .collect();
        txids.sort_unstable();
        assert_eq!(txids, (0..(threads * per) as u64).collect::<Vec<_>>());
        // The whole point: far fewer syncs than appends.
        assert!(
            dev.sync_count() < (threads * per) as u64,
            "expected batched syncs, got {} for {} appends",
            dev.sync_count(),
            threads * per
        );
    }

    #[test]
    fn max_batch_backpressure_still_accepts_all_appends() {
        let d = dev();
        let wal = Arc::new(
            Wal::open_with(
                Arc::clone(&d),
                WalOptions { max_batch: 2, commit_delay_us: 50, ..Default::default() },
            )
            .unwrap()
            .0,
        );
        std::thread::scope(|scope| {
            for t in 0..6 {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for _ in 0..5 {
                        wal.append(&WalRecord::Decide { txid: t, commit: true }).unwrap();
                    }
                });
            }
        });
        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 30);
    }

    #[test]
    fn cut_at_every_byte_inside_batch_replays_whole_frame_prefix() {
        // Crash-mid-batch: a batched flush is one write_at, but the device
        // may still persist any prefix of it. Whatever prefix survives,
        // replay must recover exactly the whole frames inside it — no
        // partial frame, no skipped frame (extends the torn-tail tests).
        let d = Arc::new(MemDevice::new());
        let mut frame_ends: Vec<u64> = Vec::new();
        {
            let (wal, _) =
                Wal::open_with(Arc::clone(&d) as Arc<dyn Device>, WalOptions::default()).unwrap();
            for i in 0..6i64 {
                frame_ends.push(
                    wal.append(&WalRecord::Commit {
                        txid: i as u64,
                        participants: vec![],
                        ops: vec![insert_op(i)],
                    })
                    .unwrap(),
                );
            }
        }
        let bytes = d.snapshot();
        for cut in 0..=bytes.len() {
            let torn = Arc::new(MemDevice::from_bytes(bytes[..cut].to_vec())) as Arc<dyn Device>;
            let (wal2, recs) = Wal::open(torn).unwrap();
            let expect = frame_ends.iter().filter(|e| **e <= cut as u64).count();
            assert_eq!(recs.len(), expect, "cut at byte {cut}");
            for (i, (_, rec)) in recs.iter().enumerate() {
                assert!(
                    matches!(rec, WalRecord::Commit { txid, .. } if *txid == i as u64),
                    "replay after cut {cut} must be the exact record prefix"
                );
            }
            // And the torn tail is truncated to the last whole frame.
            let expect_end = frame_ends.iter().filter(|e| **e <= cut as u64).max().copied();
            assert_eq!(wal2.tail_lsn(), expect_end.unwrap_or(0), "cut at byte {cut}");
        }
    }

    #[test]
    fn reader_tails_durable_frames_only() {
        let d = Arc::new(MemDevice::new());
        let (wal, _) = Wal::open(Arc::clone(&d) as Arc<dyn Device>).unwrap();
        let reader = wal.reader();
        assert_eq!(reader.durable_lsn(), 0);
        assert!(reader.read_from(0).unwrap().is_empty());

        let a = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        let b = wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        assert_eq!(reader.durable_lsn(), b);

        let frames = reader.read_from(0).unwrap();
        assert_eq!(frames.base, 0);
        assert_eq!(frames.end, b);
        assert_eq!(frames.records.len(), 2);
        assert_eq!(frames.bytes, d.snapshot(), "shipped bytes are the raw log bytes");

        // Incremental tail from the first frame's end.
        let tail = reader.read_from(a).unwrap();
        assert_eq!(tail.base, a);
        assert_eq!(tail.records.len(), 1);
        assert!(matches!(tail.records[0].1, WalRecord::Decide { txid: 2, .. }));
    }

    #[test]
    fn reader_wait_past_wakes_on_append() {
        let d = dev();
        let wal = Arc::new(Wal::open(Arc::clone(&d)).unwrap().0);
        let reader = wal.reader();
        // Timeout path: nothing appended.
        assert_eq!(reader.wait_past(0, std::time::Duration::from_millis(10)), 0);
        let w = Arc::clone(&wal);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            w.append(&WalRecord::Checkpoint { generation: 1 }).unwrap()
        });
        let durable = reader.wait_past(0, std::time::Duration::from_secs(10));
        let appended = t.join().unwrap();
        assert!(durable >= appended);
    }

    #[test]
    fn reader_sees_grouped_flushes() {
        let dev = Arc::new(MemDevice::with_sync_latency_ns(50_000));
        let wal = Arc::new(
            Wal::open_with(Arc::clone(&dev) as Arc<dyn Device>, WalOptions::tuned_for(8))
                .unwrap()
                .0,
        );
        let reader = wal.reader();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for k in 0..5 {
                        wal.append(&WalRecord::Decide { txid: t * 10 + k, commit: true }).unwrap();
                    }
                });
            }
        });
        let frames = reader.read_from(0).unwrap();
        assert_eq!(frames.records.len(), 40);
        assert_eq!(frames.end, wal.durable_lsn());
    }

    #[test]
    fn flush_failure_is_transient_and_costs_only_the_caught_commit() {
        let faults = crate::device::DiskFaults::new();
        let env = StorageEnv::mem_with_faults(Arc::clone(&faults), 0);
        let (wal, _) = Wal::open_env(&env, WalOptions::default()).unwrap();
        wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();

        faults.inject_enospc(1);
        let err = wal.append(&WalRecord::Decide { txid: 2, commit: true });
        assert!(err.is_err(), "commit caught in the failed flush reports the error");

        // The log stays usable: the next append reuses the dropped frame's
        // address space and the tail rewinds over the failure.
        let b = wal.append(&WalRecord::Decide { txid: 3, commit: true }).unwrap();
        assert_eq!(wal.durable_lsn(), b);
        assert_eq!(wal.tail_lsn(), b);

        drop(wal);
        let (_, recs) = Wal::open_env(&env, WalOptions::default()).unwrap();
        let txids: Vec<u64> = recs
            .iter()
            .map(|(_, r)| match r {
                WalRecord::Decide { txid, .. } => *txid,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(txids, vec![1, 3], "the dropped commit must not replay");
    }

    #[test]
    fn concurrent_appends_are_acked_iff_they_replay_across_a_flush_failure() {
        // The group-commit pipeline under an injected ENOSPC burst: every
        // append that returned Ok must replay, every append that returned
        // Err must not — no false acks through reused log address space,
        // no lost acks from over-eager failure reporting.
        let faults = crate::device::DiskFaults::new();
        let env = StorageEnv::mem_with_faults(Arc::clone(&faults), 0);
        let wal = Arc::new(Wal::open_env(&env, WalOptions::tuned_for(8)).unwrap().0);
        for i in 0..4u64 {
            wal.append(&WalRecord::Decide { txid: i, commit: true }).unwrap();
        }

        faults.inject_enospc(3);
        let acked = parking_lot::Mutex::new(Vec::new());
        let failed = parking_lot::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let wal = Arc::clone(&wal);
                let (acked, failed) = (&acked, &failed);
                scope.spawn(move || {
                    for k in 0..10u64 {
                        let txid = 100 + t * 100 + k;
                        match wal.append(&WalRecord::Decide { txid, commit: true }) {
                            Ok(_) => acked.lock().push(txid),
                            Err(_) => failed.lock().push(txid),
                        }
                    }
                });
            }
        });
        assert_eq!(faults.enospc_hits(), 3, "the armed burst must actually fire");
        let failed = failed.into_inner();
        assert!(!failed.is_empty(), "some commit must have been caught in the failure");

        drop(wal);
        let (_, recs) = Wal::open_env(&env, WalOptions::default()).unwrap();
        let replayed: std::collections::HashSet<u64> = recs
            .iter()
            .map(|(_, r)| match r {
                WalRecord::Decide { txid, .. } => *txid,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        for txid in acked.into_inner() {
            assert!(replayed.contains(&txid), "acked commit {txid} lost");
        }
        for txid in failed {
            assert!(!replayed.contains(&txid), "failed commit {txid} replayed anyway");
        }
    }

    #[test]
    fn tuned_for_scales_delay_with_committers() {
        assert_eq!(WalOptions::tuned_for(1).commit_delay_us, 0, "solo committer: no gather");
        assert_eq!(WalOptions::tuned_for(2).commit_delay_us, 0);
        let four = WalOptions::tuned_for(4);
        assert!(four.group_commit);
        assert!(four.commit_delay_us > 0, "concurrent committers get a gather window");
        assert!(WalOptions::tuned_for(64).commit_delay_us <= 200, "delay is capped");
        assert!(WalOptions::tuned_for(128).max_batch >= 128, "batch bound tracks committers");
    }

    #[test]
    fn record_roundtrip_all_variants() {
        let records = vec![
            WalRecord::Ddl(insert_op(0)),
            WalRecord::Commit {
                txid: 9,
                participants: vec!["dlfm@srv1".into(), "dlfm@srv2".into()],
                ops: vec![insert_op(1), insert_op(2)],
            },
            WalRecord::Prepare { txid: 10, ops: vec![insert_op(3)] },
            WalRecord::Decide { txid: 10, commit: true },
            WalRecord::Checkpoint { generation: 3 },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
    }

    // --- truncation -----------------------------------------------------------

    #[test]
    fn truncate_bounds_retained_bytes_and_reopens() {
        let env = StorageEnv::mem();
        let cut;
        let tail;
        {
            let (wal, _) = Wal::open_env(&env, WalOptions::default()).unwrap();
            for i in 0..10u64 {
                wal.append(&WalRecord::Decide { txid: i, commit: true }).unwrap();
            }
            cut = wal.append(&WalRecord::Checkpoint { generation: 1 }).unwrap();
            tail = wal.append(&WalRecord::Decide { txid: 99, commit: true }).unwrap();
            let before = wal.retained_bytes();
            assert_eq!(wal.truncate_below(cut).unwrap(), cut);
            assert_eq!(wal.base_lsn(), cut);
            assert_eq!(wal.tail_lsn(), tail, "tail LSN survives truncation");
            assert!(wal.retained_bytes() < before);
        }
        // Reopen honours the control record: only the suffix replays, at
        // its original logical LSNs.
        let (wal, recs) = Wal::open_env(&env, WalOptions::default()).unwrap();
        assert_eq!(wal.base_lsn(), cut);
        assert_eq!(wal.tail_lsn(), tail);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, cut, "surviving record keeps its logical LSN");
        assert!(matches!(recs[0].1, WalRecord::Decide { txid: 99, .. }));

        // Appending after reopen continues the same address space.
        let next = wal.append(&WalRecord::Decide { txid: 100, commit: true }).unwrap();
        assert!(next > tail);
    }

    #[test]
    fn truncate_is_clamped_and_idempotent() {
        let env = StorageEnv::mem();
        let (wal, _) = Wal::open_env(&env, WalOptions::default()).unwrap();
        let a = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        assert_eq!(wal.truncate_below(a).unwrap(), a);
        // Not an advance: stays put.
        assert_eq!(wal.truncate_below(0).unwrap(), a);
        assert_eq!(wal.truncate_below(a).unwrap(), a);
        // Clamped to durable.
        let end = wal.durable_lsn();
        assert_eq!(wal.truncate_below(end + 10_000).unwrap(), end);
    }

    #[test]
    fn reader_below_base_reports_truncation() {
        let env = StorageEnv::mem();
        let (wal, _) = Wal::open_env(&env, WalOptions::default()).unwrap();
        let a = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        let b = wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        let reader = wal.reader();
        wal.truncate_below(a).unwrap();
        assert_eq!(reader.base_lsn(), a);
        match reader.read_from(0) {
            Err(DbError::TruncatedLog { base }) => assert_eq!(base, a),
            other => panic!("expected TruncatedLog, got {other:?}"),
        }
        // At or above the base, reading still works and LSNs are logical.
        let frames = reader.read_from(a).unwrap();
        assert_eq!(frames.base, a);
        assert_eq!(frames.end, b);
        assert_eq!(frames.records.len(), 1);
    }

    #[test]
    fn repeated_truncations_flip_slots() {
        let env = StorageEnv::mem();
        let (wal, _) = Wal::open_env(&env, WalOptions::default()).unwrap();
        let mut last = 0;
        for round in 0..4u64 {
            for i in 0..5u64 {
                last =
                    wal.append(&WalRecord::Decide { txid: round * 10 + i, commit: true }).unwrap();
            }
            let cut = wal.tail_lsn();
            assert_eq!(wal.truncate_below(cut).unwrap(), cut);
            assert_eq!(wal.retained_bytes(), 0);
        }
        let tail = wal.append(&WalRecord::Decide { txid: 1000, commit: true }).unwrap();
        assert!(tail > last);
        // Survives a reopen after four slot flips.
        drop(wal);
        let (wal, recs) = Wal::open_env(&env, WalOptions::default()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(wal.tail_lsn(), tail);
    }

    #[test]
    fn truncate_unavailable_on_bare_device() {
        let (wal, _) = Wal::open(dev()).unwrap();
        wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        assert!(wal.truncate_below(1).is_err());
    }

    #[test]
    fn ctl_record_roundtrip_and_torn_slot_fallback() {
        let env = StorageEnv::mem();
        assert_eq!(read_log_ctl(&env).unwrap(), (0, 0, 0), "missing ctl means never truncated");
        write_log_ctl(&env, 1, 100, 1).unwrap();
        assert_eq!(read_log_ctl(&env).unwrap(), (1, 100, 1));
        write_log_ctl(&env, 2, 200, 0).unwrap();
        assert_eq!(read_log_ctl(&env).unwrap(), (2, 200, 0));
        // Tear the newest record (seq 2 lives in ctl slot 0): the previous
        // record must be recovered.
        env.device("wal.ctl").unwrap().write_at(0, &[0xFF; 8]).unwrap();
        assert_eq!(read_log_ctl(&env).unwrap(), (1, 100, 1));
    }
}
