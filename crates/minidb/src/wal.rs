//! Write-ahead log.
//!
//! Redo-only logical logging. Each record is framed as
//! `[len: u32][crc32: u32][payload]`; the LSN of a record is the byte offset
//! of its frame, and the LSN returned by a commit is also the paper's
//! *database state identifier* — §4.4 associates every archived file version
//! with "a database state identifier (for example tail LSN)".
//!
//! Record vocabulary:
//!
//! * `Ddl` — catalog change, applied immediately (DDL is auto-committed).
//! * `Commit` — a coordinator-side commit: the transaction's complete redo
//!   op list plus the names of any enlisted 2PC participants. Writing this
//!   record *is* the commit decision.
//! * `Prepare` / `Decide` — participant-side 2PC: `Prepare` persists the op
//!   list without applying it; `Decide` settles it. A prepared transaction
//!   with no decision on record is *in doubt* after recovery and must be
//!   resolved by the coordinator (the DataLinks recovery orchestrator does
//!   this for DLFM repositories).
//! * `Checkpoint` — marks that a snapshot with the given generation covers
//!   the log up to this point.
//!
//! Replay stops at the first corrupt or torn frame and truncates the tail,
//! the standard crash-consistency posture for a log.
//!
//! # Group commit
//!
//! `sync` is the expensive step of every commit, and with one log per
//! database every committer pays it. The WAL therefore runs a
//! *leader/follower group-commit pipeline* (configured by [`WalOptions`]):
//! committers encode their frame into a shared in-memory batch under a
//! short critical section; the first waiter whose frame is not yet durable
//! elects itself leader, writes the whole batch with one `write_at`,
//! issues one `sync`, and wakes the followers parked on a condvar. N
//! concurrent commits thus collapse into ~1 device sync, and no append
//! returns before its own frame is durable. With a single committer the
//! batch always holds exactly one frame, so the log bytes are identical to
//! the per-commit-sync mode — recovery cannot tell the modes apart.
//!
//! # Log shipping
//!
//! Replication tails the log through a [`WalReader`] ([`Wal::reader`]):
//! after every successful flush the group-commit leader (or the per-commit
//! path) publishes the new durable watermark on a shared signal, and a
//! reader can wait for growth and then read the raw frames below the
//! watermark straight from the device. The durable watermark always lands
//! on a frame boundary, so a shipped range is a whole number of frames —
//! what [`crate::replica::StandbyDb`] applies byte-identically.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::codec::{crc32, Dec, Enc};
use crate::device::Device;
use crate::error::{DbError, DbResult};
use crate::ops::RowOp;

/// Log sequence number: byte offset of a record frame in the log device.
pub type Lsn = u64;

/// Transaction identifier.
pub type TxId = u64;

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Auto-committed catalog change.
    Ddl(RowOp),
    /// Coordinator commit decision with full redo information.
    Commit { txid: TxId, participants: Vec<String>, ops: Vec<RowOp> },
    /// Participant prepared state (2PC phase one).
    Prepare { txid: TxId, ops: Vec<RowOp> },
    /// Participant decision (2PC phase two).
    Decide { txid: TxId, commit: bool },
    /// Snapshot `generation` covers the log strictly before this record.
    Checkpoint { generation: u64 },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            WalRecord::Ddl(op) => {
                enc.put_u8(0);
                op.encode(&mut enc);
            }
            WalRecord::Commit { txid, participants, ops } => {
                enc.put_u8(1);
                enc.put_u64(*txid);
                enc.put_u32(participants.len() as u32);
                for p in participants {
                    enc.put_str(p);
                }
                RowOp::encode_list(ops, &mut enc);
            }
            WalRecord::Prepare { txid, ops } => {
                enc.put_u8(2);
                enc.put_u64(*txid);
                RowOp::encode_list(ops, &mut enc);
            }
            WalRecord::Decide { txid, commit } => {
                enc.put_u8(3);
                enc.put_u64(*txid);
                enc.put_bool(*commit);
            }
            WalRecord::Checkpoint { generation } => {
                enc.put_u8(4);
                enc.put_u64(*generation);
            }
        }
        enc.into_bytes()
    }

    fn decode(payload: &[u8]) -> DbResult<WalRecord> {
        let mut dec = Dec::new(payload);
        let rec = match dec.get_u8()? {
            0 => WalRecord::Ddl(RowOp::decode(&mut dec)?),
            1 => {
                let txid = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(dec.get_str()?);
                }
                let ops = RowOp::decode_list(&mut dec)?;
                WalRecord::Commit { txid, participants, ops }
            }
            2 => WalRecord::Prepare { txid: dec.get_u64()?, ops: RowOp::decode_list(&mut dec)? },
            3 => WalRecord::Decide { txid: dec.get_u64()?, commit: dec.get_bool()? },
            4 => WalRecord::Checkpoint { generation: dec.get_u64()? },
            t => return Err(DbError::Corrupt(format!("unknown wal record tag {t}"))),
        };
        if !dec.is_done() {
            return Err(DbError::Corrupt("trailing bytes in wal record".into()));
        }
        Ok(rec)
    }
}

const FRAME_HEADER: usize = 8; // len + crc

/// Durability policy of the log (see the module docs on group commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Batch concurrent appends and sync once per batch (leader/follower).
    /// When off, every append performs its own `write_at` + `sync` under
    /// the log mutex — the classic per-commit-sync baseline.
    pub group_commit: bool,
    /// Maximum frames per batch; appenders beyond it wait for the current
    /// batch to flush (back-pressure, bounds batch memory).
    pub max_batch: usize,
    /// Optional window, in microseconds, the leader waits before flushing
    /// so more followers can join the batch. Zero (the default) flushes
    /// immediately; latency is only traded for throughput when asked.
    pub commit_delay_us: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { group_commit: true, max_batch: 64, commit_delay_us: 0 }
    }
}

impl WalOptions {
    /// The per-commit-sync baseline (pre-group-commit behaviour).
    pub fn per_commit_sync() -> Self {
        WalOptions { group_commit: false, ..Default::default() }
    }

    /// Group-commit options tuned for an expected number of concurrent
    /// committers. The guidance the bare default (`commit_delay_us: 0`)
    /// lacks: with one or two committers a gather window only adds latency
    /// (the batch rarely holds a second frame), so the delay stays zero;
    /// from three committers up, a short window — ~20 µs per expected
    /// committer, capped at 200 µs so worst-case commit latency stays
    /// bounded — lets followers join the leader's batch and trades that
    /// latency for sync collapse. `max_batch` grows with the committer
    /// count so back-pressure never caps a full gather window.
    pub fn tuned_for(threads: usize) -> Self {
        let commit_delay_us = if threads <= 2 { 0 } else { ((threads as u64) * 20).min(200) };
        WalOptions { group_commit: true, max_batch: threads.max(64), commit_delay_us }
    }
}

/// Mutable log state, guarded by one short-critical-section mutex.
struct WalState {
    /// Next unassigned byte offset (`durable` + in-flight + batched bytes).
    end: Lsn,
    /// Everything below this offset is written *and* synced.
    durable: Lsn,
    /// Encoded frames accepted but not yet handed to a leader; occupies
    /// `[batch_base, end)` of the log's address space.
    batch: Vec<u8>,
    batch_base: Lsn,
    batch_frames: usize,
    /// A leader is currently writing/syncing `[durable, batch_base)`.
    leader_active: bool,
    /// Recycled batch buffer (micro-fix: no fresh frame `Vec` per append).
    spare: Vec<u8>,
    /// Sticky I/O failure: once a batched write/sync fails the log cannot
    /// tell which frames made it, so every subsequent append fails loudly
    /// rather than risking a hole before acknowledged commits.
    poisoned: Option<String>,
}

/// Shared durable-watermark signal between the log and its readers: the
/// flush paths publish the new watermark here after every successful sync,
/// waking shippers parked in [`WalReader::wait_past`].
struct ShipSignal {
    durable: Mutex<Lsn>,
    grew: Condvar,
}

impl ShipSignal {
    fn publish(&self, durable: Lsn) {
        let mut cur = self.durable.lock();
        if durable > *cur {
            *cur = durable;
            self.grew.notify_all();
        }
    }
}

/// A contiguous run of whole frames read from the log: the ship unit of the
/// replication pipeline. `bytes` are the raw device bytes of
/// `[base, end)` — a standby appends them verbatim so its log stays
/// byte-identical to the primary's — and `records` are the same frames
/// decoded for table apply.
#[derive(Debug, Clone)]
pub struct ShippedFrames {
    /// Byte offset of the first frame.
    pub base: Lsn,
    /// One past the last byte (the standby's next expected base).
    pub end: Lsn,
    /// Raw frame bytes of `[base, end)`.
    pub bytes: Vec<u8>,
    /// Decoded records with their LSNs.
    pub records: Vec<(Lsn, WalRecord)>,
}

impl ShippedFrames {
    fn empty(at: Lsn) -> ShippedFrames {
        ShippedFrames { base: at, end: at, bytes: Vec::new(), records: Vec::new() }
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Tail-reading handle over a live log (replication shipping). Obtained
/// from [`Wal::reader`] / `Database::wal_reader`; reads only bytes below
/// the durable watermark, so a shipped frame is always synced on the
/// primary before any standby sees it (no standby can run ahead of the
/// primary's own durability).
#[derive(Clone)]
pub struct WalReader {
    dev: Arc<dyn Device>,
    signal: Arc<ShipSignal>,
}

impl WalReader {
    /// The current durable watermark.
    pub fn durable_lsn(&self) -> Lsn {
        *self.signal.durable.lock()
    }

    /// Blocks until the durable watermark exceeds `seen` or `timeout`
    /// elapses; returns the current watermark either way.
    pub fn wait_past(&self, seen: Lsn, timeout: Duration) -> Lsn {
        let mut durable = self.signal.durable.lock();
        if *durable <= seen {
            let _ = self.signal.grew.wait_for(&mut durable, timeout);
        }
        *durable
    }

    /// Reads all whole frames in `[from, durable)`. The watermark only ever
    /// lands on frame boundaries, so the parsed prefix covers the full
    /// range; a shorter parse means the device bytes are corrupt.
    pub fn read_from(&self, from: Lsn) -> DbResult<ShippedFrames> {
        let durable = self.durable_lsn();
        if from >= durable {
            return Ok(ShippedFrames::empty(from));
        }
        let len = (durable - from) as usize;
        let mut bytes = vec![0u8; len];
        let got = self.dev.read_at(from, &mut bytes)?;
        if got < len {
            return Err(DbError::Corrupt(format!(
                "wal reader: short read at {from} ({got} of {len} durable bytes)"
            )));
        }
        let parsed = parse_frames(&bytes, from);
        let end = parsed.last().map(|(lsn, _, flen)| lsn + flen).unwrap_or(from);
        if end != durable {
            return Err(DbError::Corrupt(format!(
                "wal reader: durable watermark {durable} not on a frame boundary (parsed to {end})"
            )));
        }
        Ok(ShippedFrames {
            base: from,
            end,
            bytes,
            records: parsed.into_iter().map(|(lsn, rec, _)| (lsn, rec)).collect(),
        })
    }
}

/// Append handle over the log device. Appends are serialized internally;
/// under group commit concurrent appends share one `write_at` + `sync`.
pub struct Wal {
    dev: Arc<dyn Device>,
    opts: WalOptions,
    state: Mutex<WalState>,
    flushed: Condvar,
    ship: Arc<ShipSignal>,
}

impl Wal {
    /// Opens the log with default options, scanning to find the end of the
    /// valid prefix and truncating any torn tail.
    pub fn open(dev: Arc<dyn Device>) -> DbResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        Self::open_with(dev, WalOptions::default())
    }

    /// Opens the log with explicit durability options.
    pub fn open_with(
        dev: Arc<dyn Device>,
        opts: WalOptions,
    ) -> DbResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        let records = read_all(&dev)?;
        let mut valid_end: Lsn = 0;
        let mut out = Vec::with_capacity(records.len());
        for (lsn, rec, frame_len) in records {
            valid_end = lsn + frame_len;
            out.push((lsn, rec));
        }
        dev.set_len(valid_end)?;
        Ok((
            Wal {
                dev,
                opts,
                state: Mutex::new(WalState {
                    end: valid_end,
                    durable: valid_end,
                    batch: Vec::new(),
                    batch_base: valid_end,
                    batch_frames: 0,
                    leader_active: false,
                    spare: Vec::new(),
                    poisoned: None,
                }),
                flushed: Condvar::new(),
                ship: Arc::new(ShipSignal { durable: Mutex::new(valid_end), grew: Condvar::new() }),
            },
            out,
        ))
    }

    /// A tail-reading handle for replication shipping (see [`WalReader`]).
    pub fn reader(&self) -> WalReader {
        WalReader { dev: Arc::clone(&self.dev), signal: Arc::clone(&self.ship) }
    }

    /// Appends a record and returns only once it is durably synced. The
    /// returned LSN is the log tail *after* the record — the paper's "tail
    /// LSN" database state identifier: a state covers every record strictly
    /// below it.
    pub fn append(&self, rec: &WalRecord) -> DbResult<Lsn> {
        let payload = rec.encode();
        if self.opts.group_commit {
            self.append_grouped(&payload)
        } else {
            self.append_per_commit(&payload)
        }
    }

    /// Baseline path: one `write_at` + `sync` per record, serialized under
    /// the log mutex (held across the I/O, exactly the pre-batching
    /// behaviour). Reuses the spare buffer instead of allocating a frame.
    fn append_per_commit(&self, payload: &[u8]) -> DbResult<Lsn> {
        let mut state = self.state.lock();
        if let Some(e) = &state.poisoned {
            return Err(DbError::Io(format!("wal poisoned by earlier failure: {e}")));
        }
        let mut frame = std::mem::take(&mut state.spare);
        frame.clear();
        encode_frame(&mut frame, payload);
        let start = state.end;
        let result = self.dev.write_at(start, &frame).and_then(|()| self.dev.sync());
        state.spare = frame;
        result?;
        state.end = start + (FRAME_HEADER + payload.len()) as u64;
        state.durable = state.end;
        state.batch_base = state.end;
        self.ship.publish(state.end);
        Ok(state.end)
    }

    /// Group-commit path: enqueue the frame, then either follow (park on
    /// the condvar until a leader makes it durable) or lead (flush the
    /// whole batch with one write + one sync).
    fn append_grouped(&self, payload: &[u8]) -> DbResult<Lsn> {
        let mut state = self.state.lock();
        // Back-pressure: a full batch must flush before growing further.
        loop {
            if let Some(e) = &state.poisoned {
                return Err(DbError::Io(format!("wal poisoned by earlier failure: {e}")));
            }
            if state.batch_frames < self.opts.max_batch.max(1) {
                break;
            }
            self.flushed.wait(&mut state);
        }
        encode_frame(&mut state.batch, payload);
        state.batch_frames += 1;
        state.end += (FRAME_HEADER + payload.len()) as u64;
        let my_lsn = state.end;

        while state.durable < my_lsn {
            if let Some(e) = &state.poisoned {
                return Err(DbError::Io(format!("wal poisoned by earlier failure: {e}")));
            }
            if state.leader_active {
                // Follow: a leader is flushing; it (or a successor) will
                // cover our frame and wake us.
                self.flushed.wait(&mut state);
            } else {
                self.lead_flush(&mut state)?;
            }
        }
        Ok(my_lsn)
    }

    /// Leader duty: take the pending batch, write it with one `write_at`,
    /// sync once, advance `durable`, wake everyone. The state lock is
    /// dropped around the device I/O (and the optional commit-delay nap) so
    /// followers keep appending into the next batch meanwhile.
    fn lead_flush(&self, state: &mut parking_lot::MutexGuard<'_, WalState>) -> DbResult<()> {
        state.leader_active = true;
        if self.opts.commit_delay_us > 0 {
            // Gather window: let more committers join this batch.
            parking_lot::MutexGuard::unlocked(state, || {
                std::thread::sleep(std::time::Duration::from_micros(self.opts.commit_delay_us));
            });
        }
        let next = std::mem::take(&mut state.spare);
        let buf = std::mem::replace(&mut state.batch, next);
        let base = state.batch_base;
        let flush_to = state.end;
        state.batch_base = flush_to;
        state.batch_frames = 0;

        let result = parking_lot::MutexGuard::unlocked(state, || {
            self.dev.write_at(base, &buf).and_then(|()| self.dev.sync())
        });

        match result {
            Ok(()) => {
                state.durable = flush_to;
                let mut buf = buf;
                buf.clear();
                state.spare = buf;
                state.leader_active = false;
                self.flushed.notify_all();
                self.ship.publish(flush_to);
                Ok(())
            }
            Err(e) => {
                state.poisoned = Some(e.to_string());
                state.leader_active = false;
                self.flushed.notify_all();
                Err(e)
            }
        }
    }

    /// The log tail: one past the last accepted record. Records at or above
    /// [`Wal::durable_lsn`] may still be in flight, but every `append`
    /// returns only after its own frame is durable, so an LSN handed to a
    /// caller always refers to synced bytes.
    pub fn tail_lsn(&self) -> Lsn {
        self.state.lock().end
    }

    /// One past the last *synced* byte.
    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().durable
    }
}

/// Appends `[len][crc][payload]` to `buf`.
fn encode_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.reserve(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Parses the valid frame prefix of `bytes`, whose first byte sits at log
/// offset `base`. Stops quietly at the first torn/corrupt frame — callers
/// that require the whole range (log shipping) check the parsed end.
pub(crate) fn parse_frames(bytes: &[u8], base: Lsn) -> Vec<(Lsn, WalRecord, u64)> {
    let mut out = Vec::new();
    let mut pos: usize = 0;
    while pos + FRAME_HEADER <= bytes.len() {
        let header = &bytes[pos..pos + FRAME_HEADER];
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let frame_end = pos + FRAME_HEADER + len;
        if frame_end > bytes.len() {
            break; // torn write
        }
        let payload = &bytes[pos + FRAME_HEADER..frame_end];
        if crc32(payload) != crc {
            break; // corrupt tail
        }
        match WalRecord::decode(payload) {
            Ok(rec) => out.push((base + pos as u64, rec, (FRAME_HEADER + len) as u64)),
            Err(_) => break,
        }
        pos = frame_end;
    }
    out
}

/// Reads every valid record with its LSN and frame length. Stops quietly at
/// the first torn/corrupt frame.
pub(crate) fn read_all(dev: &Arc<dyn Device>) -> DbResult<Vec<(Lsn, WalRecord, u64)>> {
    let total = dev.len()?;
    let mut bytes = vec![0u8; total as usize];
    let got = dev.read_at(0, &mut bytes)?;
    bytes.truncate(got);
    Ok(parse_frames(&bytes, 0))
}

/// Reads records up to (but excluding) the state `stop_at`: a state
/// identifier is a log tail, so it covers records whose frames lie strictly
/// below it.
pub fn read_until(dev: &Arc<dyn Device>, stop_at: Option<Lsn>) -> DbResult<Vec<(Lsn, WalRecord)>> {
    let mut out = Vec::new();
    for (lsn, rec, _) in read_all(dev)? {
        if let Some(limit) = stop_at {
            if lsn >= limit {
                break;
            }
        }
        out.push((lsn, rec));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::value::Value;

    fn dev() -> Arc<dyn Device> {
        Arc::new(MemDevice::new())
    }

    fn insert_op(i: i64) -> RowOp {
        RowOp::Insert { table: "t".into(), row: vec![Value::Int(i)] }
    }

    #[test]
    fn append_and_replay() {
        let d = dev();
        {
            let (wal, recs) = Wal::open(Arc::clone(&d)).unwrap();
            assert!(recs.is_empty());
            wal.append(&WalRecord::Commit {
                txid: 1,
                participants: vec![],
                ops: vec![insert_op(1)],
            })
            .unwrap();
            wal.append(&WalRecord::Decide { txid: 2, commit: false }).unwrap();
        }
        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].1, WalRecord::Commit { txid: 1, .. }));
        assert!(matches!(recs[1].1, WalRecord::Decide { txid: 2, commit: false }));
    }

    #[test]
    fn append_returns_advancing_state_ids() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let a = wal.append(&WalRecord::Checkpoint { generation: 1 }).unwrap();
        let b = wal.append(&WalRecord::Checkpoint { generation: 2 }).unwrap();
        assert!(a > 0, "state id covers the first record");
        assert!(b > a);
        assert_eq!(wal.tail_lsn(), b, "append returns the new tail");
    }

    #[test]
    fn torn_tail_is_truncated() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        wal.append(&WalRecord::Commit { txid: 1, participants: vec![], ops: vec![insert_op(1)] })
            .unwrap();
        let good_end = wal.tail_lsn();
        // Simulate a torn write: a header promising more bytes than exist.
        d.write_at(good_end, &[200, 0, 0, 0, 1, 2, 3, 4, 9, 9]).unwrap();

        let (wal2, recs) = Wal::open(Arc::clone(&d)).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, 0, "record frames start at offset zero");
        assert_eq!(wal2.tail_lsn(), good_end, "torn frame must be truncated");
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let first_end = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        // Flip a payload byte of the second record (which starts at the
        // first record's end).
        let mut b = [0u8; 1];
        d.read_at(first_end + FRAME_HEADER as u64, &mut b).unwrap();
        d.write_at(first_end + FRAME_HEADER as u64, &[b[0] ^ 0xFF]).unwrap();

        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 1, "corrupt record and everything after is dropped");
    }

    #[test]
    fn read_until_respects_state_semantics() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let a = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        let b = wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        wal.append(&WalRecord::Decide { txid: 3, commit: true }).unwrap();

        // A state id covers exactly the records logged before it.
        assert_eq!(read_until(&d, Some(a)).unwrap().len(), 1);
        assert_eq!(read_until(&d, Some(b)).unwrap().len(), 2);
        assert_eq!(read_until(&d, None).unwrap().len(), 3);
        assert_eq!(read_until(&d, Some(0)).unwrap().len(), 0);
    }

    #[test]
    fn per_commit_and_group_commit_write_identical_bytes() {
        // Single-threaded, the two modes must be byte-for-byte identical:
        // recovery cannot tell them apart (the equivalence the group-commit
        // pipeline promises).
        let records: Vec<WalRecord> = (0..20)
            .map(|i| WalRecord::Commit {
                txid: i,
                participants: vec![],
                ops: vec![insert_op(i as i64)],
            })
            .collect();
        let d_per = Arc::new(MemDevice::new());
        let d_grp = Arc::new(MemDevice::new());
        {
            let (wal, _) = Wal::open_with(
                Arc::clone(&d_per) as Arc<dyn Device>,
                WalOptions::per_commit_sync(),
            )
            .unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        {
            let (wal, _) =
                Wal::open_with(Arc::clone(&d_grp) as Arc<dyn Device>, WalOptions::default())
                    .unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        assert_eq!(d_per.snapshot(), d_grp.snapshot());
        // Per-commit pays one sync per record; grouped solo appends too
        // (one frame per batch) — but never more.
        assert_eq!(d_per.sync_count(), 20);
        assert!(d_grp.sync_count() <= 20);
    }

    #[test]
    fn concurrent_group_commit_collapses_syncs_and_loses_nothing() {
        let dev = Arc::new(MemDevice::with_sync_latency_ns(100_000));
        let wal = Arc::new(
            Wal::open_with(
                Arc::clone(&dev) as Arc<dyn Device>,
                WalOptions { commit_delay_us: 100, ..Default::default() },
            )
            .unwrap()
            .0,
        );
        let threads = 8;
        let per = 10;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for k in 0..per {
                        let lsn = wal
                            .append(&WalRecord::Commit {
                                txid: (t * per + k) as u64,
                                participants: vec![],
                                ops: vec![insert_op(k as i64)],
                            })
                            .unwrap();
                        // Durability before acknowledgement.
                        assert!(wal.durable_lsn() >= lsn);
                    }
                });
            }
        });
        // Every append must survive replay.
        let (_, recs) = Wal::open(Arc::clone(&dev) as Arc<dyn Device>).unwrap();
        assert_eq!(recs.len(), threads * per);
        let mut txids: Vec<u64> = recs
            .iter()
            .filter_map(|(_, r)| match r {
                WalRecord::Commit { txid, .. } => Some(*txid),
                _ => None,
            })
            .collect();
        txids.sort_unstable();
        assert_eq!(txids, (0..(threads * per) as u64).collect::<Vec<_>>());
        // The whole point: far fewer syncs than appends.
        assert!(
            dev.sync_count() < (threads * per) as u64,
            "expected batched syncs, got {} for {} appends",
            dev.sync_count(),
            threads * per
        );
    }

    #[test]
    fn max_batch_backpressure_still_accepts_all_appends() {
        let d = dev();
        let wal = Arc::new(
            Wal::open_with(
                Arc::clone(&d),
                WalOptions { max_batch: 2, commit_delay_us: 50, ..Default::default() },
            )
            .unwrap()
            .0,
        );
        std::thread::scope(|scope| {
            for t in 0..6 {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for _ in 0..5 {
                        wal.append(&WalRecord::Decide { txid: t, commit: true }).unwrap();
                    }
                });
            }
        });
        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 30);
    }

    #[test]
    fn cut_at_every_byte_inside_batch_replays_whole_frame_prefix() {
        // Crash-mid-batch: a batched flush is one write_at, but the device
        // may still persist any prefix of it. Whatever prefix survives,
        // replay must recover exactly the whole frames inside it — no
        // partial frame, no skipped frame (extends the torn-tail tests).
        let d = Arc::new(MemDevice::new());
        let mut frame_ends: Vec<u64> = Vec::new();
        {
            let (wal, _) =
                Wal::open_with(Arc::clone(&d) as Arc<dyn Device>, WalOptions::default()).unwrap();
            for i in 0..6i64 {
                frame_ends.push(
                    wal.append(&WalRecord::Commit {
                        txid: i as u64,
                        participants: vec![],
                        ops: vec![insert_op(i)],
                    })
                    .unwrap(),
                );
            }
        }
        let bytes = d.snapshot();
        for cut in 0..=bytes.len() {
            let torn = Arc::new(MemDevice::from_bytes(bytes[..cut].to_vec())) as Arc<dyn Device>;
            let (wal2, recs) = Wal::open(torn).unwrap();
            let expect = frame_ends.iter().filter(|e| **e <= cut as u64).count();
            assert_eq!(recs.len(), expect, "cut at byte {cut}");
            for (i, (_, rec)) in recs.iter().enumerate() {
                assert!(
                    matches!(rec, WalRecord::Commit { txid, .. } if *txid == i as u64),
                    "replay after cut {cut} must be the exact record prefix"
                );
            }
            // And the torn tail is truncated to the last whole frame.
            let expect_end = frame_ends.iter().filter(|e| **e <= cut as u64).max().copied();
            assert_eq!(wal2.tail_lsn(), expect_end.unwrap_or(0), "cut at byte {cut}");
        }
    }

    #[test]
    fn reader_tails_durable_frames_only() {
        let d = Arc::new(MemDevice::new());
        let (wal, _) = Wal::open(Arc::clone(&d) as Arc<dyn Device>).unwrap();
        let reader = wal.reader();
        assert_eq!(reader.durable_lsn(), 0);
        assert!(reader.read_from(0).unwrap().is_empty());

        let a = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        let b = wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        assert_eq!(reader.durable_lsn(), b);

        let frames = reader.read_from(0).unwrap();
        assert_eq!(frames.base, 0);
        assert_eq!(frames.end, b);
        assert_eq!(frames.records.len(), 2);
        assert_eq!(frames.bytes, d.snapshot(), "shipped bytes are the raw log bytes");

        // Incremental tail from the first frame's end.
        let tail = reader.read_from(a).unwrap();
        assert_eq!(tail.base, a);
        assert_eq!(tail.records.len(), 1);
        assert!(matches!(tail.records[0].1, WalRecord::Decide { txid: 2, .. }));
    }

    #[test]
    fn reader_wait_past_wakes_on_append() {
        let d = dev();
        let wal = Arc::new(Wal::open(Arc::clone(&d)).unwrap().0);
        let reader = wal.reader();
        // Timeout path: nothing appended.
        assert_eq!(reader.wait_past(0, std::time::Duration::from_millis(10)), 0);
        let w = Arc::clone(&wal);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            w.append(&WalRecord::Checkpoint { generation: 1 }).unwrap()
        });
        let durable = reader.wait_past(0, std::time::Duration::from_secs(10));
        let appended = t.join().unwrap();
        assert!(durable >= appended);
    }

    #[test]
    fn reader_sees_grouped_flushes() {
        let dev = Arc::new(MemDevice::with_sync_latency_ns(50_000));
        let wal = Arc::new(
            Wal::open_with(Arc::clone(&dev) as Arc<dyn Device>, WalOptions::tuned_for(8))
                .unwrap()
                .0,
        );
        let reader = wal.reader();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for k in 0..5 {
                        wal.append(&WalRecord::Decide { txid: t * 10 + k, commit: true }).unwrap();
                    }
                });
            }
        });
        let frames = reader.read_from(0).unwrap();
        assert_eq!(frames.records.len(), 40);
        assert_eq!(frames.end, wal.durable_lsn());
    }

    #[test]
    fn tuned_for_scales_delay_with_committers() {
        assert_eq!(WalOptions::tuned_for(1).commit_delay_us, 0, "solo committer: no gather");
        assert_eq!(WalOptions::tuned_for(2).commit_delay_us, 0);
        let four = WalOptions::tuned_for(4);
        assert!(four.group_commit);
        assert!(four.commit_delay_us > 0, "concurrent committers get a gather window");
        assert!(WalOptions::tuned_for(64).commit_delay_us <= 200, "delay is capped");
        assert!(WalOptions::tuned_for(128).max_batch >= 128, "batch bound tracks committers");
    }

    #[test]
    fn record_roundtrip_all_variants() {
        let records = vec![
            WalRecord::Ddl(insert_op(0)),
            WalRecord::Commit {
                txid: 9,
                participants: vec!["dlfm@srv1".into(), "dlfm@srv2".into()],
                ops: vec![insert_op(1), insert_op(2)],
            },
            WalRecord::Prepare { txid: 10, ops: vec![insert_op(3)] },
            WalRecord::Decide { txid: 10, commit: true },
            WalRecord::Checkpoint { generation: 3 },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
    }
}
