//! Write-ahead log.
//!
//! Redo-only logical logging. Each record is framed as
//! `[len: u32][crc32: u32][payload]`; the LSN of a record is the byte offset
//! of its frame, and the LSN returned by a commit is also the paper's
//! *database state identifier* — §4.4 associates every archived file version
//! with "a database state identifier (for example tail LSN)".
//!
//! Record vocabulary:
//!
//! * `Ddl` — catalog change, applied immediately (DDL is auto-committed).
//! * `Commit` — a coordinator-side commit: the transaction's complete redo
//!   op list plus the names of any enlisted 2PC participants. Writing this
//!   record *is* the commit decision.
//! * `Prepare` / `Decide` — participant-side 2PC: `Prepare` persists the op
//!   list without applying it; `Decide` settles it. A prepared transaction
//!   with no decision on record is *in doubt* after recovery and must be
//!   resolved by the coordinator (the DataLinks recovery orchestrator does
//!   this for DLFM repositories).
//! * `Checkpoint` — marks that a snapshot with the given generation covers
//!   the log up to this point.
//!
//! Replay stops at the first corrupt or torn frame and truncates the tail,
//! the standard crash-consistency posture for a log.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::codec::{crc32, Dec, Enc};
use crate::device::Device;
use crate::error::{DbError, DbResult};
use crate::ops::RowOp;

/// Log sequence number: byte offset of a record frame in the log device.
pub type Lsn = u64;

/// Transaction identifier.
pub type TxId = u64;

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Auto-committed catalog change.
    Ddl(RowOp),
    /// Coordinator commit decision with full redo information.
    Commit { txid: TxId, participants: Vec<String>, ops: Vec<RowOp> },
    /// Participant prepared state (2PC phase one).
    Prepare { txid: TxId, ops: Vec<RowOp> },
    /// Participant decision (2PC phase two).
    Decide { txid: TxId, commit: bool },
    /// Snapshot `generation` covers the log strictly before this record.
    Checkpoint { generation: u64 },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            WalRecord::Ddl(op) => {
                enc.put_u8(0);
                op.encode(&mut enc);
            }
            WalRecord::Commit { txid, participants, ops } => {
                enc.put_u8(1);
                enc.put_u64(*txid);
                enc.put_u32(participants.len() as u32);
                for p in participants {
                    enc.put_str(p);
                }
                RowOp::encode_list(ops, &mut enc);
            }
            WalRecord::Prepare { txid, ops } => {
                enc.put_u8(2);
                enc.put_u64(*txid);
                RowOp::encode_list(ops, &mut enc);
            }
            WalRecord::Decide { txid, commit } => {
                enc.put_u8(3);
                enc.put_u64(*txid);
                enc.put_bool(*commit);
            }
            WalRecord::Checkpoint { generation } => {
                enc.put_u8(4);
                enc.put_u64(*generation);
            }
        }
        enc.into_bytes()
    }

    fn decode(payload: &[u8]) -> DbResult<WalRecord> {
        let mut dec = Dec::new(payload);
        let rec = match dec.get_u8()? {
            0 => WalRecord::Ddl(RowOp::decode(&mut dec)?),
            1 => {
                let txid = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(dec.get_str()?);
                }
                let ops = RowOp::decode_list(&mut dec)?;
                WalRecord::Commit { txid, participants, ops }
            }
            2 => WalRecord::Prepare { txid: dec.get_u64()?, ops: RowOp::decode_list(&mut dec)? },
            3 => WalRecord::Decide { txid: dec.get_u64()?, commit: dec.get_bool()? },
            4 => WalRecord::Checkpoint { generation: dec.get_u64()? },
            t => return Err(DbError::Corrupt(format!("unknown wal record tag {t}"))),
        };
        if !dec.is_done() {
            return Err(DbError::Corrupt("trailing bytes in wal record".into()));
        }
        Ok(rec)
    }
}

const FRAME_HEADER: usize = 8; // len + crc

/// Append handle over the log device. Appends are serialized internally.
pub struct Wal {
    dev: Arc<dyn Device>,
    end: Mutex<Lsn>,
}

impl Wal {
    /// Opens the log, scanning to find the end of the valid prefix and
    /// truncating any torn tail.
    pub fn open(dev: Arc<dyn Device>) -> DbResult<(Wal, Vec<(Lsn, WalRecord)>)> {
        let records = read_all(&dev)?;
        let mut valid_end: Lsn = 0;
        let mut out = Vec::with_capacity(records.len());
        for (lsn, rec, frame_len) in records {
            valid_end = lsn + frame_len;
            out.push((lsn, rec));
        }
        dev.set_len(valid_end)?;
        Ok((Wal { dev, end: Mutex::new(valid_end) }, out))
    }

    /// Appends a record and durably syncs it. Returns the log tail *after*
    /// the record — the paper's "tail LSN" database state identifier: a
    /// state covers every record strictly below it.
    pub fn append(&self, rec: &WalRecord) -> DbResult<Lsn> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut end = self.end.lock();
        let start = *end;
        self.dev.write_at(start, &frame)?;
        self.dev.sync()?;
        *end = start + frame.len() as u64;
        Ok(*end)
    }

    /// LSN one past the last durable record — the "tail LSN" of §4.4.
    pub fn tail_lsn(&self) -> Lsn {
        *self.end.lock()
    }
}

/// Reads every valid record with its LSN and frame length. Stops quietly at
/// the first torn/corrupt frame.
fn read_all(dev: &Arc<dyn Device>) -> DbResult<Vec<(Lsn, WalRecord, u64)>> {
    let total = dev.len()?;
    let mut out = Vec::new();
    let mut pos: u64 = 0;
    let mut header = [0u8; FRAME_HEADER];
    while pos + FRAME_HEADER as u64 <= total {
        if dev.read_at(pos, &mut header)? < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let frame_end = pos + (FRAME_HEADER + len) as u64;
        if frame_end > total {
            break; // torn write
        }
        let mut payload = vec![0u8; len];
        if dev.read_at(pos + FRAME_HEADER as u64, &mut payload)? < len {
            break;
        }
        if crc32(&payload) != crc {
            break; // corrupt tail
        }
        match WalRecord::decode(&payload) {
            Ok(rec) => out.push((pos, rec, (FRAME_HEADER + len) as u64)),
            Err(_) => break,
        }
        pos = frame_end;
    }
    Ok(out)
}

/// Reads records up to (but excluding) the state `stop_at`: a state
/// identifier is a log tail, so it covers records whose frames lie strictly
/// below it.
pub fn read_until(dev: &Arc<dyn Device>, stop_at: Option<Lsn>) -> DbResult<Vec<(Lsn, WalRecord)>> {
    let mut out = Vec::new();
    for (lsn, rec, _) in read_all(dev)? {
        if let Some(limit) = stop_at {
            if lsn >= limit {
                break;
            }
        }
        out.push((lsn, rec));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::value::Value;

    fn dev() -> Arc<dyn Device> {
        Arc::new(MemDevice::new())
    }

    fn insert_op(i: i64) -> RowOp {
        RowOp::Insert { table: "t".into(), row: vec![Value::Int(i)] }
    }

    #[test]
    fn append_and_replay() {
        let d = dev();
        {
            let (wal, recs) = Wal::open(Arc::clone(&d)).unwrap();
            assert!(recs.is_empty());
            wal.append(&WalRecord::Commit {
                txid: 1,
                participants: vec![],
                ops: vec![insert_op(1)],
            })
            .unwrap();
            wal.append(&WalRecord::Decide { txid: 2, commit: false }).unwrap();
        }
        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].1, WalRecord::Commit { txid: 1, .. }));
        assert!(matches!(recs[1].1, WalRecord::Decide { txid: 2, commit: false }));
    }

    #[test]
    fn append_returns_advancing_state_ids() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let a = wal.append(&WalRecord::Checkpoint { generation: 1 }).unwrap();
        let b = wal.append(&WalRecord::Checkpoint { generation: 2 }).unwrap();
        assert!(a > 0, "state id covers the first record");
        assert!(b > a);
        assert_eq!(wal.tail_lsn(), b, "append returns the new tail");
    }

    #[test]
    fn torn_tail_is_truncated() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        wal.append(&WalRecord::Commit { txid: 1, participants: vec![], ops: vec![insert_op(1)] })
            .unwrap();
        let good_end = wal.tail_lsn();
        // Simulate a torn write: a header promising more bytes than exist.
        d.write_at(good_end, &[200, 0, 0, 0, 1, 2, 3, 4, 9, 9]).unwrap();

        let (wal2, recs) = Wal::open(Arc::clone(&d)).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, 0, "record frames start at offset zero");
        assert_eq!(wal2.tail_lsn(), good_end, "torn frame must be truncated");
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let first_end = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        // Flip a payload byte of the second record (which starts at the
        // first record's end).
        let mut b = [0u8; 1];
        d.read_at(first_end + FRAME_HEADER as u64, &mut b).unwrap();
        d.write_at(first_end + FRAME_HEADER as u64, &[b[0] ^ 0xFF]).unwrap();

        let (_, recs) = Wal::open(d).unwrap();
        assert_eq!(recs.len(), 1, "corrupt record and everything after is dropped");
    }

    #[test]
    fn read_until_respects_state_semantics() {
        let d = dev();
        let (wal, _) = Wal::open(Arc::clone(&d)).unwrap();
        let a = wal.append(&WalRecord::Decide { txid: 1, commit: true }).unwrap();
        let b = wal.append(&WalRecord::Decide { txid: 2, commit: true }).unwrap();
        wal.append(&WalRecord::Decide { txid: 3, commit: true }).unwrap();

        // A state id covers exactly the records logged before it.
        assert_eq!(read_until(&d, Some(a)).unwrap().len(), 1);
        assert_eq!(read_until(&d, Some(b)).unwrap().len(), 2);
        assert_eq!(read_until(&d, None).unwrap().len(), 3);
        assert_eq!(read_until(&d, Some(0)).unwrap().len(), 0);
    }

    #[test]
    fn record_roundtrip_all_variants() {
        let records = vec![
            WalRecord::Ddl(insert_op(0)),
            WalRecord::Commit {
                txid: 9,
                participants: vec!["dlfm@srv1".into(), "dlfm@srv2".into()],
                ops: vec![insert_op(1), insert_op(2)],
            },
            WalRecord::Prepare { txid: 10, ops: vec![insert_op(3)] },
            WalRecord::Decide { txid: 10, commit: true },
            WalRecord::Checkpoint { generation: 3 },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
    }
}
