//! Hand-rolled binary codec for log records, snapshots and repository rows.
//!
//! Database logs want a self-contained, versioned, checksummed format with
//! no reflection overhead, so the codec is explicit: little-endian fixed
//! width integers, length-prefixed byte strings, one tag byte per value.
//! A CRC-32 (IEEE, table-driven) guards every framed record.

use crate::error::{DbError, DbResult};
use crate::value::{Column, ColumnType, Row, Schema, Value};

/// CRC-32 (IEEE 802.3) lookup table, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// Computes the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only byte sink with typed put operations.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Enc { buf: Vec::with_capacity(cap) }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over a byte slice with typed take operations.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DbError::Corrupt(format!(
                "decode underrun: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> DbResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> DbResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn get_i64(&mut self) -> DbResult<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn get_f64(&mut self) -> DbResult<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn get_bool(&mut self) -> DbResult<bool> {
        Ok(self.get_u8()? != 0)
    }

    pub fn get_bytes(&mut self) -> DbResult<Vec<u8>> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    pub fn get_str(&mut self) -> DbResult<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|e| DbError::Corrupt(format!("invalid utf8: {e}")))
    }
}

// --- Value / Row / Schema codecs -------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_DATALINK: u8 = 6;

pub fn put_value(enc: &mut Enc, v: &Value) {
    match v {
        Value::Null => enc.put_u8(TAG_NULL),
        Value::Int(i) => {
            enc.put_u8(TAG_INT);
            enc.put_i64(*i);
        }
        Value::Float(f) => {
            enc.put_u8(TAG_FLOAT);
            enc.put_f64(*f);
        }
        Value::Bool(b) => {
            enc.put_u8(TAG_BOOL);
            enc.put_bool(*b);
        }
        Value::Text(s) => {
            enc.put_u8(TAG_TEXT);
            enc.put_str(s);
        }
        Value::Bytes(b) => {
            enc.put_u8(TAG_BYTES);
            enc.put_bytes(b);
        }
        Value::DataLink(u) => {
            enc.put_u8(TAG_DATALINK);
            enc.put_str(u);
        }
    }
}

pub fn get_value(dec: &mut Dec<'_>) -> DbResult<Value> {
    Ok(match dec.get_u8()? {
        TAG_NULL => Value::Null,
        TAG_INT => Value::Int(dec.get_i64()?),
        TAG_FLOAT => Value::Float(dec.get_f64()?),
        TAG_BOOL => Value::Bool(dec.get_bool()?),
        TAG_TEXT => Value::Text(dec.get_str()?),
        TAG_BYTES => Value::Bytes(dec.get_bytes()?),
        TAG_DATALINK => Value::DataLink(dec.get_str()?),
        t => return Err(DbError::Corrupt(format!("unknown value tag {t}"))),
    })
}

pub fn put_row(enc: &mut Enc, row: &Row) {
    enc.put_u32(row.len() as u32);
    for v in row {
        put_value(enc, v);
    }
}

pub fn get_row(dec: &mut Dec<'_>) -> DbResult<Row> {
    let n = dec.get_u32()? as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(dec)?);
    }
    Ok(row)
}

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Bool => 2,
        ColumnType::Text => 3,
        ColumnType::Bytes => 4,
        ColumnType::DataLink => 5,
    }
}

fn column_type_from_tag(tag: u8) -> DbResult<ColumnType> {
    Ok(match tag {
        0 => ColumnType::Int,
        1 => ColumnType::Float,
        2 => ColumnType::Bool,
        3 => ColumnType::Text,
        4 => ColumnType::Bytes,
        5 => ColumnType::DataLink,
        t => return Err(DbError::Corrupt(format!("unknown column type tag {t}"))),
    })
}

pub fn put_schema(enc: &mut Enc, schema: &Schema) {
    enc.put_str(&schema.table);
    enc.put_u32(schema.columns.len() as u32);
    for col in &schema.columns {
        enc.put_str(&col.name);
        enc.put_u8(column_type_tag(col.ty));
        enc.put_bool(col.nullable);
    }
    enc.put_u32(schema.primary_key as u32);
}

pub fn get_schema(dec: &mut Dec<'_>) -> DbResult<Schema> {
    let table = dec.get_str()?;
    let ncols = dec.get_u32()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = dec.get_str()?;
        let ty = column_type_from_tag(dec.get_u8()?)?;
        let nullable = dec.get_bool()?;
        columns.push(Column { name, ty, nullable });
    }
    let primary_key = dec.get_u32()? as usize;
    if primary_key >= columns.len() {
        return Err(DbError::Corrupt("primary key index out of range".into()));
    }
    Ok(Schema { table, columns, primary_key })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_roundtrip() {
        let mut enc = Enc::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_i64(-42);
        enc.put_f64(3.25);
        enc.put_bool(true);
        enc.put_str("hello");
        enc.put_bytes(&[1, 2, 3]);
        let bytes = enc.into_bytes();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_f64().unwrap(), 3.25);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_str().unwrap(), "hello");
        assert_eq!(dec.get_bytes().unwrap(), vec![1, 2, 3]);
        assert!(dec.is_done());
    }

    #[test]
    fn underrun_is_reported_not_panicking() {
        let mut dec = Dec::new(&[1, 2]);
        assert!(matches!(dec.get_u64(), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let values = vec![
            Value::Null,
            Value::Int(-7),
            Value::Float(1.5),
            Value::Bool(true),
            Value::Text("τext".into()),
            Value::Bytes(vec![0, 255, 127]),
            Value::DataLink("dlfs://srv/a/b".into()),
        ];
        let mut enc = Enc::new();
        put_row(&mut enc, &values);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(get_row(&mut dec).unwrap(), values);
    }

    #[test]
    fn nan_float_roundtrips_bitwise() {
        let mut enc = Enc::new();
        put_value(&mut enc, &Value::Float(f64::NAN));
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        match get_value(&mut dec).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn schema_roundtrip() {
        let schema = Schema::new(
            "emp",
            vec![
                Column::new("id", ColumnType::Int),
                Column::nullable("picture", ColumnType::DataLink),
                Column::nullable("note", ColumnType::Text),
            ],
            "id",
        )
        .unwrap();
        let mut enc = Enc::new();
        put_schema(&mut enc, &schema);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(get_schema(&mut dec).unwrap(), schema);
    }

    #[test]
    fn bad_tags_are_corruption_errors() {
        let mut dec = Dec::new(&[99]);
        assert!(matches!(get_value(&mut dec), Err(DbError::Corrupt(_))));
    }
}
