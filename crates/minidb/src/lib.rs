//! Embedded transactional relational engine — the host-RDBMS substrate for
//! the DataLinks reproduction.
//!
//! The ICDE 2001 paper assumes DB2 UDB underneath: transactional DML on
//! tables holding DATALINK columns, sub-transaction (two-phase commit)
//! enrollment of the DataLinks File Manager, log sequence numbers usable as
//! *database state identifiers* for coordinated file archiving (§4.4), and
//! point-in-time restore. `dl-minidb` provides those facilities:
//!
//! * **Storage model** — committed table data lives in memory; durability
//!   comes from a redo-only write-ahead log plus ping-pong snapshots
//!   (deferred-update architecture: transactions buffer writes privately and
//!   apply them at commit, so recovery never needs undo). The log runs a
//!   leader/follower group-commit pipeline ([`WalOptions`], via
//!   [`DbOptions::wal`](db::DbOptions)): concurrent committers share one
//!   device write + sync without ever being acknowledged before their own
//!   frame is durable.
//! * **Concurrency control** — strict two-phase locking with table-level
//!   intent locks, row-level S/X locks, and wait-for-graph deadlock
//!   detection.
//! * **Transactions** — `begin`/`commit`/`abort`, plus an explicit
//!   `prepare`/`commit_prepared` path so a database instance can act as a
//!   2PC *participant* (DLFM's repository does exactly this, per the
//!   companion SIGMOD 2000 paper "DLFM: A Transactional Resource Manager").
//! * **Coordinator hooks** — external resource managers enlist in a host
//!   transaction via [`Participant`] and are driven through
//!   prepare/commit/abort; the commit decision is logged before participants
//!   are told to commit, and recovery surfaces decided-but-unacknowledged
//!   transactions for the orchestrator to finish.
//! * **DML observers** — synchronous hooks invoked during statement
//!   execution (the seam where the DataLinks engine intercepts DATALINK
//!   column changes and turns them into link/unlink sub-transactions).
//! * **Backup / point-in-time restore** — fork the storage environment and
//!   replay the log up to a chosen LSN (§4.4's coordinated restore).
//! * **Log shipping** — [`WalReader`] tails the live log (the group-commit
//!   leader publishes the durable watermark after every batch sync) and
//!   [`replica::StandbyDb`] is the apply-only receiving end: physical
//!   replication with byte-identical standby logs, promotable by plain
//!   `Database::open` (the `dl-repl` crate builds on these).
//! * **Checkpoint shipping & bounded logs** — a snapshot is a complete
//!   recovery image (format v2), so
//!   [`Database::checkpoint_and_truncate`](db::Database::checkpoint_and_truncate)
//!   can drop the log below the snapshot's base (crash-safe slot-flip,
//!   [`wal::Wal::truncate_below`]); [`DbOptions::checkpoint_every_bytes`](db::DbOptions)
//!   automates it. A [`ReplicationFeed`] couples the WAL reader with the
//!   checkpoint images so standbys do *delta catch-up* (install the latest
//!   image, tail only the suffix) and truncate their own logs in lockstep.

pub mod backup;
pub mod codec;
pub mod db;
pub mod device;
pub mod error;
pub mod lock;
pub mod ops;
pub mod replica;
pub mod snapshot;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

pub use db::{
    Database, DbOptions, DbTelemetry, DmlEvent, DmlObserver, InjectedDml, OpKind, Participant,
};
pub use device::{Device, DiskFaults, FileDevice, MemDevice, StorageEnv};
pub use error::{DbError, DbResult};
pub use lock::LockMode;
pub use ops::RowOp;
pub use replica::{ReplicationFeed, StandbyDb};
pub use snapshot::SnapshotData;
pub use txn::Txn;
pub use value::{Column, ColumnType, Row, Schema, Value};
pub use wal::{Lsn, ShippedFrames, TxId, WalOptions, WalReader, WalTelemetry};
