//! In-memory committed table storage with secondary indexes.
//!
//! Rows live in a `BTreeMap` keyed by primary key, so scans are ordered and
//! point lookups are logarithmic. Secondary indexes map column values to the
//! set of primary keys holding them and are maintained eagerly on apply.
//! Only *committed* data ever enters a `TableStore` — transactions buffer
//! their writes privately until commit (deferred update).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::error::{DbError, DbResult};
use crate::value::{Row, Schema, Value};

/// Committed rows and indexes of one table.
#[derive(Debug, Clone)]
pub struct TableStore {
    pub schema: Schema,
    rows: BTreeMap<Value, Row>,
    /// column index -> (value -> set of primary keys)
    indexes: HashMap<usize, BTreeMap<Value, BTreeSet<Value>>>,
}

impl TableStore {
    pub fn new(schema: Schema) -> Self {
        TableStore { schema, rows: BTreeMap::new(), indexes: HashMap::new() }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds (and back-fills) a secondary index on `column`.
    pub fn create_index(&mut self, column: &str) -> DbResult<()> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_string()))?;
        if self.indexes.contains_key(&col) {
            return Ok(()); // idempotent: replay may re-create
        }
        let mut index: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
        for (key, row) in &self.rows {
            index.entry(row[col].clone()).or_default().insert(key.clone());
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// True if `column` has a secondary index.
    pub fn has_index(&self, column: &str) -> bool {
        self.schema.column_index(column).is_some_and(|c| self.indexes.contains_key(&c))
    }

    pub fn get(&self, key: &Value) -> Option<&Row> {
        self.rows.get(key)
    }

    pub fn contains(&self, key: &Value) -> bool {
        self.rows.contains_key(key)
    }

    /// Ordered iterator over (key, row).
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Row)> {
        self.rows.iter()
    }

    /// Primary keys whose `column` equals `value`, via index when present,
    /// otherwise by scan.
    pub fn find_equal(&self, column: &str, value: &Value) -> DbResult<Vec<Value>> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_string()))?;
        if let Some(index) = self.indexes.get(&col) {
            Ok(index.get(value).map(|keys| keys.iter().cloned().collect()).unwrap_or_default())
        } else {
            Ok(self
                .rows
                .iter()
                .filter(|(_, row)| &row[col] == value)
                .map(|(k, _)| k.clone())
                .collect())
        }
    }

    /// Inserts a committed row. The caller has already validated the schema
    /// and uniqueness under locks; replay trusts the log.
    pub fn apply_insert(&mut self, row: Row) {
        let key = self.schema.key_of(&row);
        for (col, index) in &mut self.indexes {
            index.entry(row[*col].clone()).or_default().insert(key.clone());
        }
        self.rows.insert(key, row);
    }

    /// Replaces the committed row at `key`.
    pub fn apply_update(&mut self, key: &Value, row: Row) {
        if let Some(old) = self.rows.get(key) {
            for (col, index) in &mut self.indexes {
                let old_val = &old[*col];
                let new_val = &row[*col];
                if old_val != new_val {
                    if let Some(set) = index.get_mut(old_val) {
                        set.remove(key);
                        if set.is_empty() {
                            index.remove(old_val);
                        }
                    }
                    index.entry(new_val.clone()).or_default().insert(key.clone());
                }
            }
        }
        self.rows.insert(key.clone(), row);
    }

    /// Removes the committed row at `key`.
    pub fn apply_delete(&mut self, key: &Value) {
        if let Some(old) = self.rows.remove(key) {
            for (col, index) in &mut self.indexes {
                if let Some(set) = index.get_mut(&old[*col]) {
                    set.remove(key);
                    if set.is_empty() {
                        index.remove(&old[*col]);
                    }
                }
            }
        }
    }

    /// Columns carrying secondary indexes (snapshot serialization).
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> =
            self.indexes.keys().map(|c| self.schema.columns[*c].name.clone()).collect();
        cols.sort();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType};

    fn store() -> TableStore {
        let schema = Schema::new(
            "emp",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("dept", ColumnType::Text),
                Column::nullable("picture", ColumnType::DataLink),
            ],
            "id",
        )
        .unwrap();
        TableStore::new(schema)
    }

    fn emp(id: i64, dept: &str) -> Row {
        vec![Value::Int(id), Value::Text(dept.into()), Value::Null]
    }

    #[test]
    fn insert_get_delete() {
        let mut s = store();
        s.apply_insert(emp(1, "eng"));
        assert_eq!(s.get(&Value::Int(1)).unwrap()[1], Value::Text("eng".into()));
        assert_eq!(s.len(), 1);
        s.apply_delete(&Value::Int(1));
        assert!(s.get(&Value::Int(1)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn update_replaces() {
        let mut s = store();
        s.apply_insert(emp(1, "eng"));
        s.apply_update(&Value::Int(1), emp(1, "sales"));
        assert_eq!(s.get(&Value::Int(1)).unwrap()[1], Value::Text("sales".into()));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn scan_is_key_ordered() {
        let mut s = store();
        s.apply_insert(emp(3, "a"));
        s.apply_insert(emp(1, "b"));
        s.apply_insert(emp(2, "c"));
        let keys: Vec<i64> = s.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn index_backfills_and_maintains() {
        let mut s = store();
        s.apply_insert(emp(1, "eng"));
        s.apply_insert(emp(2, "eng"));
        s.apply_insert(emp(3, "sales"));
        s.create_index("dept").unwrap();
        assert!(s.has_index("dept"));

        let eng = s.find_equal("dept", &Value::Text("eng".into())).unwrap();
        assert_eq!(eng, vec![Value::Int(1), Value::Int(2)]);

        s.apply_update(&Value::Int(2), emp(2, "sales"));
        let eng = s.find_equal("dept", &Value::Text("eng".into())).unwrap();
        assert_eq!(eng, vec![Value::Int(1)]);
        let sales = s.find_equal("dept", &Value::Text("sales".into())).unwrap();
        assert_eq!(sales.len(), 2);

        s.apply_delete(&Value::Int(3));
        let sales = s.find_equal("dept", &Value::Text("sales".into())).unwrap();
        assert_eq!(sales, vec![Value::Int(2)]);
    }

    #[test]
    fn find_equal_without_index_scans() {
        let mut s = store();
        s.apply_insert(emp(1, "eng"));
        s.apply_insert(emp(2, "ops"));
        let hits = s.find_equal("dept", &Value::Text("ops".into())).unwrap();
        assert_eq!(hits, vec![Value::Int(2)]);
    }

    #[test]
    fn find_on_missing_column_errors() {
        let s = store();
        assert!(matches!(s.find_equal("nope", &Value::Int(0)), Err(DbError::NoSuchColumn(_))));
    }

    #[test]
    fn create_index_is_idempotent() {
        let mut s = store();
        s.apply_insert(emp(1, "eng"));
        s.create_index("dept").unwrap();
        s.create_index("dept").unwrap();
        assert_eq!(s.indexed_columns(), vec!["dept".to_string()]);
    }
}
