//! Backup and point-in-time restore helpers.
//!
//! A backup is a transaction-consistent fork of the storage environment
//! ([`crate::Database::backup`]). Restoring never consumes the backup: the
//! functions here fork it again, so one backup image supports any number of
//! restores to any number of points in time — exactly what §4.4's
//! "database may be restored to a specific time in the past for auditing
//! purposes" requires.

use crate::db::{Database, DbOptions};
use crate::device::StorageEnv;
use crate::error::DbResult;
use crate::wal::Lsn;

/// Restores the newest committed state in `backup`.
pub fn restore_latest(backup: &StorageEnv) -> DbResult<Database> {
    Database::open(backup.fork()?)
}

/// Restores the state as of `lsn` (commits with LSN ≤ `lsn` are included).
pub fn restore_to_lsn(backup: &StorageEnv, lsn: Lsn) -> DbResult<Database> {
    Database::open_with(backup.fork()?, DbOptions { stop_at_lsn: Some(lsn), ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType, Row, Schema, Value};

    fn setup() -> (Database, Vec<Lsn>) {
        let db = Database::open(StorageEnv::mem()).unwrap();
        db.create_table(
            Schema::new(
                "pages",
                vec![Column::new("url", ColumnType::Text), Column::new("rev", ColumnType::Int)],
                "url",
            )
            .unwrap(),
        )
        .unwrap();
        let mut lsns = Vec::new();
        for rev in 0..5i64 {
            let mut tx = db.begin();
            let row: Row = vec![Value::Text("/index.html".into()), Value::Int(rev)];
            if rev == 0 {
                tx.insert("pages", row).unwrap();
            } else {
                tx.update("pages", &Value::Text("/index.html".into()), row).unwrap();
            }
            lsns.push(tx.commit().unwrap());
        }
        (db, lsns)
    }

    fn rev_of(db: &Database) -> i64 {
        db.get_committed("pages", &Value::Text("/index.html".into())).unwrap().unwrap()[1]
            .as_int()
            .unwrap()
    }

    #[test]
    fn restore_latest_matches_source() {
        let (db, _) = setup();
        let backup = db.backup().unwrap();
        let restored = restore_latest(&backup).unwrap();
        assert_eq!(rev_of(&restored), 4);
    }

    #[test]
    fn restore_to_each_historical_lsn() {
        let (db, lsns) = setup();
        let backup = db.backup().unwrap();
        for (rev, lsn) in lsns.iter().enumerate() {
            let restored = restore_to_lsn(&backup, *lsn).unwrap();
            assert_eq!(rev_of(&restored), rev as i64, "state at lsn {lsn}");
        }
    }

    #[test]
    fn one_backup_supports_many_restores() {
        let (db, lsns) = setup();
        let backup = db.backup().unwrap();
        let a = restore_to_lsn(&backup, lsns[1]).unwrap();
        let b = restore_to_lsn(&backup, lsns[3]).unwrap();
        let c = restore_latest(&backup).unwrap();
        assert_eq!(rev_of(&a), 1);
        assert_eq!(rev_of(&b), 3);
        assert_eq!(rev_of(&c), 4);
    }

    #[test]
    fn restored_database_accepts_new_writes() {
        let (db, lsns) = setup();
        let backup = db.backup().unwrap();
        let restored = restore_to_lsn(&backup, lsns[2]).unwrap();
        let mut tx = restored.begin();
        tx.update(
            "pages",
            &Value::Text("/index.html".into()),
            vec![Value::Text("/index.html".into()), Value::Int(99)],
        )
        .unwrap();
        tx.commit().unwrap();
        assert_eq!(rev_of(&restored), 99);
        // Original untouched.
        assert_eq!(rev_of(&db), 4);
    }
}
