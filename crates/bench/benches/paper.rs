//! Criterion benches, one group per paper experiment (see DESIGN.md and the
//! `report` binary for the full-table variants).
//!
//! Run with `cargo bench -p dl-bench`; filter by experiment id, e.g.
//! `cargo bench -p dl-bench -- e1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dl_bench::{fixture, make_content, FixtureOptions, APP, SRV, TABLE};
use dl_core::{ControlMode, TokenKind};
use dl_fskit::memfs::IoModel;
use dl_fskit::OpenOptions;
use dl_minidb::Value;

/// E1 — DATALINK retrieval with and without token generation (§3.2).
fn bench_e1_select_datalink(c: &mut Criterion) {
    let f = fixture(FixtureOptions::default());
    let mut group = c.benchmark_group("e1_select_datalink");
    group.bench_function("select_url_only", |b| {
        b.iter(|| f.sys.select_datalink_url(TABLE, &Value::Int(0), "body").unwrap())
    });
    group.bench_function("select_with_token", |b| {
        b.iter(|| f.sys.select_datalink(TABLE, &Value::Int(0), "body", TokenKind::Read).unwrap())
    });
    group.finish();
}

/// E2 — open/read/close of a small file: plain vs DataLinks-managed (§3.2).
fn bench_e2_open_close(c: &mut Criterion) {
    let f = fixture(FixtureOptions { file_size: 1024, ..Default::default() });
    f.sys.raw_fs(SRV).unwrap().write_file(&APP, "/data/control.bin", &make_content(1024)).unwrap();
    let mut group = c.benchmark_group("e2_open_read_close_1k");
    group.bench_function("plain", |b| b.iter(|| f.plain_read("/data/control.bin")));
    group.bench_function("rdd_linked", |b| b.iter(|| f.managed_read(0)));
    group.finish();
}

/// E3 — full-file read, linked vs plain, across sizes (§3.2). CPU-only here;
/// the `report` binary adds the disk-model arm.
fn bench_e3_read_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_read_sweep");
    group.sample_size(10);
    for size_kib in [64usize, 1024, 4096] {
        let f = fixture(FixtureOptions {
            file_size: size_kib * 1024,
            n_files: 1,
            io: IoModel::default(),
            ..Default::default()
        });
        f.sys
            .raw_fs(SRV)
            .unwrap()
            .write_file(&APP, "/data/control.bin", &make_content(size_kib * 1024))
            .unwrap();
        group.throughput(Throughput::Bytes((size_kib * 1024) as u64));
        group.bench_with_input(BenchmarkId::new("plain", size_kib), &size_kib, |b, _| {
            b.iter(|| f.plain_read("/data/control.bin"))
        });
        group.bench_with_input(BenchmarkId::new("linked", size_kib), &size_kib, |b, _| {
            b.iter(|| f.managed_read(0))
        });
    }
    group.finish();
}

/// E4 — open-for-write latency by control mode (§5).
fn bench_e4_open_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_open_write");
    {
        let f = fixture(FixtureOptions { n_files: 1, ..Default::default() });
        let raw = f.sys.raw_fs(SRV).unwrap();
        raw.write_file(&APP, "/data/unmanaged.bin", b"x").unwrap();
        let fs = f.sys.fs(SRV).unwrap();
        group.bench_function("plain", |b| {
            b.iter(|| {
                let fd = fs.open(&APP, "/data/unmanaged.bin", OpenOptions::write_only()).unwrap();
                fs.close(fd).unwrap();
            })
        });
    }
    for mode in [ControlMode::Rfd, ControlMode::Rdd] {
        let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
        let fs = f.sys.fs(SRV).unwrap();
        let path = f.token_path(0, TokenKind::Write);
        group.bench_function(mode.to_string(), |b| {
            b.iter(|| {
                let fd = fs.open(&APP, &path, OpenOptions::write_only()).unwrap();
                fs.close(fd).unwrap();
            })
        });
    }
    group.finish();
}

/// A3 — read-open path: rfd (no upcalls) vs rdd (token + sync entries).
fn bench_a3_read_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_read_open");
    for mode in [ControlMode::Rfd, ControlMode::Rdd] {
        let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
        let fs = f.sys.fs(SRV).unwrap();
        let path = if mode == ControlMode::Rdd {
            f.token_path(0, TokenKind::Read)
        } else {
            f.paths[0].clone()
        };
        group.bench_function(mode.to_string(), |b| {
            b.iter(|| {
                let fd = fs.open(&APP, &path, OpenOptions::read_only()).unwrap();
                fs.close(fd).unwrap();
            })
        });
    }
    group.finish();
}

/// A4 — Sync-table read tracking on/off (§4.5).
fn bench_a4_sync_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_sync_table");
    for track in [true, false] {
        let f = fixture(FixtureOptions {
            mode: ControlMode::Rdd,
            n_files: 1,
            track_read_sync: track,
            ..Default::default()
        });
        let fs = f.sys.fs(SRV).unwrap();
        let path = f.token_path(0, TokenKind::Read);
        group.bench_function(if track { "tracking_on" } else { "tracking_off" }, |b| {
            b.iter(|| {
                let fd = fs.open(&APP, &path, OpenOptions::read_only()).unwrap();
                fs.close(fd).unwrap();
            })
        });
    }
    group.finish();
}

/// A5 — close latency with async vs sync archiving (§4.4).
fn bench_a5_archive(c: &mut Criterion) {
    let mut group = c.benchmark_group("a5_update_cycle_64k");
    group.sample_size(10);
    for sync in [false, true] {
        let f = fixture(FixtureOptions {
            n_files: 1,
            file_size: 64 * 1024,
            sync_archive: sync,
            ..Default::default()
        });
        let content = make_content(64 * 1024);
        group.bench_function(if sync { "sync_archive" } else { "async_archive" }, |b| {
            b.iter(|| f.managed_update(0, &content))
        });
    }
    group.finish();
}

/// Full update-in-place cycle (the headline operation of the paper).
fn bench_update_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("uip_full_cycle");
    group.sample_size(20);
    for size_kib in [4usize, 64] {
        let f = fixture(FixtureOptions {
            n_files: 1,
            file_size: size_kib * 1024,
            ..Default::default()
        });
        let content = make_content(size_kib * 1024);
        group.bench_with_input(BenchmarkId::new("rdd", size_kib), &size_kib, |b, _| {
            b.iter(|| f.managed_update(0, &content))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_e1_select_datalink,
    bench_e2_open_close,
    bench_e3_read_sweep,
    bench_e4_open_write,
    bench_a3_read_path,
    bench_a4_sync_table,
    bench_a5_archive,
    bench_update_cycle,
);
criterion_main!(benches);
