//! The scenario-lab engine: drives `dl-lab` trial plans against a live
//! [`DataLinksSystem`] and renders the results through the same
//! [`Table`] / `BENCH_<id>.json` pipeline as the `report` binary.
//!
//! A scenario's [`Kind`] selects the engine loop:
//!
//! * [`Kind::CommitThroughput`] — the a9 sweep: bare-DB vs full-stack
//!   commit rate, per-commit sync vs group commit, one variant per
//!   committer count.
//! * [`Kind::Replication`] — the a10 sweep: routed reads vs replica
//!   count, lag drain, failover with link-state preservation.
//! * [`Kind::CheckpointShipping`] — the a11 arms: WAL retention budgets
//!   and fresh-standby delta catch-up.
//! * [`Kind::FrontEnd`] — the a12 arms: upcall-pool bursts and agent
//!   churn, fixed vs adaptive, thread-per-agent vs shared executor.
//! * [`Kind::Mixed`] — the generic client-mix loop with fault-injection
//!   points (crash the primary at op N, stall/resume a standby, kill
//!   upcall workers, exhaust the repository or host disk, shear the host
//!   WAL tail at a crash boundary).
//! * [`Kind::Sharding`] — the a13 sweep: write-cycle throughput vs shard
//!   count through the sharded DLFM front, fan-out proven off the
//!   per-shard registry counters.
//! * [`Kind::WireFrontEnd`] — the a14 arms: connection-scale churn over
//!   real Unix sockets (`Transport::Socket`), with a `sever_connections`
//!   injection cutting live connections mid-2PC; the in-doubt claims must
//!   resolve by presumed abort with zero atomicity violations, proven off
//!   the `net.*` registry instruments.
//!
//! Everything the old bespoke a9–a12 runners *asserted* is emitted here
//! as a named **metric**; the acceptance thresholds live in the scenario
//! file's `"assert"` list ([`check_asserts`]). Row labels come verbatim
//! from the scenario's variant labels, so `report --compare` keys rows
//! exactly as it did against the pre-lab BENCH history.
//!
//! Metric aggregation across `variant × repeat` trials: counter-like
//! metrics (`ops_failed`, `failovers`, `stale_reads`, ...) are summed,
//! gauge-like metrics (`failover_ms`, `max_os_threads`, ...) take the
//! max, and invariant flags (`lag_drained`, `links_preserved`, ...) take
//! the min — one bad trial fails the predicate.
//!
//! The mixed engine additionally captures the system's telemetry snapshot
//! ([`DataLinksSystem::metrics`]) at the end of every trial. Snapshots
//! merge across trials ([`Snapshot::merge`]: counters add, gauges keep
//! the max, histograms merge bucket-wise) and flatten into the same
//! metric map ([`Snapshot::flatten`]), so a scenario predicate can name
//! any exported registry metric — `dlfm_srv1_stale_coord_rejections`,
//! `engine_freshness_wait_ns_p99`, `repl_srv1_records_shipped`, ... —
//! exactly as it appears in the text exposition. Per-op latency rides the
//! same pipe as the `lab.op_latency_ns` histogram, surfaced as
//! `op_p50_ms` / `op_p99_ms` / `op_mean_ms` beside the mean-rate columns.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dl_core::{
    ControlMode, DataLinksSystem, DlColumnOptions, FileServerSpec, ShardRouter, TokenKind,
};
use dl_dlfm::{FaultInjector, Transport, UpcallRequest, WireAgent};
use dl_fskit::{Cred, OpenOptions};
use dl_lab::{expand, InjectAction, Kind, LabRng, Params, Plan, ReadRoute, Scenario, TrialSpec};
use dl_minidb::{Column, ColumnType, Database, DbOptions, Schema, StorageEnv, Value, WalOptions};
use dl_obs::{Histogram, HistogramSnapshot, Snapshot};

use crate::experiments::Table;
use crate::{
    fixture, fixture_with_faults, fmt_ns, make_content, run_threads, time_once, Fixture,
    FixtureOptions, APP, SRV, TABLE,
};

/// One executed scenario: the printable/comparable table plus the metric
/// map its predicates are evaluated against.
pub struct ScenarioRun {
    pub table: Table,
    pub metrics: BTreeMap<String, f64>,
}

/// The outcome of one scenario-declared assertion.
pub struct AssertOutcome {
    /// `metric op value`, plus the measured value (or why it's missing).
    pub text: String,
    pub pass: bool,
}

/// Expands the scenario into its trial plan and drives every trial
/// through the kind's engine loop.
pub fn run_scenario(sc: &Scenario, quick: bool) -> Result<ScenarioRun, String> {
    let plan = expand(sc, quick).map_err(|e| e.to_string())?;
    let mut run = match sc.kind {
        Kind::CommitThroughput => commit_throughput(sc, &plan),
        Kind::Replication => replication(sc, &plan),
        Kind::CheckpointShipping => checkpoint_shipping(sc, &plan),
        Kind::FrontEnd => front_end(sc, &plan),
        Kind::Mixed => mixed(sc, &plan),
        Kind::Sharding => sharding(sc, &plan),
        Kind::WireFrontEnd => wire_front_end(sc, &plan),
    }?;
    if let Some(title) = &sc.title {
        run.table.title = title.clone();
    }
    run.table.notes.extend(sc.notes.iter().cloned());
    Ok(run)
}

/// Evaluates the scenario's declared predicates against the metric map.
/// A predicate naming a metric the driver never emitted **fails** — a
/// typo must not read as a pass.
pub fn check_asserts(sc: &Scenario, metrics: &BTreeMap<String, f64>) -> Vec<AssertOutcome> {
    sc.asserts
        .iter()
        .map(|p| match metrics.get(&p.metric) {
            Some(&m) => AssertOutcome { text: format!("{p}  (measured {m})"), pass: p.holds(m) },
            None => AssertOutcome {
                text: format!(
                    "{p}  (metric {:?} was not emitted; known metrics: {})",
                    p.metric,
                    metrics.keys().cloned().collect::<Vec<_>>().join(", ")
                ),
                pass: false,
            },
        })
        .collect()
}

fn s(x: impl ToString) -> String {
    x.to_string()
}

fn need(sc: &Scenario, t: &TrialSpec, knob: &str, v: Option<u64>) -> Result<u64, String> {
    v.ok_or_else(|| {
        format!(
            "scenario {} ({}): variant {:?} is missing the {knob:?} knob its {} driver needs",
            sc.name,
            sc.file,
            t.variant,
            sc.kind.as_str()
        )
    })
}

/// The plan's trials, grouped per variant (expansion is variant-major).
fn per_variant(sc: &Scenario, plan: &Plan) -> Vec<Vec<TrialSpec>> {
    plan.trials.chunks(sc.repeats.max(1) as usize).map(|c| c.to_vec()).collect()
}

// ===========================================================================
// commit_throughput — the a9 engine loop
// ===========================================================================

/// Committed txns/sec of the bare database: `threads` committers each run
/// `commits` single-row insert transactions against a WAL device with the
/// given deterministic sync latency.
fn bare_db_commit_rate(
    threads: usize,
    commits: usize,
    sync_latency_ns: u64,
    wal: WalOptions,
) -> f64 {
    let env = StorageEnv::mem_with_sync_latency(sync_latency_ns);
    let db = Database::open_with(env, DbOptions { wal, ..Default::default() }).expect("db");
    db.create_table(
        Schema::new(
            "t",
            vec![Column::new("id", ColumnType::Int), Column::new("v", ColumnType::Int)],
            "id",
        )
        .expect("schema"),
    )
    .expect("create table");
    let elapsed = run_threads(threads, |t| {
        for k in 0..commits {
            let mut tx = db.begin();
            tx.insert("t", vec![Value::Int((t * commits + k) as i64), Value::Int(1)])
                .expect("insert");
            tx.commit().expect("commit");
        }
    });
    assert_eq!(db.count("t").expect("count"), threads * commits);
    (threads * commits) as f64 / elapsed.as_secs_f64()
}

/// Committed open/write/close cycles/sec through the full DataLinks stack:
/// each thread updates its own linked file; every cycle drives several
/// repository transactions plus the 2PC host commit, all over WAL devices
/// with the given sync latency.
fn stack_commit_rate(threads: usize, cycles: usize, sync_latency_ns: u64, wal: WalOptions) -> f64 {
    let f = fixture(FixtureOptions {
        n_files: threads,
        file_size: 1024,
        sync_archive: true,
        db: DbOptions { wal, ..Default::default() },
        db_sync_latency_ns: sync_latency_ns,
        ..Default::default()
    });
    let content = make_content(1024);
    let elapsed = run_threads(threads, |t| {
        for _ in 0..cycles {
            f.managed_update_no_wait(t, &content);
        }
    });
    (threads * cycles) as f64 / elapsed.as_secs_f64()
}

fn commit_throughput(sc: &Scenario, plan: &Plan) -> Result<ScenarioRun, String> {
    let per_commit = WalOptions::per_commit_sync();
    let mut rows = Vec::new();
    let mut metrics = BTreeMap::new();
    let p0 = &plan.trials[0].params;
    let (mut title_commits, mut title_cycles) = (0u64, 0u64);
    let title_sync = p0.sync_latency_us.unwrap_or(0);
    for trials in per_variant(sc, plan) {
        let t0 = &trials[0];
        let p = &t0.params;
        let threads = need(sc, t0, "threads", p.threads)? as usize;
        let commits = need(sc, t0, "commits", p.commits)? as usize;
        let cycles = need(sc, t0, "cycles", p.cycles)? as usize;
        let sync_ns = p.sync_latency_us.unwrap_or(0) * 1000;
        (title_commits, title_cycles) = (commits as u64, cycles as u64);
        // The group arm self-tunes its gather window to the committer
        // count (`WalOptions::tuned_for`): zero delay when a batch can't
        // form, a bounded window once followers exist to collect.
        let grouped = WalOptions::tuned_for(threads);
        let (mut bare_per, mut bare_grp, mut stack_per, mut stack_grp) = (0.0, 0.0, 0.0, 0.0);
        for _ in &trials {
            bare_per += bare_db_commit_rate(threads, commits, sync_ns, per_commit);
            bare_grp += bare_db_commit_rate(threads, commits, sync_ns, grouped);
            stack_per += stack_commit_rate(threads, cycles, sync_ns, per_commit);
            stack_grp += stack_commit_rate(threads, cycles, sync_ns, grouped);
        }
        let n = trials.len() as f64;
        let (bare_per, bare_grp) = (bare_per / n, bare_grp / n);
        let (stack_per, stack_grp) = (stack_per / n, stack_grp / n);
        metrics.insert(format!("bare_speedup_t{threads}"), bare_grp / bare_per);
        metrics.insert(format!("stack_speedup_t{threads}"), stack_grp / stack_per);
        rows.push(vec![
            t0.variant.clone(),
            s(format!("{bare_per:.0}")),
            s(format!("{bare_grp:.0}")),
            s(format!("{:.2}x", bare_grp / bare_per)),
            s(format!("{stack_per:.0}")),
            s(format!("{stack_grp:.0}")),
            s(format!("{:.2}x", stack_grp / stack_per)),
        ]);
    }
    metrics.insert("variants".into(), rows.len() as f64);
    Ok(ScenarioRun {
        table: Table {
            id: sc.name.clone(),
            title: format!(
                "commit throughput, per-commit sync vs group commit \
                 ({title_commits} txns/thread bare, {title_cycles} cycles/thread stack, \
                 {title_sync} µs device sync)"
            ),
            header: vec![
                s("threads"),
                s("bare DB commit-sync tx/s"),
                s("bare DB group tx/s"),
                s("bare speedup"),
                s("stack commit-sync cyc/s"),
                s("stack group cyc/s"),
                s("stack speedup"),
            ],
            rows,
            notes: Vec::new(),
        },
        metrics,
    })
}

// ===========================================================================
// replication — the a10 engine loop
// ===========================================================================

fn link_state(sys: &DataLinksSystem, nodes: &[String]) -> Vec<(String, u64)> {
    let mut files: Vec<(String, u64)> = nodes
        .iter()
        .flat_map(|n| sys.node(n).expect("node").server.repository().list_files())
        .map(|e| (e.path, e.cur_version))
        .collect();
    files.sort();
    files
}

fn replication(sc: &Scenario, plan: &Plan) -> Result<ScenarioRun, String> {
    let mut rows = Vec::new();
    let mut metrics = BTreeMap::new();
    let mut baseline_rate = 0.0f64;
    let mut speedup_max = 0.0f64;
    let mut lag_drained = 1.0f64;
    let mut max_lag = 0u64;
    let mut links_preserved = 1.0f64;
    let mut failover_ms = 0.0f64;
    let mut read_lat_all = HistogramSnapshot::default();
    let read_mismatches = AtomicU64::new(0);
    let p0 = &plan.trials[0].params;
    let (title_readers, title_reads, title_sync) =
        (p0.readers.unwrap_or(8), p0.reads_per.unwrap_or(40), p0.sync_latency_us.unwrap_or(0));
    for trials in per_variant(sc, plan) {
        let t0 = &trials[0];
        let p = &t0.params;
        let replicas = need(sc, t0, "replicas", p.replicas)? as usize;
        let readers = need(sc, t0, "readers", p.readers)? as usize;
        let reads_per = need(sc, t0, "reads_per", p.reads_per)? as usize;
        let n_files = p.n_files.unwrap_or(4) as usize;
        let file_size = p.file_size.unwrap_or(2048) as usize;
        let sync_ns = p.sync_latency_us.unwrap_or(0) * 1000;
        let content = make_content(file_size);
        let (mut rate_sum, mut drain_sum, mut failover_sum) = (0.0f64, 0.0f64, 0.0f64);
        let mut failover_cells = (s("--"), s("--"));
        let read_lat = Histogram::new();
        for _ in &trials {
            let f = fixture(FixtureOptions {
                n_files,
                file_size,
                replicas,
                sync_archive: true,
                db_sync_latency_ns: sync_ns,
                ..Default::default()
            });
            // One committed update per file so every replica archive holds
            // the current version's bytes.
            for i in 0..n_files {
                f.managed_update(i, &content);
            }

            // Replication lag after the write burst must drain to zero.
            let mut drained = false;
            let drain = time_once(|| {
                drained = f
                    .sys
                    .wait_replicas_caught_up(SRV, Duration::from_secs(30))
                    .expect("known server");
            });
            if !drained {
                lag_drained = 0.0;
            }
            max_lag = max_lag.max(f.sys.replication_lag(SRV).expect("lag"));

            // Routed reads: token validation + last-committed bytes, spread
            // round-robin over the standbys (all on the primary at 0
            // replicas).
            let elapsed = run_threads(readers, |t| {
                for k in 0..reads_per {
                    let i = (t + k) % n_files;
                    let tp = f.token_path(i, TokenKind::Read);
                    let started = Instant::now();
                    match f.sys.serve_read(SRV, &tp, APP.uid) {
                        Ok(data) if data == content => {}
                        _ => {
                            read_mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    read_lat.record_duration(started.elapsed());
                }
            });
            rate_sum += (readers * reads_per) as f64 / elapsed.as_secs_f64();
            drain_sum += drain.as_nanos() as f64;

            // Failover: promote a standby and check the link state survived.
            if replicas > 0 {
                let Fixture { mut sys, .. } = f;
                let before = link_state(&sys, &[SRV.to_string()]);
                let failover = time_once(|| {
                    sys.fail_over(SRV).expect("failover");
                });
                let after = link_state(&sys, &[SRV.to_string()]);
                let preserved = before == after;
                if !preserved {
                    links_preserved = 0.0;
                }
                // The promoted node serves the same committed bytes.
                let (_, tp) = sys
                    .select_datalink(TABLE, &Value::Int(0), "body", TokenKind::Read)
                    .expect("select after failover");
                match sys.serve_read(SRV, &tp, APP.uid) {
                    Ok(data) if data == content => {}
                    _ => {
                        read_mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                failover_sum += failover.as_nanos() as f64;
                failover_ms = failover_ms.max(failover.as_nanos() as f64 / 1e6);
                failover_cells = (fmt_ns(failover.as_nanos() as f64), s(preserved));
            }
        }
        let n = trials.len() as f64;
        let rate = rate_sum / n;
        if rows.is_empty() {
            baseline_rate = rate;
        }
        speedup_max = speedup_max.max(rate / baseline_rate);
        if replicas > 0 {
            failover_cells.0 = fmt_ns(failover_sum / n);
        }
        let vlat = read_lat.snapshot();
        read_lat_all.merge(&vlat);
        rows.push(vec![
            t0.variant.clone(),
            s(format!("{rate:.0}")),
            s(format!("{:.2}x", rate / baseline_rate)),
            fmt_ns(vlat.percentile(0.99) as f64),
            fmt_ns(drain_sum / n),
            failover_cells.0,
            failover_cells.1,
        ]);
    }
    metrics.insert("read_p99_ms".into(), read_lat_all.percentile(0.99) as f64 / 1e6);
    metrics.insert("read_mean_ms".into(), read_lat_all.mean() / 1e6);
    metrics.insert("lag_drained".into(), lag_drained);
    metrics.insert("max_lag".into(), max_lag as f64);
    metrics.insert("read_mismatches".into(), read_mismatches.into_inner() as f64);
    metrics.insert("links_preserved".into(), links_preserved);
    metrics.insert("failover_ms".into(), failover_ms);
    metrics.insert("speedup_max".into(), speedup_max);
    Ok(ScenarioRun {
        table: Table {
            id: sc.name.clone(),
            title: format!(
                "WAL-shipping replication: routed reads vs replica count \
                 ({title_readers} readers x {title_reads} reads, {title_sync} µs device sync)"
            ),
            header: vec![
                s("replicas"),
                s("validated reads/s"),
                s("speedup vs primary-only"),
                s("read p99"),
                s("lag drain"),
                s("failover"),
                s("links preserved"),
            ],
            rows,
            notes: Vec::new(),
        },
        metrics,
    })
}

// ===========================================================================
// checkpoint_shipping — the a11 engine loop
// ===========================================================================

/// A primary database shaped like a DLFM repository workload: `rows` hot
/// rows, updated round-robin with ~130-byte payloads. In this engine's
/// scenario contract `budget == 0` means *unbounded* (the full-replay
/// arms need the log intact), which since the self-tuning default maps
/// to [`DbOptions::NO_AUTO_CHECKPOINT`].
fn ckpt_primary(rows: usize, budget: u64, sync_latency_ns: u64) -> Database {
    let env = if sync_latency_ns > 0 {
        StorageEnv::mem_with_sync_latency(sync_latency_ns)
    } else {
        StorageEnv::mem()
    };
    let budget = if budget == 0 { DbOptions::NO_AUTO_CHECKPOINT } else { budget };
    let db = Database::open_with(
        env,
        DbOptions { checkpoint_every_bytes: budget, ..Default::default() },
    )
    .expect("db");
    db.create_table(
        Schema::new(
            "t",
            vec![Column::new("id", ColumnType::Int), Column::new("v", ColumnType::Text)],
            "id",
        )
        .expect("schema"),
    )
    .expect("create table");
    let mut tx = db.begin();
    for i in 0..rows {
        tx.insert("t", vec![Value::Int(i as i64), Value::Text("seed".into())]).expect("seed");
    }
    tx.commit().expect("seed commit");
    db
}

fn ckpt_updates(db: &Database, rows: usize, updates: usize) {
    for u in 0..updates {
        let id = (u % rows) as i64;
        let mut tx = db.begin();
        tx.update("t", &Value::Int(id), vec![Value::Int(id), Value::Text(format!("{u:0>120}"))])
            .expect("update");
        tx.commit().expect("commit");
    }
}

/// One fresh standby + ship daemon over `db`'s feed (a10-style plumbing
/// with inert token machinery — this kind measures the storage layer).
fn ckpt_standby(
    db: &Database,
) -> (Arc<dl_repl::Standby>, dl_repl::Replicator, Arc<dl_repl::ReplStats>) {
    let fence = Arc::new(dl_repl::EpochFence::new());
    let stats = Arc::new(dl_repl::ReplStats::default());
    let standby = Arc::new(
        dl_repl::Standby::new(
            "lab#0".into(),
            StorageEnv::mem(),
            StorageEnv::mem(),
            fence,
            Arc::clone(&stats),
            "lab".into(),
            b"lab-key".to_vec(),
            Arc::new(dl_fskit::SimClock::new(1_000)),
            None,
        )
        .expect("standby"),
    );
    let repl = dl_repl::Replicator::spawn(
        "lab",
        db.replication_feed(),
        vec![Arc::clone(&standby) as Arc<dyn dl_repl::ShipTarget>],
        0,
        Arc::clone(&stats),
    );
    (standby, repl, stats)
}

fn checkpoint_shipping(sc: &Scenario, plan: &Plan) -> Result<ScenarioRun, String> {
    const ROWS: usize = 64;
    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut metrics = BTreeMap::new();
    let mut lag_drained = 1.0f64;
    let mut catchup_exact = 1.0f64;
    let mut unbounded_retained: Option<u64> = None;
    let mut full_records: Option<u64> = None;
    let p0 = &plan.trials[0].params;
    let (title_updates, title_sync) = (p0.updates.unwrap_or(400), p0.sync_latency_us.unwrap_or(0));
    let mut title_budget = 0u64;
    for trials in per_variant(sc, plan) {
        let t0 = &trials[0];
        let p = &t0.params;
        let updates = need(sc, t0, "updates", p.updates)? as usize;
        let sync_ns = p.sync_latency_us.unwrap_or(0) * 1000;
        match p.delta {
            // --- sustained load: budget off vs on ---------------------------
            None => {
                let budget = p.budget.unwrap_or(0);
                title_budget = title_budget.max(budget);
                let mut cells = Vec::new();
                for _ in &trials {
                    let db = ckpt_primary(ROWS, budget, sync_ns);
                    let (standby, repl, stats) = ckpt_standby(&db);
                    ckpt_updates(&db, ROWS, updates);
                    if !repl.wait_caught_up(Duration::from_secs(30)) {
                        lag_drained = 0.0;
                    }
                    let primary_wal = db.wal_retained_bytes();
                    let standby_wal = standby.wal_retained_bytes();
                    if budget == 0 {
                        unbounded_retained = Some(primary_wal);
                    } else {
                        // The retention claim: the budget bounds BOTH logs
                        // under sustained load (trigger slack: one commit
                        // past the budget, plus the Checkpoint record).
                        metrics.insert("budget_primary_wal_bytes".into(), primary_wal as f64);
                        metrics.insert("budget_standby_wal_bytes".into(), standby_wal as f64);
                        if let Some(unbounded) = unbounded_retained {
                            metrics.insert(
                                "budget_vs_unbounded".into(),
                                primary_wal as f64 / unbounded as f64,
                            );
                        }
                    }
                    cells = vec![
                        t0.variant.clone(),
                        s(primary_wal),
                        s(standby_wal),
                        s(stats.checkpoints_shipped()),
                        s(stats.records_shipped()),
                        s("--"),
                    ];
                }
                rows_out.push(cells);
            }
            // --- fresh-standby catch-up: full replay vs delta ---------------
            Some(delta) => {
                let mut cells = Vec::new();
                let mut catch_up_sum = 0.0f64;
                for _ in &trials {
                    let db = ckpt_primary(ROWS, 0, sync_ns);
                    ckpt_updates(&db, ROWS, updates);
                    if delta {
                        db.checkpoint_and_truncate().expect("checkpoint");
                    }
                    let (standby, repl, stats) = ckpt_standby(&db);
                    let catch_up = time_once(|| {
                        if !repl.wait_caught_up(Duration::from_secs(30)) {
                            lag_drained = 0.0;
                        }
                    });
                    catch_up_sum += catch_up.as_nanos() as f64;
                    if standby.applied_lsn() != db.durable_lsn() {
                        catchup_exact = 0.0;
                    }
                    if delta {
                        metrics.insert(
                            "delta_checkpoint_installs".into(),
                            stats.checkpoints_shipped() as f64,
                        );
                        if let Some(full) = full_records {
                            // The headline claim: delta catch-up ships a
                            // small constant suffix, not the whole history.
                            metrics.insert(
                                "delta_records_ratio".into(),
                                stats.records_shipped() as f64 / full as f64,
                            );
                        }
                    } else {
                        full_records = Some(stats.records_shipped());
                    }
                    cells = vec![
                        t0.variant.clone(),
                        s(db.wal_retained_bytes()),
                        s(standby.wal_retained_bytes()),
                        s(stats.checkpoints_shipped()),
                        s(stats.records_shipped()),
                        fmt_ns(catch_up_sum / trials.len() as f64),
                    ];
                }
                rows_out.push(cells);
            }
        }
    }
    metrics.insert("lag_drained".into(), lag_drained);
    metrics.insert("catchup_exact".into(), catchup_exact);
    Ok(ScenarioRun {
        table: Table {
            id: sc.name.clone(),
            title: format!(
                "checkpoint shipping: WAL bounds and delta catch-up \
                 ({title_updates} updates over {ROWS} rows, {title_sync} µs device sync, \
                 {title_budget} B budget)"
            ),
            header: vec![
                s("arm"),
                s("primary WAL bytes"),
                s("standby WAL bytes"),
                s("ckpt installs"),
                s("records shipped"),
                s("catch-up"),
            ],
            rows: rows_out,
            notes: Vec::new(),
        },
        metrics,
    })
}

// ===========================================================================
// front_end — the a12 engine loop
// ===========================================================================

/// One timed burst of token-read cycles against `f`, `clients` threads x
/// `cycles` each, all funnelling through the node's upcall pool (token
/// validation + claimed read open + close, two repository commits per
/// cycle). Records every cycle's latency into `lat`; returns cycles/sec.
fn upcall_burst(f: &Fixture, clients: usize, cycles: usize, lat: &Histogram) -> f64 {
    // One token-embedded path per client, generated outside the timed
    // region: the burst measures the upcall admission path, not SELECT.
    let paths: Vec<String> =
        (0..clients).map(|t| f.token_path(t % f.paths.len(), TokenKind::Read)).collect();
    let fs = f.sys.fs(SRV).expect("fs");
    let elapsed = run_threads(clients, |t| {
        for _ in 0..cycles {
            let started = Instant::now();
            let fd = fs.open(&APP, &paths[t], OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
            lat.record_duration(started.elapsed());
        }
    });
    (clients * cycles) as f64 / elapsed.as_secs_f64()
}

/// Waits out the pool's idle window and reports the settled worker count.
fn settled_workers(f: &Fixture) -> usize {
    let node = f.sys.node(SRV).expect("node");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let workers = node.upcall_pool_stats().workers();
        if workers <= 2 || std::time::Instant::now() >= deadline {
            return workers;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn front_end(sc: &Scenario, plan: &Plan) -> Result<ScenarioRun, String> {
    let mut rows = Vec::new();
    let mut metrics = BTreeMap::new();
    // Which burst variant carries the "high concurrency" claims: the one
    // with the most clients.
    let high_clients = plan
        .trials
        .iter()
        .filter(|t| t.params.thread_per_agent.is_none())
        .filter_map(|t| t.params.clients)
        .max()
        .unwrap_or(0);
    let mut low_clients = u64::MAX;
    let mut fixed_rate: BTreeMap<u64, f64> = BTreeMap::new();
    let burst_lat = Histogram::new();
    let p0 = &plan.trials[0].params;
    let (title_cycles, title_sync) = (p0.cycles.unwrap_or(10), p0.sync_latency_us.unwrap_or(0));
    let mut title_agents = 0u64;
    for trials in per_variant(sc, plan) {
        let t0 = &trials[0];
        let p = &t0.params;
        let sync_ns = p.sync_latency_us.unwrap_or(0) * 1000;
        match p.thread_per_agent {
            // --- bursty upcall load: fixed vs adaptive ----------------------
            None => {
                let clients = need(sc, t0, "clients", p.clients)?;
                let cycles = need(sc, t0, "cycles", p.cycles)? as usize;
                let pool_min = need(sc, t0, "pool_min", p.pool_min)? as usize;
                let pool_max = need(sc, t0, "pool_max", p.pool_max)? as usize;
                low_clients = low_clients.min(clients);
                let adaptive = pool_max > pool_min;
                let (mut rate_sum, mut peak, mut settled) = (0.0f64, 0usize, 0usize);
                for _ in &trials {
                    let f = fixture(FixtureOptions {
                        n_files: clients as usize,
                        file_size: 1024,
                        db_sync_latency_ns: sync_ns,
                        upcall_pool: Some((pool_min, pool_max)),
                        // A gather window on the repository's group commit:
                        // each commit parks its upcall worker for the
                        // window, so served concurrency — the pool's head
                        // count — is the deterministic bottleneck (the
                        // point of this experiment), not the raw CPU of
                        // the machine running it.
                        db: DbOptions {
                            wal: WalOptions {
                                group_commit: true,
                                max_batch: 64,
                                commit_delay_us: 200,
                            },
                            ..Default::default()
                        },
                        ..Default::default()
                    });
                    rate_sum += upcall_burst(&f, clients as usize, cycles, &burst_lat);
                    peak = f.sys.node(SRV).expect("node").upcall_pool_stats().peak_workers();
                    if adaptive {
                        settled = settled_workers(&f);
                    }
                }
                let rate = rate_sum / trials.len() as f64;
                let (vs_fixed, settled_cell) = if adaptive {
                    let base = fixed_rate.get(&clients).copied();
                    if clients == high_clients {
                        metrics.insert("adaptive_high_peak_workers".into(), peak as f64);
                        metrics.insert("adaptive_high_settled_workers".into(), settled as f64);
                        if let Some(base) = base {
                            metrics.insert("adaptive_high_vs_fixed".into(), rate / base);
                        }
                    }
                    // Bare "N.NNx" so `report --compare` diffs the ratio
                    // numerically instead of as must-match-exactly text.
                    match base {
                        Some(base) => (format!("{:.2}x", rate / base), s(settled)),
                        None => (s("--"), s(settled)),
                    }
                } else {
                    fixed_rate.insert(clients, rate);
                    (s("--"), s(peak))
                };
                // Row labels carry the client count: `report --compare`
                // keys rows by their first cell, so labels must be unique.
                rows.push(vec![
                    t0.variant.clone(),
                    s(clients),
                    s(format!("{rate:.0}")),
                    s(peak),
                    settled_cell,
                    vs_fixed,
                ]);
            }
            // --- agent churn: thread-per-agent vs shared executor -----------
            Some(thread_per_agent) => {
                let agents = need(sc, t0, "agents", p.agents)? as usize;
                title_agents = title_agents.max(agents as u64);
                let (mut rate_sum, mut threads, mut connections) = (0.0f64, 0usize, 0usize);
                for _ in &trials {
                    let f = fixture(FixtureOptions {
                        n_files: 1,
                        db_sync_latency_ns: sync_ns,
                        thread_per_agent,
                        ..Default::default()
                    });
                    let raw = f.sys.raw_fs(SRV).expect("raw");
                    for i in 0..agents {
                        raw.write_file(&APP, &format!("/data/churn{i:04}.bin"), b"x")
                            .expect("seed");
                    }
                    let node = f.sys.node(SRV).expect("node");
                    let handles: Vec<_> = (0..agents).map(|_| node.connect_agent()).collect();
                    let drivers = 16.min(agents.max(1));
                    let elapsed = run_threads(drivers, |t| {
                        use dl_minidb::Participant;
                        for (i, agent) in handles.iter().enumerate() {
                            if i % drivers != t {
                                continue;
                            }
                            let path = format!("/data/churn{i:04}.bin");
                            // Synthetic host txids well clear of the
                            // fixture's.
                            let link_tx = 1_000_000 + 2 * i as u64;
                            agent
                                .link(
                                    link_tx,
                                    &path,
                                    ControlMode::Rff,
                                    true,
                                    dl_dlfm::OnUnlink::Restore,
                                )
                                .expect("link");
                            agent.prepare(link_tx).expect("prepare");
                            agent.commit(link_tx);
                            let unlink_tx = link_tx + 1;
                            agent.unlink(unlink_tx, &path).expect("unlink");
                            agent.prepare(unlink_tx).expect("prepare");
                            agent.commit(unlink_tx);
                        }
                    });
                    rate_sum += (agents * 2) as f64 / elapsed.as_secs_f64();
                    threads = match node.main_daemon().executor_stats() {
                        Some(stats) => stats.peak_workers(),
                        None => node.main_daemon().executor_threads(),
                    };
                    connections = node.main_daemon().child_count();
                }
                let rate = rate_sum / trials.len() as f64;
                if !thread_per_agent {
                    // The multiplexing claims ride on the shared arm.
                    metrics.insert("max_os_threads".into(), threads as f64);
                    metrics.insert("churn_connections".into(), connections as f64);
                }
                rows.push(vec![
                    t0.variant.clone(),
                    s(connections),
                    s(format!("{rate:.0}")),
                    s(threads),
                    s("--"),
                    s(if thread_per_agent {
                        "one OS thread per connection"
                    } else {
                        "connections multiplexed over the shared executor"
                    }),
                ]);
            }
        }
    }
    if low_clients == u64::MAX {
        low_clients = 0;
    }
    let lat = burst_lat.snapshot();
    metrics.insert("burst_p99_ms".into(), lat.percentile(0.99) as f64 / 1e6);
    metrics.insert("burst_mean_ms".into(), lat.mean() / 1e6);
    Ok(ScenarioRun {
        table: Table {
            id: sc.name.clone(),
            title: format!(
                "elastic front end: adaptive upcall pool + shared agent executor \
                 ({low_clients}/{high_clients} clients x {title_cycles} cycles, \
                 {title_agents} churn agents, {title_sync} µs device sync)"
            ),
            header: vec![
                s("arm"),
                s("clients/conns"),
                s("ops/s"),
                s("peak workers"),
                s("workers after idle"),
                s("vs fixed-8 / note"),
            ],
            rows,
            notes: Vec::new(),
        },
        metrics,
    })
}

// ===========================================================================
// mixed — the generic client-mix engine with fault injection
// ===========================================================================

/// What one mixed trial measured.
#[derive(Default)]
struct MixedOutcome {
    ops_ok: u64,
    ops_failed: u64,
    busy: Duration,
    worker_panics: u64,
    failovers: u64,
    host_failovers: u64,
    lost_acked_links: u64,
    failover_ms: f64,
    host_failover_ms: f64,
    /// Replica-routed reads served successfully *while the host was down*
    /// (between `crash_host` and `promote_host`).
    outage_reads_ok: u64,
    /// DLFM sub-transactions the promoted coordinator resolved from the
    /// replicated WAL.
    in_doubt_resolved: u64,
    /// Late 2PC decisions from a deposed coordinator refused by the fence.
    stale_coord_rejections: u64,
    /// Injected ENOSPC write failures actually consumed (repository or
    /// host side, whichever the scenario targeted).
    enospc_hits: u64,
    /// Torn-WAL probe commits the crash boundary sheared away — recovery
    /// must lose exactly these.
    torn_commits_lost: u64,
    /// Torn-WAL probe commits from *before* the shear that survived the
    /// crash.
    torn_pre_commit_survived: u64,
    stale_reads: u64,
    freshness_fallbacks: u64,
    leftover_links: u64,
    end_lag_drained: bool,
    peak_upcall_workers: u64,
    events: Vec<String>,
    /// The system's merged telemetry at the end of the trial — every
    /// layer's counters/gauges/histograms plus the trial's own
    /// `lab.op_latency_ns` distribution.
    snapshot: Snapshot,
}

/// The operation chosen for global op index `g` — a pure function of the
/// trial seed and `g`, so moving an injection boundary never changes what
/// the workload would have done.
enum Op {
    Write { file: usize },
    Churn,
    Read { file: usize },
}

fn pick_op(seed: u64, g: u64, client: u64, clients: u64, n_files: u64, p: &Params) -> Op {
    let mut rng = LabRng::new(seed ^ g.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let write_ratio = p.write_ratio.unwrap_or(0.0);
    let churn_ratio = p.churn_ratio.unwrap_or(0.0);
    let roll = rng.ratio();
    // Writers own the files where `file % clients == client` — no
    // write/write races, so an acked version is the file's version until
    // the owner overwrites it.
    let owned = (n_files / clients) + u64::from(client < n_files % clients);
    if roll < write_ratio && owned > 0 {
        Op::Write { file: (client + rng.below(owned) * clients) as usize }
    } else if roll < write_ratio + churn_ratio {
        Op::Churn
    } else {
        Op::Read { file: rng.below(n_files) as usize }
    }
}

/// Versioned payload for `file`: a parseable 20-digit version prefix,
/// padded to `file_size`.
fn versioned_content(version: u64, file_size: usize) -> Vec<u8> {
    let mut out = format!("{version:020}").into_bytes();
    while out.len() < file_size {
        out.push(b'v');
    }
    out
}

fn parse_version(data: &[u8]) -> u64 {
    if data.len() < 20 {
        return 0;
    }
    std::str::from_utf8(&data[..20]).ok().and_then(|t| t.parse().ok()).unwrap_or(0)
}

fn mixed_trial(sc: &Scenario, t: &TrialSpec) -> Result<MixedOutcome, String> {
    let p = &t.params;
    let clients = p.clients.unwrap_or(4);
    let ops = need(sc, t, "ops", p.ops)?;
    let n_files = p.n_files.unwrap_or(clients);
    let file_size = p.file_size.unwrap_or(1024) as usize;
    let replicas = p.replicas.unwrap_or(0) as usize;
    let host_replicas = p.host_replicas.unwrap_or(0) as usize;
    let shards = p.shards.unwrap_or(1) as usize;
    let route = p.read_route.unwrap_or_default();
    let sync_ns = p.sync_latency_us.unwrap_or(0) * 1000;
    let injections = p.injections.clone().unwrap_or_default();

    // Shard topology (PR 9 seam): with `shards > 1` the fixture builds
    // the sharded front, nodes register as `<srv>.s<i>` and every
    // node-addressed step below routes by the file's owning shard.
    let router = ShardRouter::new(SRV, shards);
    let node_names: Vec<String> = if shards > 1 {
        (0..shards).map(|i| ShardRouter::shard_name(SRV, i)).collect()
    } else {
        vec![SRV.to_string()]
    };
    let owner = |path: &str| -> String {
        if shards > 1 {
            ShardRouter::shard_name(SRV, router.shard_of(path))
        } else {
            SRV.to_string()
        }
    };

    // The kill_upcall_workers injection point: an armed countdown the
    // upcall fault hook decrements — while positive, admission upcalls
    // panic inside their pool worker (containment turns that into a
    // `Rejected` reply; the op fails, the daemon lives).
    let armed = Arc::new(AtomicI64::new(0));
    let fault: Option<FaultInjector> = if injections
        .iter()
        .any(|i| matches!(i.action, InjectAction::KillUpcallWorkers { .. }))
    {
        let armed = Arc::clone(&armed);
        Some(Arc::new(move |req: &UpcallRequest| {
            if matches!(req, UpcallRequest::ValidateToken { .. } | UpcallRequest::OpenCheck { .. })
                && armed.load(Ordering::Relaxed) > 0
                && armed.fetch_sub(1, Ordering::Relaxed) > 0
            {
                panic!("lab: injected upcall worker kill");
            }
        }))
    } else {
        None
    };

    // The disk_enospc injection point: a fault layer under the DLFM
    // repository's storage environment, armed at injection boundaries.
    let repo_faults = injections
        .iter()
        .any(|i| matches!(i.action, InjectAction::DiskEnospc { host: false, .. }))
        .then(dl_minidb::DiskFaults::new);

    // The host-side fault surface: `disk_enospc` with `"target": "host"`
    // and the torn-tail crash boundary both attach a fault layer under the
    // *coordinator's* storage environment instead of the repository's.
    let host_faults = injections
        .iter()
        .any(|i| {
            matches!(
                i.action,
                InjectAction::DiskEnospc { host: true, .. } | InjectAction::TornHostWal
            )
        })
        .then(dl_minidb::DiskFaults::new);

    let mut f = fixture_with_faults(
        FixtureOptions {
            n_files: n_files as usize,
            file_size,
            replicas,
            host_replicas,
            shards,
            sync_archive: true,
            db_sync_latency_ns: sync_ns,
            upcall_pool: match (p.pool_min, p.pool_max) {
                (Some(lo), Some(hi)) => Some((lo as usize, hi as usize)),
                _ => None,
            },
            ..Default::default()
        },
        fault,
        repo_faults.clone(),
        host_faults.clone(),
    );

    // Per-op latency, adopted into the system registry so it rides the
    // exported snapshot (`lab.op_latency_ns` flattens to the
    // `lab_op_latency_ns_p99` predicate name and the text exposition).
    let op_latency = Arc::new(Histogram::new());
    f.sys.registry().register_histogram("lab.op_latency_ns", Arc::clone(&op_latency));

    let mut out = MixedOutcome { end_lag_drained: true, ..Default::default() };
    let total = clients * ops;
    // Acked state per file: highest version whose update the client saw
    // complete (archive included). Fresh reads must observe >= this.
    let acked: Vec<AtomicU64> = (0..n_files).map(|_| AtomicU64::new(0)).collect();
    let next_version: Vec<AtomicU64> = (0..n_files).map(|_| AtomicU64::new(0)).collect();
    let ops_ok = AtomicU64::new(0);
    let ops_failed = AtomicU64::new(0);
    let stale_reads = AtomicU64::new(0);

    let run_op = |g: u64, client: u64, f: &Fixture| -> Result<(), String> {
        let op = pick_op(t.seed, g, client, clients, n_files, p);
        let fs = f.sys.fs(SRV)?;
        match op {
            Op::Write { file } => {
                let version = next_version[file].fetch_add(1, Ordering::Relaxed) + 1;
                let content = versioned_content(version, file_size);
                let (_, path) = f.sys.select_datalink(
                    TABLE,
                    &Value::Int(file as i64),
                    "body",
                    TokenKind::Write,
                )?;
                let fd = fs
                    .open(&APP, &path, OpenOptions::write_truncate())
                    .map_err(|e| e.to_string())?;
                let res = fs.write(fd, &content).map(|_| ()).map_err(|e| e.to_string());
                fs.close(fd).map_err(|e| e.to_string())?;
                res?;
                // The ack: the update is committed and archived. Anything
                // the system loses past this point is a lost acked write.
                f.sys
                    .node(&owner(&f.paths[file]))?
                    .server
                    .archive_store()
                    .wait_archived(&f.paths[file]);
                acked[file].fetch_max(version, Ordering::Relaxed);
                Ok(())
            }
            Op::Churn => {
                let path = format!("/data/churn_c{client:03}_{g:08}.bin");
                f.sys.raw_fs(SRV)?.write_file(&APP, &path, b"churn").map_err(|e| e.to_string())?;
                let agent = f.sys.node(&owner(&path))?.connect_agent();
                use dl_minidb::Participant;
                let link_tx = 2_000_000 + 2 * g;
                agent.link(link_tx, &path, ControlMode::Rff, true, dl_dlfm::OnUnlink::Restore)?;
                agent.prepare(link_tx).map_err(|e| e.to_string())?;
                agent.commit(link_tx);
                let unlink_tx = link_tx + 1;
                agent.unlink(unlink_tx, &path)?;
                agent.prepare(unlink_tx).map_err(|e| e.to_string())?;
                agent.commit(unlink_tx);
                Ok(())
            }
            Op::Read { file } => {
                let acked_version = acked[file].load(Ordering::Relaxed);
                match route {
                    ReadRoute::Managed => {
                        let (_, path) = f.sys.select_datalink(
                            TABLE,
                            &Value::Int(file as i64),
                            "body",
                            TokenKind::Read,
                        )?;
                        let fd = fs
                            .open(&APP, &path, OpenOptions::read_only())
                            .map_err(|e| e.to_string())?;
                        let res = fs.read_to_end(fd).map_err(|e| e.to_string());
                        fs.close(fd).map_err(|e| e.to_string())?;
                        res?;
                    }
                    ReadRoute::Routed => {
                        let (_, path) = f.sys.select_datalink(
                            TABLE,
                            &Value::Int(file as i64),
                            "body",
                            TokenKind::Read,
                        )?;
                        f.sys.serve_read(SRV, &path, APP.uid)?;
                    }
                    ReadRoute::Fresh => {
                        // Read-your-writes: capture the acked version FIRST,
                        // then the freshness token — the token is >= the
                        // commit LSN of every acked write, so the routed
                        // read must observe a version >= acked.
                        let token = f.sys.freshness_token(SRV)?;
                        let (_, path) = f.sys.select_datalink(
                            TABLE,
                            &Value::Int(file as i64),
                            "body",
                            TokenKind::Read,
                        )?;
                        let data = f.sys.serve_read_fresh(SRV, &path, APP.uid, token)?;
                        if parse_version(&data) < acked_version {
                            stale_reads.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Ok(())
            }
        }
    };

    // Segmented execution: run the clients up to each injection's op
    // boundary, join, apply the fault with exclusive access to the
    // system, resume. Op `g` is executed by client `g % clients`.
    let mut start = 0u64;
    let mut torn_probes = 0i64;
    let mut boundaries: Vec<(u64, &InjectAction)> =
        injections.iter().map(|i| (i.at_op.min(total), &i.action)).collect();
    boundaries.push((total, &InjectAction::ResumeStandby)); // sentinel; never applied
    for (idx, (end, action)) in boundaries.iter().enumerate() {
        let (end, is_sentinel) = (*end, idx == boundaries.len() - 1);
        if end > start {
            let seg = run_threads(clients as usize, |c| {
                let c = c as u64;
                for g in start..end {
                    if g % clients != c {
                        continue;
                    }
                    let started = Instant::now();
                    match run_op(g, c, &f) {
                        Ok(()) => {
                            ops_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            ops_failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    op_latency.record_duration(started.elapsed());
                }
            });
            out.busy += seg;
            start = end;
        }
        if is_sentinel {
            break;
        }
        match action {
            InjectAction::CrashPrimary => {
                // With shards the victim is the first shard's primary; the
                // other shards keep serving through its outage.
                let victim = node_names[0].clone();
                if f.sys.node(&victim)?.replication.is_none() {
                    return Err(format!(
                        "scenario {}: crash_primary at op {end} needs replicas >= 1",
                        sc.name
                    ));
                }
                // Only acked (committed + shipped) state is owed across the
                // failover; drain the ship lag the same way a real
                // controlled promotion of a caught-up standby would.
                f.sys.wait_replicas_caught_up(SRV, Duration::from_secs(30))?;
                let before = link_state(&f.sys, &node_names);
                let dur = time_once(|| {
                    f.sys.fail_over(&victim).expect("failover");
                });
                let after = link_state(&f.sys, &node_names);
                let lost = before.iter().filter(|e| !after.contains(e)).count() as u64;
                out.failovers += 1;
                out.lost_acked_links += lost;
                out.failover_ms = out.failover_ms.max(dur.as_nanos() as f64 / 1e6);
                out.events.push(format!(
                    "crash_primary@{end}: failover {}, {lost} acked links lost",
                    fmt_ns(dur.as_nanos() as f64)
                ));
            }
            InjectAction::StallStandby => {
                f.sys.set_replication_paused(SRV, true)?;
                out.events.push(format!("stall_standby@{end}"));
            }
            InjectAction::ResumeStandby => {
                f.sys.set_replication_paused(SRV, false)?;
                out.events.push(format!("resume_standby@{end}"));
            }
            InjectAction::KillUpcallWorkers { count } => {
                armed.fetch_add(*count as i64, Ordering::Relaxed);
                out.events.push(format!("kill_upcall_workers@{end} x{count}"));
            }
            InjectAction::CrashHost => {
                if f.sys.host_replication().is_none() {
                    return Err(format!(
                        "scenario {}: crash_host at op {end} needs host_replicas >= 1",
                        sc.name
                    ));
                }
                // Only acked (committed + shipped) state is owed across a
                // host failover; drain the ship lag the way a controlled
                // promotion of a caught-up standby would.
                if !f.sys.wait_host_replicas_caught_up(Duration::from_secs(30)) {
                    return Err(format!(
                        "scenario {}: host replication lag did not drain before crash_host",
                        sc.name
                    ));
                }
                let before = link_state(&f.sys, &node_names);
                // Mint read-token paths while the host can still mint them
                // — during the outage no new SELECT is possible, but every
                // token already handed out keeps working off the replicas.
                let tokens: Vec<String> = (0..n_files)
                    .map(|i| {
                        f.sys
                            .select_datalink(TABLE, &Value::Int(i as i64), "body", TokenKind::Read)
                            .map(|(_, path)| path)
                    })
                    .collect::<Result<_, _>>()?;
                let (mut outage_reads, mut resolved) = (0u64, 0u64);
                let dur = time_once(|| {
                    f.sys.crash_host().expect("crash host");
                    // The coordinator is down and fenced; replica-routed
                    // reads must keep flowing off the DLFM standbys.
                    for path in &tokens {
                        if f.sys.serve_read(SRV, path, APP.uid).is_ok() {
                            outage_reads += 1;
                        }
                    }
                    let report = f.sys.promote_host().expect("promote host");
                    resolved = report.in_doubt_resolved.len() as u64;
                });
                let after = link_state(&f.sys, &node_names);
                let lost = before.iter().filter(|e| !after.contains(e)).count() as u64;
                out.host_failovers += 1;
                out.lost_acked_links += lost;
                out.outage_reads_ok += outage_reads;
                out.in_doubt_resolved += resolved;
                // Outage counters onto registry handles: the exported
                // snapshot is the one place trial state is read from.
                f.sys.registry().counter("lab.outage_reads_ok").add(outage_reads);
                f.sys.registry().counter("lab.in_doubt_resolved").add(resolved);
                out.host_failover_ms = out.host_failover_ms.max(dur.as_nanos() as f64 / 1e6);
                out.events.push(format!(
                    "crash_host@{end}: failover {}, {outage_reads} outage reads, \
                     {resolved} in-doubt resolved, {lost} acked links lost",
                    fmt_ns(dur.as_nanos() as f64)
                ));
            }
            InjectAction::DiskEnospc { writes, host } => {
                let faults = if *host { host_faults.as_ref() } else { repo_faults.as_ref() }
                    .expect("disk_enospc arms its fault layer");
                faults.inject_enospc(*writes);
                out.events.push(format!(
                    "disk_enospc@{end} x{writes} ({})",
                    if *host { "host" } else { "repo" }
                ));
            }
            InjectAction::TornHostWal => {
                let faults = host_faults.as_ref().expect("torn_host_wal arms the host fault layer");
                // A probe pair on a scratch table: one commit that must
                // survive the shear, then one whose exact WAL footprint the
                // armed tear covers. The live process believes both are
                // durable — only the crash reveals the torn tail.
                if torn_probes == 0 {
                    f.sys
                        .create_table(
                            Schema::new(
                                "lab_torn",
                                vec![
                                    Column::new("id", ColumnType::Int),
                                    Column::new("v", ColumnType::Text),
                                ],
                                "id",
                            )
                            .map_err(|e| e.to_string())?,
                        )
                        .map_err(|e| e.to_string())?;
                }
                let seq = 2 * torn_probes;
                torn_probes += 1;
                let mut tx = f.sys.begin();
                tx.insert("lab_torn", vec![Value::Int(seq), Value::Text("pre".into())])
                    .map_err(|e| e.to_string())?;
                tx.commit().map_err(|e| e.to_string())?;
                let wal = f.host_env.device("wal").map_err(|e| e.to_string())?;
                let before = wal.len().map_err(|e| e.to_string())?;
                let mut tx = f.sys.begin();
                tx.insert("lab_torn", vec![Value::Int(seq + 1), Value::Text("torn".into())])
                    .map_err(|e| e.to_string())?;
                tx.commit().map_err(|e| e.to_string())?;
                let sheared = wal.len().map_err(|e| e.to_string())? - before;
                faults.arm_torn_tail("wal", sheared);
                // Crash the whole system and recover it; the workload's
                // remaining segments then run against the recovered stack.
                let Fixture { sys, paths, urls, host_env } = f;
                let (sys, _) = DataLinksSystem::recover(sys.crash())?;
                f = Fixture { sys, paths, urls, host_env };
                // Recovery rebuilds the registry; re-adopt the trial's
                // latency histogram so it keeps riding the snapshot.
                f.sys.registry().register_histogram("lab.op_latency_ns", Arc::clone(&op_latency));
                let db = f.sys.db();
                let pre =
                    db.get_committed("lab_torn", &Value::Int(seq)).map_err(|e| e.to_string())?;
                let torn = db
                    .get_committed("lab_torn", &Value::Int(seq + 1))
                    .map_err(|e| e.to_string())?;
                out.torn_pre_commit_survived += u64::from(pre.is_some());
                out.torn_commits_lost += u64::from(torn.is_none());
                out.events.push(format!("torn_host_wal@{end}: sheared {sheared} B"));
            }
            InjectAction::SeverConnections { .. } => {
                return Err(format!(
                    "scenario {}: sever_connections needs the socket transport — use kind \
                     \"wire_front_end\"",
                    sc.name
                ));
            }
        }
    }

    // Settle: resume any stalled shipping and drain the lag, so the trial
    // ends with a consistent, comparable system.
    let any_replicated = node_names
        .iter()
        .any(|n| f.sys.node(n).map(|node| node.replication.is_some()).unwrap_or(false));
    if any_replicated {
        f.sys.set_replication_paused(SRV, false)?;
        out.end_lag_drained = f.sys.wait_replicas_caught_up(SRV, Duration::from_secs(30))?;
    }
    out.leftover_links = node_names
        .iter()
        .map(|n| {
            f.sys
                .node(n)
                .map(|node| node.server.repository().list_files().len() as u64)
                .unwrap_or(0)
        })
        .sum::<u64>()
        .saturating_sub(n_files);
    for faults in [&repo_faults, &host_faults].into_iter().flatten() {
        // The fault layers live outside the system; mirror their hit
        // counts onto a registry handle so they export like everything
        // else (one combined counter — a scenario targets one side).
        f.sys.registry().counter("lab.enospc_hits").add(faults.enospc_hits());
    }

    // The last flight dump's 2PC span trail, surfaced as assertable
    // metrics: a scenario can pin that the crash left (say) fenced decide
    // spans in the recorder without string-matching the dump itself.
    let dump = f.sys.last_flight_dump().unwrap_or_default();
    for stage in ["claim", "prepare", "decide", "fence_raise", "fence_reject", "archive"] {
        let events = dump.matches(stage).count() as u64;
        f.sys.registry().counter(&format!("lab.flight_{stage}_events")).add(events);
    }

    // Everything the trial used to read from per-component stats structs
    // now comes off the system's one merged telemetry snapshot. Park the
    // upcall pools first: a killed worker reports its failure to the
    // waiting client before it finishes unwinding, so without the
    // quiesce the pool's panic counter can lag the last failed op.
    f.sys.quiesce_upcalls(Duration::from_secs(5));
    let snap = f.sys.metrics();
    let counter = |name: String| snap.counters.get(&name).copied().unwrap_or(0);
    let gauge = |name: String| snap.gauges.get(&name).copied().unwrap_or(0.0);
    for name in &node_names {
        out.worker_panics += gauge(format!("dlfm.{name}.upcall_pool.panics")) as u64;
        out.peak_upcall_workers = out
            .peak_upcall_workers
            .max(gauge(format!("dlfm.{name}.upcall_pool.peak_workers")) as u64);
        out.stale_coord_rejections += counter(format!("dlfm.{name}.stale_coord_rejections"));
    }
    out.freshness_fallbacks = counter("engine.freshness_fallbacks".into());
    out.enospc_hits = counter("lab.enospc_hits".into());
    out.snapshot = snap;
    out.ops_ok = ops_ok.into_inner();
    out.ops_failed = ops_failed.into_inner();
    out.stale_reads = stale_reads.into_inner();
    Ok(out)
}

fn mixed(sc: &Scenario, plan: &Plan) -> Result<ScenarioRun, String> {
    let mut rows = Vec::new();
    let mut metrics = BTreeMap::new();
    let mut sums: BTreeMap<&str, f64> = BTreeMap::new();
    let add = |m: &mut BTreeMap<&str, f64>, k: &'static str, v: f64| {
        *m.entry(k).or_insert(0.0) += v;
    };
    let (mut failover_ms, mut peak_workers) = (0.0f64, 0.0f64);
    let mut host_failover_ms = 0.0f64;
    let mut end_lag_drained = 1.0f64;
    let (mut first_rate, mut last_rate) = (None, 0.0f64);
    let mut snap_all = Snapshot::default();
    for trials in per_variant(sc, plan) {
        let t0 = &trials[0];
        let clients = t0.params.clients.unwrap_or(4);
        let (mut ok, mut failed, mut busy) = (0u64, 0u64, Duration::ZERO);
        let mut events = Vec::new();
        let mut vlat = HistogramSnapshot::default();
        for t in &trials {
            let o = mixed_trial(sc, t)?;
            if let Some(lat) = o.snapshot.histograms.get("lab.op_latency_ns") {
                vlat.merge(lat);
            }
            snap_all.merge(&o.snapshot);
            ok += o.ops_ok;
            failed += o.ops_failed;
            busy += o.busy;
            add(&mut sums, "worker_panics", o.worker_panics as f64);
            add(&mut sums, "failovers", o.failovers as f64);
            add(&mut sums, "host_failovers", o.host_failovers as f64);
            add(&mut sums, "lost_acked_links", o.lost_acked_links as f64);
            add(&mut sums, "outage_reads_ok", o.outage_reads_ok as f64);
            add(&mut sums, "in_doubt_resolved", o.in_doubt_resolved as f64);
            add(&mut sums, "stale_coord_rejections", o.stale_coord_rejections as f64);
            add(&mut sums, "enospc_hits", o.enospc_hits as f64);
            add(&mut sums, "torn_commits_lost", o.torn_commits_lost as f64);
            add(&mut sums, "torn_pre_commit_survived", o.torn_pre_commit_survived as f64);
            add(&mut sums, "stale_reads", o.stale_reads as f64);
            add(&mut sums, "freshness_fallbacks", o.freshness_fallbacks as f64);
            add(&mut sums, "leftover_links", o.leftover_links as f64);
            failover_ms = failover_ms.max(o.failover_ms);
            host_failover_ms = host_failover_ms.max(o.host_failover_ms);
            peak_workers = peak_workers.max(o.peak_upcall_workers as f64);
            if !o.end_lag_drained {
                end_lag_drained = 0.0;
            }
            if events.is_empty() {
                events = o.events;
            }
        }
        let rate = (ok + failed) as f64 / busy.as_secs_f64().max(1e-9);
        if first_rate.is_none() {
            first_rate = Some(rate);
        }
        last_rate = rate;
        rows.push(vec![
            t0.variant.clone(),
            s(clients),
            s(format!("{rate:.0}")),
            fmt_ns(vlat.percentile(0.99) as f64),
            s(ok),
            s(failed),
            if events.is_empty() { s("--") } else { events.join("; ") },
        ]);
        add(&mut sums, "ops_ok", ok as f64);
        add(&mut sums, "ops_failed", failed as f64);
    }
    for (k, v) in sums {
        metrics.insert(k.to_string(), v);
    }
    metrics.insert("failover_ms".into(), failover_ms);
    metrics.insert("host_failover_ms".into(), host_failover_ms);
    metrics.insert("peak_upcall_workers".into(), peak_workers);
    // The only OS-thread pool a mixed trial can grow without bound is the
    // upcall pool — expose it under the generic name the issue's example
    // predicates use.
    metrics.insert("max_os_threads".into(), peak_workers);
    metrics.insert("end_lag_drained".into(), end_lag_drained);
    metrics
        .insert("throughput_ratio".into(), last_rate / first_rate.unwrap_or(last_rate).max(1e-9));
    // Latency percentiles alongside the wall-clock mean rate.
    let lat = snap_all.histograms.get("lab.op_latency_ns").cloned().unwrap_or_default();
    metrics.insert("op_p50_ms".into(), lat.percentile(0.50) as f64 / 1e6);
    metrics.insert("op_p99_ms".into(), lat.percentile(0.99) as f64 / 1e6);
    metrics.insert("op_mean_ms".into(), lat.mean() / 1e6);
    // Every exported registry metric is assertable under its flattened
    // name; the engine-level names above win any collision.
    for (name, v) in snap_all.flatten() {
        metrics.entry(name).or_insert(v);
    }
    Ok(ScenarioRun {
        table: Table {
            id: sc.name.clone(),
            title: format!("mixed client workload ({} variants)", rows.len()),
            header: vec![
                s("variant"),
                s("clients"),
                s("ops/s"),
                s("op p99"),
                s("ops ok"),
                s("ops failed"),
                s("events"),
            ],
            rows,
            notes: Vec::new(),
        },
        metrics,
    })
}

// ===========================================================================
// sharding — the a13 engine loop
// ===========================================================================

/// Committed open/write/close cycles/sec through a `shards`-way sharded
/// file server, plus the run's telemetry snapshot. Each writer thread owns
/// one file placed on shard `thread % shards`; the repository WALs run
/// per-commit sync over devices with the given sync latency while the host
/// database's devices are free — so the cycle rate is gated by how many
/// repository WALs can sync concurrently, i.e. by the shard count.
fn sharded_stack_rate(
    shards: usize,
    threads: usize,
    cycles: usize,
    file_size: usize,
    sync_latency_ns: u64,
) -> (f64, Snapshot) {
    let mut spec = FileServerSpec::new(SRV).shards(shards);
    spec.dlfm.sync_archive = true;
    spec.dlfm.db = DbOptions { wal: WalOptions::per_commit_sync(), ..Default::default() };
    spec.repo_env = StorageEnv::mem_with_sync_latency(sync_latency_ns);
    let sys = DataLinksSystem::builder().file_server_with(spec).build().expect("build system");
    let raw = sys.raw_fs(SRV).expect("raw fs");
    raw.mkdir_p(&Cred::root(), "/data", 0o777).expect("mkdir");
    sys.create_table(
        Schema::new(
            TABLE,
            vec![
                Column::new("id", ColumnType::Int),
                Column::nullable("body", ColumnType::DataLink),
            ],
            "id",
        )
        .expect("schema"),
    )
    .expect("create table");
    sys.define_datalink_column(
        TABLE,
        "body",
        DlColumnOptions::new(ControlMode::Rdd)
            .on_unlink(dl_dlfm::OnUnlink::Restore)
            .token_ttl_ms(600_000),
    )
    .expect("define column");
    // Deterministic placement: thread `t` writes a file owned by shard
    // `t % shards`, so the thread→shard fan-out is exact, not hash luck.
    let router = ShardRouter::new(SRV, shards);
    let content = make_content(file_size);
    for t in 0..threads {
        let path = (0..)
            .map(|k| format!("/data/w{t}_{k}.bin"))
            .find(|p| router.shard_of(p) == t % shards)
            .expect("some candidate path hashes to every shard");
        raw.write_file(&APP, &path, &content).expect("seed file");
        let mut tx = sys.begin();
        tx.insert(
            TABLE,
            vec![Value::Int(t as i64), Value::DataLink(format!("dlfs://{SRV}{path}"))],
        )
        .expect("insert");
        tx.commit().expect("link");
    }
    let fs = sys.fs(SRV).expect("fs");
    let elapsed = run_threads(threads, |t| {
        for _ in 0..cycles {
            let (_, tp) = sys
                .select_datalink(TABLE, &Value::Int(t as i64), "body", TokenKind::Write)
                .expect("select");
            let fd = fs.open(&APP, &tp, OpenOptions::write_truncate()).expect("open");
            fs.write(fd, &content).expect("write");
            fs.close(fd).expect("close");
        }
    });
    ((threads * cycles) as f64 / elapsed.as_secs_f64(), sys.metrics())
}

fn sharding(sc: &Scenario, plan: &Plan) -> Result<ScenarioRun, String> {
    let mut rows = Vec::new();
    let mut metrics = BTreeMap::new();
    let mut snap_all = Snapshot::default();
    let mut baseline_rate = 0.0f64;
    let p0 = &plan.trials[0].params;
    let (title_threads, title_cycles, title_sync) =
        (p0.threads.unwrap_or(8), p0.cycles.unwrap_or(8), p0.sync_latency_us.unwrap_or(0));
    for trials in per_variant(sc, plan) {
        let t0 = &trials[0];
        let p = &t0.params;
        let shards = need(sc, t0, "shards", p.shards)? as usize;
        let threads = need(sc, t0, "threads", p.threads)? as usize;
        let cycles = need(sc, t0, "cycles", p.cycles)? as usize;
        let file_size = p.file_size.unwrap_or(1024) as usize;
        let sync_ns = p.sync_latency_us.unwrap_or(0) * 1000;
        let (mut rate_sum, mut busy_min) = (0.0f64, u64::MAX);
        for _ in &trials {
            let (rate, snap) = sharded_stack_rate(shards, threads, cycles, file_size, sync_ns);
            rate_sum += rate;
            // Fan-out proof off the registry: every shard node's DLFS must
            // have served managed opens (the unsharded arm keeps the
            // logical node name, shard nodes register as `<srv>.s<i>`).
            let busy = (0..shards)
                .filter(|&i| {
                    let node =
                        if shards > 1 { ShardRouter::shard_name(SRV, i) } else { SRV.to_string() };
                    snap.counters.get(&format!("dlfs.{node}.managed_opens")).is_some_and(|&c| c > 0)
                })
                .count() as u64;
            busy_min = busy_min.min(busy);
            snap_all.merge(&snap);
        }
        let rate = rate_sum / trials.len() as f64;
        if rows.is_empty() {
            baseline_rate = rate;
        }
        metrics.insert(format!("write_rate_s{shards}"), rate);
        metrics.insert(format!("write_speedup_s{shards}"), rate / baseline_rate);
        metrics.insert(format!("busy_shards_s{shards}"), busy_min as f64);
        rows.push(vec![
            t0.variant.clone(),
            s(shards),
            s(format!("{rate:.0}")),
            s(format!("{:.2}x", rate / baseline_rate)),
            s(busy_min),
        ]);
    }
    // Every exported registry metric — per-shard router counters included
    // (`engine_shard_srv1_s0_routed`, ...) — is assertable by its
    // flattened name; the engine-level names above win any collision.
    for (name, v) in snap_all.flatten() {
        metrics.entry(name).or_insert(v);
    }
    Ok(ScenarioRun {
        table: Table {
            id: sc.name.clone(),
            title: format!(
                "sharded write scale-out: update cycles/s vs shard count \
                 ({title_threads} writers x {title_cycles} cycles, per-commit sync, \
                 {title_sync} µs device sync)"
            ),
            header: vec![
                s("shards"),
                s("shard nodes"),
                s("write cyc/s"),
                s("speedup vs 1 shard"),
                s("busy shards"),
            ],
            rows,
            notes: Vec::new(),
        },
        metrics,
    })
}

// ===========================================================================
// wire_front_end — the a14 engine loop
// ===========================================================================

/// What one a14 trial measured.
struct WireOutcome {
    rate: f64,
    severed: u64,
    presumed_aborts: u64,
    atomicity_violations: u64,
    executor_peak_threads: u64,
    peak_connections: f64,
    snapshot: Snapshot,
}

/// The same churn workload as [`wire_trial`]'s surviving connections, but
/// over the in-process `Transport::Local` path — the baseline the wire
/// path's throughput is budgeted against.
fn local_churn_rate(workers: usize, cycles: usize) -> f64 {
    let f = fixture(FixtureOptions { n_files: 1, file_size: 256, ..Default::default() });
    let raw = f.sys.raw_fs(SRV).expect("raw fs");
    for i in 0..workers {
        raw.write_file(&APP, &format!("/data/wchurn{i:04}.bin"), b"x").expect("seed");
    }
    let node = f.sys.node(SRV).expect("node");
    let handles: Vec<_> = (0..workers).map(|_| node.connect_agent()).collect();
    let drivers = 16.min(workers.max(1));
    let elapsed = run_threads(drivers, |d| {
        use dl_minidb::Participant;
        for (i, agent) in handles.iter().enumerate() {
            if i % drivers != d {
                continue;
            }
            let path = format!("/data/wchurn{i:04}.bin");
            for r in 0..cycles {
                let link_tx = 1_000_000 + 2 * (i * cycles + r) as u64;
                agent
                    .link(link_tx, &path, ControlMode::Rff, true, dl_dlfm::OnUnlink::Restore)
                    .expect("link");
                agent.prepare(link_tx).expect("prepare");
                agent.commit(link_tx);
                let unlink_tx = link_tx + 1;
                agent.unlink(unlink_tx, &path).expect("unlink");
                agent.prepare(unlink_tx).expect("prepare");
                agent.commit(unlink_tx);
            }
        }
    });
    (workers * cycles * 2) as f64 / elapsed.as_secs_f64()
}

/// One a14 trial: `agents` real socket connections held open together
/// against a `Transport::Socket` node. The scenario's `sever_connections`
/// injections name how many of them link + prepare and then have their
/// socket cut mid-2PC — the host never heard of those transactions, so
/// the dropped claims must resolve by presumed abort. Every other
/// connection drives `cycles` full link/2PC/unlink rounds over the wire,
/// multiplexed over 16 driver threads. Afterwards the repository must
/// hold exactly the fixture's own links and no claim may still be
/// pending — anything else counts as an atomicity violation.
fn wire_trial(sc: &Scenario, t: &TrialSpec) -> Result<WireOutcome, String> {
    use dl_dlfm::AgentConnection;
    let p = &t.params;
    let agents = need(sc, t, "agents", p.agents)? as usize;
    let cycles = p.cycles.unwrap_or(1) as usize;
    let sever: usize = p
        .injections
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|i| match i.action {
            InjectAction::SeverConnections { count } => count as usize,
            _ => 0,
        })
        .sum();
    if sever >= agents {
        return Err(format!(
            "scenario {}: sever_connections total {sever} must stay below agents = {agents}",
            sc.name
        ));
    }
    let f = fixture(FixtureOptions {
        n_files: 1,
        file_size: 256,
        transport: Transport::Socket,
        ..Default::default()
    });
    let node = f.sys.node(SRV)?;
    let wire = node.wire().ok_or("Transport::Socket must bring the wire front end up")?;
    let raw = f.sys.raw_fs(SRV)?;
    let workers = agents - sever;
    for i in 0..workers {
        raw.write_file(&APP, &format!("/data/wchurn{i:04}.bin"), b"x")
            .map_err(|e| e.to_string())?;
    }
    for j in 0..sever {
        raw.write_file(&APP, &format!("/data/doomed{j:04}.bin"), b"x")
            .map_err(|e| e.to_string())?;
    }

    // Every connection is a real socket, and they are all open at once:
    // the concurrency the scenario claims is whatever peak the net gauge
    // records, not an extrapolation.
    let conns: Vec<_> =
        (0..agents).map(|i| wire.connect(&format!("a14-{i}"))).collect::<Result<_, _>>()?;

    // Mid-2PC severing: the doomed connections link and prepare, then die
    // holding the in-doubt claim.
    let aborts_before = wire.daemon.presumed_aborts().get();
    for (j, conn) in conns[workers..].iter().enumerate() {
        let agent = WireAgent(Arc::clone(conn));
        let txid = 3_000_000 + 2 * j as u64;
        let path = format!("/data/doomed{j:04}.bin");
        agent.link(txid, &path, ControlMode::Rff, true, dl_dlfm::OnUnlink::Restore)?;
        agent.prepare(txid).map_err(|e| e.to_string())?;
        conn.sever();
    }

    // Churn: the surviving connections drive full link/2PC/unlink rounds
    // over the wire while the severed claims resolve underneath.
    let drivers = 16.min(workers.max(1));
    let elapsed = run_threads(drivers, |d| {
        for (i, conn) in conns[..workers].iter().enumerate() {
            if i % drivers != d {
                continue;
            }
            let agent = WireAgent(Arc::clone(conn));
            let path = format!("/data/wchurn{i:04}.bin");
            for r in 0..cycles {
                let link_tx = 1_000_000 + 2 * (i * cycles + r) as u64;
                agent
                    .link(link_tx, &path, ControlMode::Rff, true, dl_dlfm::OnUnlink::Restore)
                    .expect("link");
                agent.prepare(link_tx).expect("prepare");
                agent.commit(link_tx);
                let unlink_tx = link_tx + 1;
                agent.unlink(unlink_tx, &path).expect("unlink");
                agent.prepare(unlink_tx).expect("prepare");
                agent.commit(unlink_tx);
            }
        }
    });
    let rate = (workers * cycles * 2) as f64 / elapsed.as_secs_f64();

    // The severed claims must drain: presumed abort resolves each one and
    // the pending table empties.
    let deadline = Instant::now() + Duration::from_secs(30);
    while (wire.daemon.presumed_aborts().get() < aborts_before + sever as u64
        || !node.server.pending_host_txns().is_empty())
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let presumed_aborts = wire.daemon.presumed_aborts().get() - aborts_before;

    // Atomicity audit, straight off the repository: any file beyond the
    // fixture's own links (a doomed link that survived its abort, a churn
    // link whose unlink never settled) or any still-pending claim is a
    // violation.
    let leftovers = node
        .server
        .repository()
        .list_files()
        .into_iter()
        .filter(|e| !f.paths.contains(&e.path))
        .count() as u64;
    let unresolved = node.server.pending_host_txns().len() as u64;
    let atomicity_violations = leftovers + unresolved;

    let executor_peak_threads = (node
        .main_daemon()
        .executor_stats()
        .map(|s| s.peak_workers())
        .unwrap_or_else(|| node.main_daemon().executor_threads())
        + wire.daemon.settle_stats().peak_workers()) as u64;

    // Snapshot while the surviving connections are still open, so the
    // live `net.*.connections` gauge backs the concurrency claim too.
    let snapshot = f.sys.metrics();
    let peak_connections =
        snapshot.gauges.get(&format!("net.{SRV}.peak_connections")).copied().unwrap_or(0.0);
    drop(conns);
    Ok(WireOutcome {
        rate,
        severed: sever as u64,
        presumed_aborts,
        atomicity_violations,
        executor_peak_threads,
        peak_connections,
        snapshot,
    })
}

fn wire_front_end(sc: &Scenario, plan: &Plan) -> Result<ScenarioRun, String> {
    let mut rows = Vec::new();
    let mut metrics = BTreeMap::new();
    let mut snap_all = Snapshot::default();
    let (mut severed, mut presumed, mut violations) = (0u64, 0u64, 0u64);
    let (mut peak_conns, mut exec_peak) = (0.0f64, 0u64);
    let mut wire_rate_first = None;
    let p0 = &plan.trials[0].params;
    let (title_agents, title_cycles) = (p0.agents.unwrap_or(0), p0.cycles.unwrap_or(1));

    // The in-process baseline the wire path is budgeted against: the same
    // churn workload shape as the first variant, over `Transport::Local`.
    let base_workers = (p0.agents.unwrap_or(64) as usize).saturating_sub(
        p0.injections
            .as_deref()
            .unwrap_or_default()
            .iter()
            .map(|i| match i.action {
                InjectAction::SeverConnections { count } => count as usize,
                _ => 0,
            })
            .sum(),
    );
    let local_rate = local_churn_rate(base_workers, p0.cycles.unwrap_or(1) as usize);
    metrics.insert("local_ops_s".into(), local_rate);
    rows.push(vec![
        s("local baseline"),
        s(base_workers),
        s(format!("{local_rate:.0}")),
        s("--"),
        s("--"),
        s("in-process Transport::Local, same churn shape"),
    ]);

    for trials in per_variant(sc, plan) {
        let t0 = &trials[0];
        let mut rate_sum = 0.0f64;
        let mut conns_cell = 0u64;
        for t in &trials {
            let o = wire_trial(sc, t)?;
            rate_sum += o.rate;
            severed += o.severed;
            presumed += o.presumed_aborts;
            violations += o.atomicity_violations;
            peak_conns = peak_conns.max(o.peak_connections);
            exec_peak = exec_peak.max(o.executor_peak_threads);
            conns_cell = t.params.agents.unwrap_or(0);
            snap_all.merge(&o.snapshot);
        }
        let rate = rate_sum / trials.len() as f64;
        if wire_rate_first.is_none() {
            wire_rate_first = Some(rate);
        }
        rows.push(vec![
            t0.variant.clone(),
            s(conns_cell),
            s(format!("{rate:.0}")),
            s(format!("{peak_conns:.0}")),
            s(exec_peak),
            s(format!("{severed} severed mid-2PC, {presumed} presumed aborts")),
        ]);
    }
    let wire_rate = wire_rate_first.unwrap_or(0.0);
    metrics.insert("wire_ops_s".into(), wire_rate);
    metrics.insert("wire_vs_local".into(), wire_rate / local_rate.max(1e-9));
    metrics.insert("peak_connections".into(), peak_conns);
    metrics.insert("executor_peak_threads".into(), exec_peak as f64);
    metrics.insert("severed".into(), severed as f64);
    metrics.insert("presumed_aborts".into(), presumed as f64);
    metrics.insert("atomicity_violations".into(), violations as f64);
    // Every exported registry metric — the `net.*` frame counters and
    // round-trip histogram included — is assertable by its flattened name.
    for (name, v) in snap_all.flatten() {
        metrics.entry(name).or_insert(v);
    }
    Ok(ScenarioRun {
        table: Table {
            id: sc.name.clone(),
            title: format!(
                "wire front end: {title_agents} socket connections x {title_cycles} churn \
                 cycles over the framed transport, severed mid-2PC connections resolved by \
                 presumed abort"
            ),
            header: vec![
                s("arm"),
                s("conns"),
                s("ops/s"),
                s("peak conns"),
                s("exec threads"),
                s("note"),
            ],
            rows,
            notes: Vec::new(),
        },
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_lab::parse_scenario;

    fn run(text: &str) -> ScenarioRun {
        let sc = parse_scenario("test.jsonl", text).unwrap();
        run_scenario(&sc, true).unwrap()
    }

    #[test]
    fn mixed_engine_runs_and_emits_metrics() {
        let run = run(concat!(
            r#"{"scenario":"m","kind":"mixed","seed":7,"#,
            r#""params":{"clients":2,"ops":8,"write_ratio":0.5,"file_size":64},"#,
            r#""assert":["ops_failed == 0","stale_reads == 0"]}"#,
            "\n",
            r#"{"variant":"tiny"}"#,
        ));
        assert_eq!(run.table.rows.len(), 1);
        assert_eq!(run.metrics["ops_ok"], 16.0);
        assert_eq!(run.metrics["ops_failed"], 0.0);
        // The registry snapshot rides the metric map under flattened names.
        assert!(run.metrics["op_p99_ms"] > 0.0, "per-op latency must be recorded");
        assert_eq!(run.metrics["lab_op_latency_ns_count"], 16.0);
        assert_eq!(run.metrics["dlfm_srv1_stale_coord_rejections"], 0.0);
        assert!(run.metrics.contains_key("engine_freshness_wait_ns_p99"));
        assert!(run.metrics["minidb_host_fsync_ns_count"] > 0.0);
        let sc = parse_scenario(
            "test.jsonl",
            concat!(
                r#"{"scenario":"m","kind":"mixed","seed":7,"#,
                r#""assert":["ops_failed == 0","no_such_metric == 1"]}"#,
                "\n",
                r#"{"variant":"tiny"}"#,
            ),
        )
        .unwrap();
        let outcomes = check_asserts(&sc, &run.metrics);
        assert!(outcomes[0].pass);
        assert!(!outcomes[1].pass, "unknown metric must fail, not silently pass");
    }

    #[test]
    fn kill_injection_panics_workers_and_fails_only_those_ops() {
        let run = run(concat!(
            r#"{"scenario":"k","kind":"mixed","seed":3,"#,
            r#""params":{"clients":2,"ops":12,"file_size":64,"#,
            r#""injections":[{"at_op":8,"action":"kill_upcall_workers","count":2}]}}"#,
            "\n",
            r#"{"variant":"kill"}"#,
        ));
        assert_eq!(run.metrics["worker_panics"], 2.0, "exactly the armed kills fire");
        assert_eq!(run.metrics["ops_failed"], 2.0, "one failed op per killed worker");
        assert_eq!(run.metrics["ops_ok"], 22.0);
    }

    #[test]
    fn stall_and_resume_keep_fresh_reads_fresh() {
        let run = run(concat!(
            r#"{"scenario":"sr","kind":"mixed","seed":11,"#,
            r#""params":{"clients":2,"ops":10,"replicas":1,"write_ratio":0.4,"#,
            r#""file_size":64,"read_route":"fresh","#,
            r#""injections":[{"at_op":4,"action":"stall_standby"},"#,
            r#"{"at_op":14,"action":"resume_standby"}]}}"#,
            "\n",
            r#"{"variant":"stall"}"#,
        ));
        assert_eq!(run.metrics["stale_reads"], 0.0, "freshness tokens must hold under stall");
        assert_eq!(run.metrics["ops_failed"], 0.0);
        assert_eq!(run.metrics["end_lag_drained"], 1.0);
    }

    #[test]
    fn mixed_engine_runs_the_fault_matrix_on_the_sharded_stack() {
        // The PR 9 sharded front under the PR 7 fault matrix: crash the
        // first shard's primary mid-workload while the other shard keeps
        // serving, then kill upcall workers. Only acked links survive the
        // failover and nothing leaks.
        let run = run(concat!(
            r#"{"scenario":"ms","kind":"mixed","seed":5,"#,
            r#""params":{"clients":2,"ops":12,"shards":2,"replicas":1,"#,
            r#""write_ratio":0.4,"churn_ratio":0.3,"file_size":64,"#,
            r#""injections":[{"at_op":6,"action":"crash_primary"},"#,
            r#"{"at_op":10,"action":"kill_upcall_workers","count":1}]}}"#,
            "\n",
            r#"{"variant":"sharded"}"#,
        ));
        assert_eq!(run.metrics["failovers"], 1.0);
        assert_eq!(run.metrics["lost_acked_links"], 0.0, "acked links must ride the standby");
        assert_eq!(run.metrics["worker_panics"], 1.0);
        assert_eq!(run.metrics["leftover_links"], 0.0, "churn links must all unwind");
        // Per-shard instruments are summed across `<srv>.s<i>` nodes, so
        // the panic shows up even though it hit only one shard.
        assert!(run.metrics["ops_ok"] > 0.0);
    }

    #[test]
    fn wire_engine_severs_mid_2pc_and_presumes_abort() {
        let run = run(concat!(
            r#"{"scenario":"w","kind":"wire_front_end","seed":2,"#,
            r#""params":{"agents":12,"cycles":1,"#,
            r#""injections":[{"at_op":0,"action":"sever_connections","count":3}]}}"#,
            "\n",
            r#"{"variant":"wire"}"#,
        ));
        assert_eq!(run.metrics["severed"], 3.0);
        assert_eq!(run.metrics["presumed_aborts"], 3.0, "every severed claim resolves by abort");
        assert_eq!(run.metrics["atomicity_violations"], 0.0);
        // 12 agent sockets + engine + DLFS standing connections.
        assert!(run.metrics["peak_connections"] >= 14.0);
        assert!(run.metrics["executor_peak_threads"] <= 32.0);
        assert!(run.metrics["wire_ops_s"] > 0.0);
        assert!(run.metrics["local_ops_s"] > 0.0);
        // The net instruments ride the metric map under flattened names.
        assert_eq!(run.metrics["net_srv1_decode_errors"], 0.0);
        assert!(run.metrics["net_srv1_frames_in"] > 0.0);
        assert!(run.metrics["net_srv1_round_trip_ns_count"] > 0.0);
        // Two rows: the in-process baseline and the wire arm.
        assert_eq!(run.table.rows.len(), 2);
    }

    #[test]
    fn sever_injection_is_rejected_off_the_wire() {
        let sc = parse_scenario(
            "test.jsonl",
            concat!(
                r#"{"scenario":"bad","kind":"mixed","seed":1,"#,
                r#""params":{"clients":1,"ops":4,"file_size":64,"#,
                r#""injections":[{"at_op":2,"action":"sever_connections"}]}}"#,
                "\n",
                r#"{"variant":"x"}"#,
            ),
        )
        .unwrap();
        let err = run_scenario(&sc, true).err().expect("sever off the wire must fail");
        assert!(err.contains("wire_front_end"), "must point at the wire kind: {err}");
    }

    #[test]
    fn pick_op_is_independent_of_segmentation() {
        let p =
            dl_lab::Params { write_ratio: Some(0.3), churn_ratio: Some(0.2), ..Default::default() };
        for g in 0..64u64 {
            let a = pick_op(42, g, g % 4, 4, 8, &p);
            let b = pick_op(42, g, g % 4, 4, 8, &p);
            let tag = |o: &Op| match o {
                Op::Write { file } => ("w", *file),
                Op::Churn => ("c", 0),
                Op::Read { file } => ("r", *file),
            };
            assert_eq!(tag(&a), tag(&b));
            if let Op::Write { file } = a {
                assert_eq!(file as u64 % 4, g % 4, "writers only touch owned files");
            }
        }
    }
}
