//! Benchmark support: fixtures, workload generators and measurement
//! helpers shared by the Criterion benches and the `report` binary.
//!
//! Every experiment from DESIGN.md (T1, E1–E4, A1–A7) has its runner in
//! [`experiments`] so the Criterion benches and the paper-style report
//! print from the same code paths.

use std::time::{Duration, Instant};

use dl_core::{
    ControlMode, DataLinksSystem, DlColumnOptions, FileServerSpec, SystemBuilder, TokenKind,
};
use dl_dlfm::{DlfmConfig, FaultInjector, OnUnlink, Transport};
use dl_dlfs::{DlfsConfig, WaitPolicy};
use dl_fskit::memfs::IoModel;
use dl_fskit::{Cred, OpenOptions};
use dl_minidb::{Column, ColumnType, DbOptions, Schema, StorageEnv, Value};

pub mod experiments;
pub mod lab;
pub mod trajectory;

/// The benchmark application user.
pub const APP: Cred = Cred { uid: 100, gid: 100 };
/// Name of the single file server used by fixtures.
pub const SRV: &str = "srv1";
/// Table used by fixtures.
pub const TABLE: &str = "docs";

/// A ready-to-measure system with linked files.
pub struct Fixture {
    pub sys: DataLinksSystem,
    pub paths: Vec<String>,
    pub urls: Vec<String>,
    /// The host database's storage environment — kept so fault scenarios
    /// can arm crash-boundary faults (torn WAL tails) on the *host* side,
    /// not just the repository side.
    pub host_env: StorageEnv,
}

/// Options for building a fixture.
#[derive(Clone, Copy)]
pub struct FixtureOptions {
    pub mode: ControlMode,
    pub n_files: usize,
    pub file_size: usize,
    pub io: IoModel,
    pub sync_archive: bool,
    pub track_read_sync: bool,
    pub strict: bool,
    pub wait_policy: WaitPolicy,
    pub recovery: bool,
    /// Commit-pipeline options applied to *both* the host database and the
    /// DLFM repository (group commit vs per-commit sync, batch, delay).
    pub db: DbOptions,
    /// Deterministic `sync` cost charged by the WAL devices of the host
    /// database and the DLFM repository (commit-throughput experiments).
    pub db_sync_latency_ns: u64,
    /// Hot-standby repositories per file server (replication experiments).
    pub replicas: usize,
    /// Hot standbys of the *host database* (coordinator failover
    /// experiments). Zero keeps the paper's unreplicated coordinator.
    pub host_replicas: usize,
    /// Bounds of the elastic upcall pool; `None` keeps the `DlfmConfig`
    /// defaults, `Some((n, n))` pins the PR 2 fixed shape (a12 arms).
    pub upcall_pool: Option<(usize, usize)>,
    /// Run one OS thread per agent connection (the paper's child-agent
    /// model) instead of the shared executor (a12 contrast arm).
    pub thread_per_agent: bool,
    /// DLFM namespace shards behind the node (a13 scale-out arms).
    pub shards: usize,
    /// How the engine and DLFS reach the node: in-process queues or the
    /// framed socket transport (a14 wire front-end arms).
    pub transport: Transport,
}

impl Default for FixtureOptions {
    fn default() -> Self {
        FixtureOptions {
            mode: ControlMode::Rdd,
            n_files: 4,
            file_size: 4 * 1024,
            io: IoModel::default(),
            sync_archive: false,
            track_read_sync: true,
            strict: false,
            wait_policy: WaitPolicy::Block,
            recovery: true,
            db: DbOptions::default(),
            db_sync_latency_ns: 0,
            replicas: 0,
            host_replicas: 0,
            upcall_pool: None,
            thread_per_agent: false,
            shards: 1,
            transport: Transport::Local,
        }
    }
}

/// Builds a system, seeds files, creates the table and links every file.
pub fn fixture(opts: FixtureOptions) -> Fixture {
    fixture_with_fault(opts, None, None)
}

/// [`fixture`] with optional fault hooks: an upcall fault injector on the
/// node (the scenario lab's `kill_upcall_workers` injection point) and a
/// [`dl_minidb::DiskFaults`] layer under the DLFM repository's storage environment
/// (the lab's `disk_enospc` injection point). Separate from
/// [`FixtureOptions`] so the options stay `Copy`.
pub fn fixture_with_fault(
    opts: FixtureOptions,
    fault: Option<FaultInjector>,
    repo_faults: Option<std::sync::Arc<dl_minidb::DiskFaults>>,
) -> Fixture {
    fixture_with_faults(opts, fault, repo_faults, None)
}

/// [`fixture_with_fault`] with one more fault surface: a
/// [`dl_minidb::DiskFaults`] layer under the *host database's* storage
/// environment, so lab scenarios can exhaust or shear the coordinator's
/// WAL rather than the repository's.
pub fn fixture_with_faults(
    opts: FixtureOptions,
    fault: Option<FaultInjector>,
    repo_faults: Option<std::sync::Arc<dl_minidb::DiskFaults>>,
    host_faults: Option<std::sync::Arc<dl_minidb::DiskFaults>>,
) -> Fixture {
    let mut dlfm = DlfmConfig::new(SRV);
    dlfm.sync_archive = opts.sync_archive;
    dlfm.track_read_sync = opts.track_read_sync;
    dlfm.strict_link = opts.strict;
    dlfm.db = opts.db;
    dlfm.thread_per_agent = opts.thread_per_agent;
    dlfm.transport = opts.transport;
    if let Some((min, max)) = opts.upcall_pool {
        dlfm = dlfm.upcall_workers(min, max);
    }
    let mem_env = || {
        if opts.db_sync_latency_ns > 0 {
            StorageEnv::mem_with_sync_latency(opts.db_sync_latency_ns)
        } else {
            StorageEnv::mem()
        }
    };
    let repo_env = match &repo_faults {
        Some(faults) => {
            StorageEnv::mem_with_faults(std::sync::Arc::clone(faults), opts.db_sync_latency_ns)
        }
        None => mem_env(),
    };
    let spec = FileServerSpec {
        name: SRV.to_string(),
        dlfm,
        dlfs: DlfsConfig { wait_policy: opts.wait_policy, strict: opts.strict },
        io: opts.io,
        repo_env,
        replicas: opts.replicas,
        upcall_fault: fault,
        shards: opts.shards.max(1),
    };
    let host_env = match &host_faults {
        Some(faults) => {
            StorageEnv::mem_with_faults(std::sync::Arc::clone(faults), opts.db_sync_latency_ns)
        }
        None => mem_env(),
    };
    let sys = SystemBuilder::new()
        .host_env(host_env.clone())
        .host_db_opts(opts.db)
        .host_replicas(opts.host_replicas)
        .file_server_with(spec)
        .build()
        .expect("build system");

    let raw = sys.raw_fs(SRV).expect("raw fs");
    raw.mkdir_p(&Cred::root(), "/data", 0o777).expect("mkdir");
    let content = make_content(opts.file_size);

    sys.create_table(
        Schema::new(
            TABLE,
            vec![
                Column::new("id", ColumnType::Int),
                Column::nullable("body", ColumnType::DataLink),
            ],
            "id",
        )
        .expect("schema"),
    )
    .expect("create table");
    sys.define_datalink_column(
        TABLE,
        "body",
        DlColumnOptions::new(opts.mode)
            .recovery(opts.recovery)
            .on_unlink(OnUnlink::Restore)
            .token_ttl_ms(600_000),
    )
    .expect("define column");

    let mut paths = Vec::new();
    let mut urls = Vec::new();
    for i in 0..opts.n_files {
        let path = format!("/data/doc{i:04}.bin");
        raw.write_file(&APP, &path, &content).expect("seed file");
        let url = format!("dlfs://{SRV}{path}");
        let mut tx = sys.begin();
        tx.insert(TABLE, vec![Value::Int(i as i64), Value::DataLink(url.clone())]).expect("insert");
        tx.commit().expect("commit");
        paths.push(path);
        urls.push(url);
    }
    Fixture { sys, paths, urls, host_env }
}

/// Deterministic pseudo-random content of `size` bytes.
pub fn make_content(size: usize) -> Vec<u8> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..size)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

impl Fixture {
    /// Token-embedded path for file `i`.
    pub fn token_path(&self, i: usize, kind: TokenKind) -> String {
        let (_, path) = self
            .sys
            .select_datalink(TABLE, &Value::Int(i as i64), "body", kind)
            .expect("select datalink");
        path
    }

    /// Full read of file `i` through the managed stack (token path).
    pub fn managed_read(&self, i: usize) -> usize {
        let path = self.token_path(i, TokenKind::Read);
        let fs = self.sys.fs(SRV).expect("fs");
        let fd = fs.open(&APP, &path, OpenOptions::read_only()).expect("open");
        let data = fs.read_to_end(fd).expect("read");
        fs.close(fd).expect("close");
        data.len()
    }

    /// Full read of an *unlinked* control file through the same stack.
    pub fn plain_read(&self, path: &str) -> usize {
        let fs = self.sys.fs(SRV).expect("fs");
        let fd = fs.open(&APP, path, OpenOptions::read_only()).expect("open");
        let data = fs.read_to_end(fd).expect("read");
        fs.close(fd).expect("close");
        data.len()
    }

    /// One full update-in-place cycle on file `i`, waiting out the async
    /// archive so back-to-back updates don't measure archive blocking
    /// unless the experiment wants exactly that.
    pub fn managed_update(&self, i: usize, content: &[u8]) {
        self.managed_update_no_wait(i, content);
        self.sys.node(SRV).expect("node").server.archive_store().wait_archived(&self.paths[i]);
    }

    /// One update cycle without waiting for the archiver.
    pub fn managed_update_no_wait(&self, i: usize, content: &[u8]) {
        let path = self.token_path(i, TokenKind::Write);
        let fs = self.sys.fs(SRV).expect("fs");
        let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
        fs.write(fd, content).expect("write");
        fs.close(fd).expect("close");
    }
}

/// Measures `f` over `iters` iterations, returning ns/iter.
pub fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs `f` once and returns the wall time.
pub fn time_once(f: impl FnOnce()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Percentile from a sample vector (nanoseconds); sorts in place.
pub fn percentile(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx]
}

/// Human formatting for ns quantities.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Spawns `n` threads over `f(thread_idx)` and joins them; returns elapsed.
pub fn run_threads(n: usize, f: impl Fn(usize) + Send + Sync) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        let f = &f;
        for i in 0..n {
            scope.spawn(move || f(i));
        }
    });
    start.elapsed()
}
