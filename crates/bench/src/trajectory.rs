//! BENCH_*.json trajectory files: parsing and cross-PR regression
//! comparison for the report binary's `--compare` mode.
//!
//! The workspace builds without serde (vendor/README.md), so this module
//! carries a small hand-rolled parser for the restricted JSON the report
//! emits ([`crate::experiments::Table::to_json`]): one flat object whose
//! values are strings, string arrays, or arrays of string arrays.

use std::fmt::Write as _;

/// A parsed `BENCH_<id>.json` file — the persistent form of an experiment
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    pub id: String,
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| self.err(&format!("bad \\u escape: {e}")))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(&format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences verbatim.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn string_array(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.string()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn row_array(&mut self) -> Result<Vec<Vec<String>>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.string_array()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']' in rows")),
            }
        }
    }
}

/// Parses one `BENCH_<id>.json` document.
pub fn parse(json: &str) -> Result<Trajectory, String> {
    let mut p = Parser::new(json);
    p.expect(b'{')?;
    let mut t = Trajectory {
        id: String::new(),
        title: String::new(),
        header: Vec::new(),
        rows: Vec::new(),
        notes: Vec::new(),
    };
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "id" => t.id = p.string()?,
            "title" => t.title = p.string()?,
            "header" => t.header = p.string_array()?,
            "rows" => t.rows = p.row_array()?,
            "notes" => t.notes = p.string_array()?,
            other => return Err(format!("unexpected key {other:?}")),
        }
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => break,
            _ => return Err(p.err("expected ',' or '}'")),
        }
    }
    if t.id.is_empty() {
        return Err("trajectory has no id".into());
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// A cell value normalized for comparison: time-like, percentage and ratio
/// cells become nanosecond / plain-number floats, everything else stays
/// text.
fn numeric(cell: &str) -> Option<f64> {
    let s = cell.trim().trim_start_matches('+');
    if let Ok(v) = s.parse::<f64>() {
        return Some(v);
    }
    if let Some(pct) = s.strip_suffix('%') {
        return pct.trim().parse::<f64>().ok();
    }
    if let Some(ratio) = s.strip_suffix('x') {
        // Speedup cells like "1.23x" (a9's speedup columns).
        if let Ok(v) = ratio.trim().parse::<f64>() {
            return Some(v);
        }
    }
    for (suffix, scale) in [("ns", 1.0), ("µs", 1e3), ("us", 1e3), ("ms", 1e6), ("s", 1e9)] {
        if let Some(num) = s.strip_suffix(suffix) {
            if let Ok(v) = num.trim().parse::<f64>() {
                return Some(v * scale);
            }
        }
    }
    None
}

/// Reads one numeric cell out of a trajectory, addressed by row label
/// (first cell) and column header name. The report binary's `--gate` mode
/// uses this to compare one figure across two *different* tables (a12's
/// in-process churn vs a14's wire churn), where a full [`compare`] would
/// drown in missing-row noise.
pub fn read_cell(t: &Trajectory, row_label: &str, column: &str) -> Result<f64, String> {
    let row = t
        .rows
        .iter()
        .find(|r| r.first().map(String::as_str) == Some(row_label))
        .ok_or_else(|| format!("table {}: no row labelled {row_label:?}", t.id))?;
    let idx = t
        .header
        .iter()
        .position(|h| h == column)
        .ok_or_else(|| format!("table {}: no column {column:?} in {:?}", t.id, t.header))?;
    let cell = row
        .get(idx)
        .ok_or_else(|| format!("table {}: row {row_label:?} has no cell {idx}", t.id))?;
    numeric(cell).ok_or_else(|| {
        format!("table {}: cell {row_label:?}/{column:?} = {cell:?} is not numeric", t.id)
    })
}

/// One per-metric delta between a baseline cell and the current cell.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    pub table: String,
    pub row: String,
    pub column: String,
    pub baseline: String,
    pub current: String,
    /// Percent change for numeric cells; `None` for text cells or when the
    /// baseline is zero.
    pub delta_pct: Option<f64>,
    /// Numeric drift beyond the threshold, a changed text cell, or a
    /// missing counterpart.
    pub regressed: bool,
}

/// Result of comparing one experiment's trajectories.
#[derive(Debug, Default)]
pub struct CompareReport {
    pub deltas: Vec<MetricDelta>,
    /// Row labels present only in the baseline or only in the current run.
    pub missing_rows: Vec<String>,
    pub extra_rows: Vec<String>,
}

impl CompareReport {
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count() + self.missing_rows.len()
    }
}

/// Compares `current` against `baseline`, flagging any numeric metric that
/// drifted by more than `threshold_pct` percent (either direction — a
/// "10× faster" cell is as suspicious as a 10× slower one in a determinism
/// check; for timing-noise tables pick a generous threshold) and any text
/// cell that changed at all.
pub fn compare(baseline: &Trajectory, current: &Trajectory, threshold_pct: f64) -> CompareReport {
    let mut report = CompareReport::default();
    let label = |row: &[String]| row.first().cloned().unwrap_or_default();

    for base_row in &baseline.rows {
        let key = label(base_row);
        let Some(cur_row) = current.rows.iter().find(|r| label(r) == key) else {
            report.missing_rows.push(key);
            continue;
        };
        for (i, base_cell) in base_row.iter().enumerate().skip(1) {
            let cur_cell = cur_row.get(i).map(String::as_str).unwrap_or("");
            let column = baseline.header.get(i).cloned().unwrap_or_else(|| format!("col{i}"));
            let (delta_pct, regressed) = match (numeric(base_cell), numeric(cur_cell)) {
                (Some(b), Some(c)) => {
                    if b == 0.0 {
                        (None, c != 0.0)
                    } else {
                        let pct = (c - b) / b * 100.0;
                        (Some(pct), pct.abs() > threshold_pct)
                    }
                }
                _ => (None, base_cell.trim() != cur_cell.trim()),
            };
            report.deltas.push(MetricDelta {
                table: baseline.id.clone(),
                row: key.clone(),
                column,
                baseline: base_cell.clone(),
                current: cur_cell.to_string(),
                delta_pct,
                regressed,
            });
        }
    }
    for cur_row in &current.rows {
        let key = label(cur_row);
        if !baseline.rows.iter().any(|r| label(r) == key) {
            report.extra_rows.push(key);
        }
    }
    report
}

/// Renders a compare report as the report binary prints it: per-metric
/// deltas, regressions flagged.
pub fn render(id: &str, report: &CompareReport, threshold_pct: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== compare {id}: {} metrics, {} regression(s) (threshold {threshold_pct}%) ==",
        report.deltas.len(),
        report.regressions(),
    );
    for d in &report.deltas {
        let delta = match d.delta_pct {
            Some(pct) => format!("{pct:+.1}%"),
            None if d.baseline == d.current => "=".to_string(),
            None => "changed".to_string(),
        };
        let flag = if d.regressed { "  <-- REGRESSION" } else { "" };
        if d.regressed || d.delta_pct.map(|p| p.abs() > threshold_pct / 2.0).unwrap_or(false) {
            let _ = writeln!(
                out,
                "  {} / {}: {} -> {}  ({delta}){flag}",
                d.row, d.column, d.baseline, d.current
            );
        }
    }
    for row in &report.missing_rows {
        let _ = writeln!(out, "  row {row:?} missing from current run  <-- REGRESSION");
    }
    for row in &report.extra_rows {
        let _ = writeln!(out, "  row {row:?} is new in current run");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Table;

    fn table() -> Table {
        Table {
            id: "X1".into(),
            title: "a \"quoted\" title\nwith newline".into(),
            header: vec!["op".into(), "ns/op".into(), "time".into()],
            rows: vec![
                vec!["read".into(), "1000".into(), "1.00 µs".into()],
                vec!["write".into(), "2500".into(), "2.50 µs".into()],
            ],
            notes: vec!["tab\there".into()],
        }
    }

    #[test]
    fn parse_roundtrips_to_json_output() {
        let t = table();
        let parsed = parse(&t.to_json()).unwrap();
        assert_eq!(parsed.id, "X1");
        assert_eq!(parsed.title, t.title);
        assert_eq!(parsed.header, t.header);
        assert_eq!(parsed.rows, t.rows);
        assert_eq!(parsed.notes, t.notes);
    }

    #[test]
    fn numeric_parses_units() {
        assert_eq!(numeric("123"), Some(123.0));
        assert_eq!(numeric("1.50 µs"), Some(1500.0));
        assert_eq!(numeric("2 ms"), Some(2e6));
        assert_eq!(numeric("750 ns"), Some(750.0));
        assert_eq!(numeric("3.5%"), Some(3.5));
        assert_eq!(numeric("+1.25 µs"), Some(1250.0));
        assert_eq!(numeric("1.23x"), Some(1.23));
        assert_eq!(numeric("allow"), None);
    }

    #[test]
    fn read_cell_addresses_by_row_label_and_header() {
        let t = parse(&table().to_json()).unwrap();
        assert_eq!(read_cell(&t, "write", "ns/op").unwrap(), 2500.0);
        assert_eq!(read_cell(&t, "read", "time").unwrap(), 1000.0);
        assert!(read_cell(&t, "nope", "ns/op").unwrap_err().contains("no row"));
        assert!(read_cell(&t, "read", "nope").unwrap_err().contains("no column"));
    }

    #[test]
    fn self_compare_reports_zero_regressions() {
        let t = parse(&table().to_json()).unwrap();
        let report = compare(&t, &t, 10.0);
        assert_eq!(report.regressions(), 0);
        assert!(report.deltas.iter().all(|d| d.delta_pct.unwrap_or(0.0) == 0.0));
    }

    #[test]
    fn drift_beyond_threshold_is_a_regression() {
        let base = parse(&table().to_json()).unwrap();
        let mut cur = base.clone();
        cur.rows[0][1] = "1500".into(); // +50% on a 10% threshold
        let report = compare(&base, &cur, 10.0);
        assert_eq!(report.regressions(), 1);
        let bad = report.deltas.iter().find(|d| d.regressed).unwrap();
        assert_eq!(bad.row, "read");
        assert!((bad.delta_pct.unwrap() - 50.0).abs() < 1e-9);
        // The same drift under a generous threshold passes.
        assert_eq!(compare(&base, &cur, 60.0).regressions(), 0);
    }

    #[test]
    fn text_change_and_missing_row_are_regressions() {
        let base = parse(&table().to_json()).unwrap();
        let mut cur = base.clone();
        cur.rows[1][2] = "broken".into(); // text change (unparseable)
        cur.rows.remove(0); // "read" row gone
        let report = compare(&base, &cur, 10.0);
        assert!(report.regressions() >= 2);
        assert_eq!(report.missing_rows, vec!["read".to_string()]);
    }
}
