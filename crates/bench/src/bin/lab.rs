//! Scenario-lab runner: loads declarative scenario files, expands each
//! into its `variant × repeat` trial plan, drives the trials against a
//! live system and checks the scenario's own assertion predicates.
//!
//!     lab [--quick] [--json] [--json-dir DIR] <scenario.jsonl>...
//!
//! * `--quick` applies each scenario's `"quick"` parameter overrides
//!   (the CI shape).
//! * `--json` / `--json-dir DIR` write one `BENCH_<scenario>.json` per
//!   scenario for `report --compare`.
//!
//! Exit status: `0` all scenarios ran and every predicate held, `1` at
//! least one predicate failed (or a trial errored), `2` a scenario file
//! failed to parse or declared an impossible configuration.

use std::path::PathBuf;
use std::process::ExitCode;

use dl_bench::lab::{check_asserts, run_scenario};

fn main() -> ExitCode {
    let mut quick = false;
    let mut json = false;
    let mut json_dir: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--json-dir" => match args.next() {
                Some(d) => json_dir = Some(PathBuf::from(d)),
                None => return usage("--json-dir needs a directory"),
            },
            other if other.starts_with("--json-dir=") => {
                json_dir = Some(PathBuf::from(&other["--json-dir=".len()..]));
            }
            "--help" | "-h" => {
                println!("usage: lab [--quick] [--json] [--json-dir DIR] <scenario.jsonl>...");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => return usage(&format!("unknown flag {other}")),
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        return usage("no scenario files given");
    }
    let out_dir = json_dir.or_else(|| json.then(|| PathBuf::from(".")));

    // Parse everything up front: a malformed scenario is a configuration
    // error (exit 2) and should surface before any trial burns time.
    let mut scenarios = Vec::new();
    for path in &files {
        match dl_lab::load_scenario(std::path::Path::new(path)) {
            Ok(sc) => scenarios.push(sc),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed_asserts = 0usize;
    for sc in &scenarios {
        let run = match run_scenario(sc, quick) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        println!("{}", run.table.render());
        for outcome in check_asserts(sc, &run.metrics) {
            let verdict = if outcome.pass { "PASS" } else { "FAIL" };
            println!("  assert {}: {verdict}", outcome.text);
            if !outcome.pass {
                failed_asserts += 1;
            }
        }
        println!();
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            let path = dir.join(format!("BENCH_{}.json", run.table.id));
            if let Err(e) = std::fs::write(&path, run.table.to_json()) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", path.display());
        }
    }

    if failed_asserts > 0 {
        eprintln!(
            "lab: {failed_asserts} assertion(s) FAILED across {} scenario(s)",
            scenarios.len()
        );
        ExitCode::FAILURE
    } else {
        println!("lab: {} scenario(s), all assertions passed", scenarios.len());
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: lab [--quick] [--json] [--json-dir DIR] <scenario.jsonl>...");
    ExitCode::from(2)
}
