//! Regenerates the paper's evaluation as printable tables.
//!
//! ```text
//! cargo run -p dl-bench --release --bin report            # everything
//! cargo run -p dl-bench --release --bin report -- t1 e3   # a subset
//! cargo run -p dl-bench --release --bin report -- --quick # fewer iterations
//! ```

use dl_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let want = |id: &str| filter.is_empty() || filter.iter().any(|f| f.as_str() == id);

    let iters: u64 = if quick { 50 } else { 500 };
    let heavy_iters: u64 = if quick { 5 } else { 25 };

    println!("DataLinks update-in-place — experiment report");
    println!(
        "(reproducing Mittal & Hsiao, ICDE 2001; shapes matter, absolute numbers are this \
         machine's)\n"
    );

    if want("t1") {
        println!("{}", exp::t1_control_modes().render());
    }
    if want("e1") {
        println!("{}", exp::e1_select_datalink(iters * 4).render());
    }
    if want("e2") {
        println!("{}", exp::e2_open_close_overhead(iters).render());
    }
    if want("e3") {
        println!("{}", exp::e3_read_overhead_sweep(heavy_iters, false).render());
        println!("{}", exp::e3_read_overhead_sweep(heavy_iters, true).render());
    }
    if want("e4") {
        println!("{}", exp::e4_open_write_modes(iters).render());
    }
    if want("a1") {
        let (writers, updates) = if quick { (4, 5) } else { (8, 25) };
        println!("{}", exp::a1_disciplines(writers, updates).render());
    }
    if want("a2") {
        println!("{}", exp::a2_txn_boundary(&[1, 8, 64, 256]).render());
    }
    if want("a3") {
        println!("{}", exp::a3_read_path(iters).render());
    }
    if want("a4") {
        println!("{}", exp::a4_sync_table_cost(iters).render());
    }
    if want("a5") {
        println!("{}", exp::a5_archive_async(&[64, 512, 2048], heavy_iters).render());
    }
    if want("a6") {
        println!("{}", exp::a6_crash_atomicity(if quick { 3 } else { 10 }).render());
    }
    if want("a7") {
        println!("{}", exp::a7_point_in_time(5).render());
    }
    if want("a8") {
        println!("{}", exp::a8_strict_link(iters).render());
    }

    if want("appendix") || filter.is_empty() {
        println!("== appendix: read-open latency distribution by mode ==");
        println!("{:6}  {:>12}  {:>12}  {:>12}", "mode", "p50", "p99", "max");
        for mode in [dl_core::ControlMode::Rff, dl_core::ControlMode::Rfd, dl_core::ControlMode::Rdd]
        {
            let (p50, p99, max) = exp::open_latency_distribution(mode, if quick { 50 } else { 400 });
            println!(
                "{:6}  {:>12}  {:>12}  {:>12}",
                mode.to_string(),
                dl_bench::fmt_ns(p50 as f64),
                dl_bench::fmt_ns(p99 as f64),
                dl_bench::fmt_ns(max as f64),
            );
        }
    }
}
