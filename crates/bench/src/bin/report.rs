//! Regenerates the paper's evaluation as printable tables.
//!
//! ```text
//! cargo run -p dl-bench --release --bin report            # everything
//! cargo run -p dl-bench --release --bin report -- t1 e3   # a subset
//! cargo run -p dl-bench --release --bin report -- --quick # fewer iterations
//! cargo run -p dl-bench --release --bin report -- --json  # + BENCH_*.json
//! ```
//!
//! With `--json`, each table is additionally written as a
//! `BENCH_<id>.json` trajectory file under `bench-results/` (override the
//! directory with `--json-dir <dir>`); see EXPERIMENTS.md.
//!
//! The system-level experiments (the former a9–a12 runners) now live in
//! the scenario lab: `cargo run -p dl-bench --bin lab -- scenarios/*.jsonl`
//! emits the same `BENCH_a9..a12.json` trajectories, compatible with this
//! binary's `--compare` history.
//!
//! Regression mode:
//!
//! ```text
//! # run experiments, then diff the fresh BENCH_*.json against a saved dir
//! report --json-dir new --compare old [--threshold 25]
//! # pure diff of two saved directories, no experiments run
//! report --compare old --current new [--threshold 25]
//! ```
//!
//! Exits non-zero when any metric regressed beyond the threshold (percent,
//! default 25): numeric cells by relative drift, text cells by inequality,
//! disappeared rows always.
//!
//! Cross-table gate mode (no experiments run): compare one numeric cell
//! across two *different* trajectories — e.g. a14's wire churn throughput
//! against a12's in-process churn throughput — and fail if the ratio
//! candidate/baseline falls below a floor:
//!
//! ```text
//! report --gate 'bench-results/BENCH_a12.json::agent churn, shared executor' \
//!               'bench-results/BENCH_a14.json::wire churn' \
//!               --column ops/s --min-ratio 0.05
//! ```

use dl_bench::experiments as exp;
use dl_bench::trajectory;

/// Loads every BENCH_*.json in `dir`, keyed by file stem.
fn load_dir(dir: &str) -> Vec<(String, trajectory::Trajectory)> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("compare: cannot read {dir}: {e}");
            std::process::exit(2);
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).expect("read trajectory");
        match trajectory::parse(&text) {
            Ok(t) => out.push((name, t)),
            Err(e) => {
                eprintln!("compare: skipping {name}: {e}");
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Diffs every trajectory in `current_dir` against its namesake in
/// `baseline_dir`; returns the total regression count.
fn compare_dirs(baseline_dir: &str, current_dir: &str, threshold: f64) -> usize {
    let baseline = load_dir(baseline_dir);
    let current = load_dir(current_dir);
    let mut regressions = 0usize;
    for (name, cur) in &current {
        match baseline.iter().find(|(n, _)| n == name) {
            Some((_, base)) => {
                let report = trajectory::compare(base, cur, threshold);
                print!("{}", trajectory::render(&cur.id, &report, threshold));
                regressions += report.regressions();
            }
            None => println!("== compare {}: no baseline {name} in {baseline_dir} ==", cur.id),
        }
    }
    for (name, base) in &baseline {
        if !current.iter().any(|(n, _)| n == name) {
            println!("== compare {}: {name} missing from current run ==  <-- REGRESSION", base.id);
            regressions += 1;
        }
    }
    println!(
        "\ncompare: {} trajectories, {regressions} regression(s) at threshold {threshold}%",
        current.len()
    );
    regressions
}

/// Loads one side of a `--gate` comparison: `<path>::<row label>`.
fn load_gate_cell(spec: &str, column: &str) -> Result<f64, String> {
    let (path, row) = spec
        .split_once("::")
        .ok_or_else(|| format!("--gate arguments look like <file.json>::<row label>: {spec:?}"))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("gate: cannot read {path}: {e}"))?;
    let t = trajectory::parse(&text).map_err(|e| format!("gate: {path}: {e}"))?;
    trajectory::read_cell(&t, row, column)
}

/// Cross-table single-cell gate; returns the process exit code.
fn run_gate(baseline_spec: &str, candidate_spec: &str, column: &str, min_ratio: f64) -> i32 {
    let cells = load_gate_cell(baseline_spec, column)
        .and_then(|b| load_gate_cell(candidate_spec, column).map(|c| (b, c)));
    let (base, cand) = match cells {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if base <= 0.0 {
        eprintln!("gate: baseline cell {baseline_spec:?} / {column:?} is {base}, cannot ratio");
        return 2;
    }
    let ratio = cand / base;
    let verdict = if ratio >= min_ratio { "PASS" } else { "FAIL" };
    println!(
        "gate [{column}]: candidate {cand:.1} vs baseline {base:.1} -> ratio {ratio:.3} \
         (floor {min_ratio}) {verdict}"
    );
    if ratio >= min_ratio {
        0
    } else {
        1
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut compare_dir: Option<String> = None;
    let mut current_dir: Option<String> = None;
    let mut gate: Option<(String, String)> = None;
    let mut gate_column = "ops/s".to_string();
    let mut min_ratio: f64 = 0.05;
    let mut threshold: f64 = 25.0;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.iter();
    let dir_value = |flag: &str, v: Option<&String>| -> String {
        v.filter(|d| !d.starts_with("--"))
            .unwrap_or_else(|| panic!("{flag} needs a directory argument"))
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_dir = json_dir.or_else(|| Some("bench-results".to_string())),
            "--json-dir" => json_dir = Some(dir_value("--json-dir", it.next())),
            "--compare" => compare_dir = Some(dir_value("--compare", it.next())),
            "--current" => current_dir = Some(dir_value("--current", it.next())),
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .expect("--threshold needs a percent value");
            }
            "--gate" => {
                let base = it.next().expect("--gate needs <file.json>::<row> twice").clone();
                let cand = it.next().expect("--gate needs a second <file.json>::<row>").clone();
                gate = Some((base, cand));
            }
            "--column" => {
                gate_column = it.next().expect("--column needs a header name").clone();
            }
            "--min-ratio" => {
                min_ratio = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .expect("--min-ratio needs a number");
            }
            _ => {
                if let Some(dir) = a.strip_prefix("--json-dir=") {
                    json_dir = Some(dir.to_string());
                } else if let Some(dir) = a.strip_prefix("--compare=") {
                    compare_dir = Some(dir.to_string());
                } else if let Some(dir) = a.strip_prefix("--current=") {
                    current_dir = Some(dir.to_string());
                } else if let Some(pct) = a.strip_prefix("--threshold=") {
                    threshold = pct.parse::<f64>().expect("--threshold needs a percent value");
                } else {
                    args.push(a.to_lowercase());
                }
            }
        }
    }

    // Cross-table gate mode: one cell from each of two files, no
    // experiments run.
    if let Some((base, cand)) = &gate {
        std::process::exit(run_gate(base, cand, &gate_column, min_ratio));
    }

    // Pure diff mode: two saved directories, no experiments run.
    if let (Some(baseline), Some(current)) = (&compare_dir, &current_dir) {
        let regressions = compare_dirs(baseline, current, threshold);
        std::process::exit(if regressions > 0 { 1 } else { 0 });
    }
    if compare_dir.is_some() && json_dir.is_none() {
        // Comparing a fresh run requires writing it somewhere first.
        json_dir = Some("bench-results".to_string());
    }

    let quick = args.iter().any(|a| a == "--quick");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let want = |id: &str| filter.is_empty() || filter.iter().any(|f| f.as_str() == id);

    let iters: u64 = if quick { 50 } else { 500 };
    let heavy_iters: u64 = if quick { 5 } else { 25 };

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }
    // Print the table; with --json also drop BENCH_<id>.json. A multi-table
    // experiment (e3) lands as BENCH_<id>.json and BENCH_<id>_2.json etc.
    let mut emitted: Vec<String> = Vec::new();
    let mut emit = |table: exp::Table| {
        println!("{}", table.render());
        if let Some(dir) = &json_dir {
            let dups = emitted.iter().filter(|id| id.as_str() == table.id).count();
            let name = if dups == 0 {
                format!("{dir}/BENCH_{}.json", table.id)
            } else {
                format!("{dir}/BENCH_{}_{}.json", table.id, dups + 1)
            };
            std::fs::write(&name, table.to_json()).expect("write BENCH json");
            emitted.push(table.id.to_string());
        }
    };

    println!("DataLinks update-in-place — experiment report");
    println!(
        "(reproducing Mittal & Hsiao, ICDE 2001; shapes matter, absolute numbers are this \
         machine's)\n"
    );

    if want("t1") {
        emit(exp::t1_control_modes());
    }
    if want("e1") {
        emit(exp::e1_select_datalink(iters * 4));
    }
    if want("e2") {
        emit(exp::e2_open_close_overhead(iters));
    }
    if want("e3") {
        emit(exp::e3_read_overhead_sweep(heavy_iters, false));
        emit(exp::e3_read_overhead_sweep(heavy_iters, true));
    }
    if want("e4") {
        emit(exp::e4_open_write_modes(iters));
    }
    if want("a1") {
        let (writers, updates) = if quick { (4, 5) } else { (8, 25) };
        emit(exp::a1_disciplines(writers, updates));
    }
    if want("a2") {
        emit(exp::a2_txn_boundary(&[1, 8, 64, 256]));
    }
    if want("a3") {
        emit(exp::a3_read_path(iters));
    }
    if want("a4") {
        emit(exp::a4_sync_table_cost(iters));
    }
    if want("a5") {
        emit(exp::a5_archive_async(&[64, 512, 2048], heavy_iters));
    }
    if want("a6") {
        emit(exp::a6_crash_atomicity(if quick { 3 } else { 10 }));
    }
    if want("a7") {
        emit(exp::a7_point_in_time(5));
    }
    if want("a8") {
        emit(exp::a8_strict_link(iters));
    }
    if want("appendix") || filter.is_empty() {
        let mut rows = Vec::new();
        for mode in
            [dl_core::ControlMode::Rff, dl_core::ControlMode::Rfd, dl_core::ControlMode::Rdd]
        {
            let (p50, p99, max) =
                exp::open_latency_distribution(mode, if quick { 50 } else { 400 });
            rows.push(vec![
                mode.to_string(),
                dl_bench::fmt_ns(p50 as f64),
                dl_bench::fmt_ns(p99 as f64),
                dl_bench::fmt_ns(max as f64),
            ]);
        }
        emit(exp::Table {
            id: "appendix".into(),
            title: "read-open latency distribution by mode".to_string(),
            header: vec!["mode".into(), "p50".into(), "p99".into(), "max".into()],
            rows,
            notes: Vec::new(),
        });
    }

    // Fresh-run compare: diff what we just wrote against the baseline dir.
    if let Some(baseline) = &compare_dir {
        let current = json_dir.as_deref().expect("compare mode implies a json dir");
        let regressions = compare_dirs(baseline, current, threshold);
        std::process::exit(if regressions > 0 { 1 } else { 0 });
    }
}
