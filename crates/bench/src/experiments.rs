//! Experiment runners — one per table/figure/claim in DESIGN.md.
//!
//! Each runner returns a printable table so `cargo run -p dl-bench --bin
//! report` regenerates the paper's evaluation (shapes, not absolute 1998
//! numbers) and EXPERIMENTS.md can quote the output verbatim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dl_baselines::{CauManager, CicoManager, MergePolicy};
use dl_core::{ControlMode, DataLinksSystem, TokenKind};
use dl_fskit::memfs::IoModel;
use dl_fskit::{Cred, FileSystem, Lfs, MemFs, OpenOptions};
use dl_minidb::{Column, ColumnType, Database, DbOptions, Schema, StorageEnv, Value, WalOptions};

use crate::{
    fixture, fmt_ns, make_content, percentile, run_threads, time_ns, time_once, Fixture,
    FixtureOptions, APP, SRV, TABLE,
};

/// A printable experiment result.
pub struct Table {
    pub id: &'static str,
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl Table {
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = format!("== {}: {} ==\n", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Machine-readable form, written as `BENCH_<id>.json` trajectory files
    /// by `report --json` (see EXPERIMENTS.md). Hand-rolled serialization:
    /// the workspace builds without serde (vendor/README.md).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(items: &[String]) -> String {
            let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", cells.join(","))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":{},\"rows\":[{}],\"notes\":{}}}",
            esc(self.id),
            esc(&self.title),
            arr(&self.header),
            rows.join(","),
            arr(&self.notes),
        )
    }
}

fn s(x: impl ToString) -> String {
    x.to_string()
}

// ===========================================================================
// T1 — Table 1 control-mode semantics matrix
// ===========================================================================

/// Reproduces Table 1 (plus the new rfd/rdd rows) as *observed behaviour*:
/// for each mode, what actually happens when an application reads, writes,
/// or removes the linked file, with and without a token.
pub fn t1_control_modes() -> Table {
    let mut rows = Vec::new();
    for mode in ControlMode::ALL {
        let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
        let fs = f.sys.fs(SRV).expect("fs");
        let path = &f.paths[0];

        let plain_read = fs
            .open(&APP, path, OpenOptions::read_only())
            .map(|fd| {
                fs.close(fd).ok();
            })
            .is_ok();
        let token_read = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tp = f.token_path(0, TokenKind::Read);
            fs.open(&APP, &tp, OpenOptions::read_only())
                .map(|fd| {
                    fs.close(fd).ok();
                })
                .is_ok()
        }))
        .unwrap_or(false);
        let plain_write = fs
            .open(&APP, path, OpenOptions::write_only())
            .map(|fd| {
                fs.close(fd).ok();
            })
            .is_ok();
        let token_write = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tp = f.token_path(0, TokenKind::Write);
            fs.open(&APP, &tp, OpenOptions::write_only())
                .map(|fd| {
                    fs.close(fd).ok();
                })
                .is_ok()
        }))
        .unwrap_or(false);
        let remove = fs.remove(&APP, path).is_ok();
        // Recreate if the nff remove actually went through.
        if remove {
            f.sys.raw_fs(SRV).expect("raw").write_file(&APP, path, b"recreated").expect("recreate");
        }

        let yn = |b: bool| if b { "allow" } else { "deny " }.to_string();
        rows.push(vec![
            mode.to_string(),
            s(mode.referential_integrity()),
            format!("{:?}", mode.read_control()),
            format!("{:?}", mode.write_control()),
            yn(plain_read),
            yn(token_read),
            yn(plain_write),
            yn(token_write),
            yn(remove),
        ]);
    }
    Table {
        id: "T1",
        title: "control-mode semantics (observed behaviour; paper Table 1 + new rfd/rdd)".into(),
        header: [
            "mode",
            "ref.int",
            "read-ctl",
            "write-ctl",
            "read",
            "read+tok",
            "write",
            "write+tok",
            "remove",
        ]
        .iter()
        .map(|h| h.to_string())
        .collect(),
        rows,
        notes: vec![
            "rdb/rdd deny plain reads and grant token reads (read control = DBMS)".into(),
            "rfd/rdd grant writes only with a write token (the paper's new modes)".into(),
            "remove of a linked file is denied for all r?? modes (referential integrity)".into(),
        ],
    }
}

// ===========================================================================
// E1 — DATALINK retrieval incl. token generation (§3.2: < 3 ms in 1998)
// ===========================================================================

pub fn e1_select_datalink(iters: u64) -> Table {
    let f = fixture(FixtureOptions::default());
    let plain = time_ns(iters, || {
        f.sys.select_datalink_url(TABLE, &Value::Int(0), "body").expect("select");
    });
    let with_token = time_ns(iters, || {
        f.sys
            .select_datalink(TABLE, &Value::Int(0), "body", TokenKind::Read)
            .expect("select+token");
    });
    Table {
        id: "E1",
        title: "DATALINK column retrieval at the host DB (paper §3.2: <3 ms incl. token)".into(),
        header: vec![s("operation"), s("ns/op"), s("time")],
        rows: vec![
            vec![s("SELECT datalink (no token)"), s(format!("{plain:.0}")), fmt_ns(plain)],
            vec![
                s("SELECT datalink + token generation"),
                s(format!("{with_token:.0}")),
                fmt_ns(with_token),
            ],
            vec![
                s("token generation overhead"),
                s(format!("{:.0}", with_token - plain)),
                fmt_ns(with_token - plain),
            ],
        ],
        notes: vec![
            "paper: <3ms on a 200MHz PowerPC 604; the claim is 'small constant overhead'".into()
        ],
    }
}

// ===========================================================================
// E2 — DLFS + token validation overhead on open/read/close (§3.2: ~1 ms)
// ===========================================================================

pub fn e2_open_close_overhead(iters: u64) -> Table {
    let f = fixture(FixtureOptions { file_size: 1024, ..Default::default() });
    // Control file: same stack (LFS over DLFS), not linked.
    f.sys
        .raw_fs(SRV)
        .expect("raw")
        .write_file(&APP, "/data/control.bin", &make_content(1024))
        .expect("control");

    let plain = time_ns(iters, || {
        f.plain_read("/data/control.bin");
    });
    // Token validated once per open (embedded in every open's lookup).
    let managed = time_ns(iters, || {
        f.managed_read(0);
    });
    Table {
        id: "E2",
        title: "open+read+close of a 1 KiB file: DLFS+token vs plain (paper §3.2: ~1 ms added)".into(),
        header: vec![s("path"), s("ns/cycle"), s("time"), s("overhead")],
        rows: vec![
            vec![s("plain file through DLFS"), s(format!("{plain:.0}")), fmt_ns(plain), s("--")],
            vec![
                s("rdd-linked file (token + upcalls)"),
                s(format!("{managed:.0}")),
                fmt_ns(managed),
                s(format!("+{}", fmt_ns(managed - plain))),
            ],
        ],
        notes: vec![
            "managed cycle = token validation upcall + open-check upcall + close upcall + sync entries".into(),
        ],
    }
}

// ===========================================================================
// E3 — read overhead sweep by file size (§3.2: <1% CPU+I/O, ~3% CPU at 1MB)
// ===========================================================================

pub fn e3_read_overhead_sweep(iters: u64, with_io: bool) -> Table {
    let sizes = [64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024, 16 * 1024 * 1024];
    let io = if with_io { IoModel::disk_like() } else { IoModel::default() };
    let mut rows = Vec::new();
    for size in sizes {
        let f = fixture(FixtureOptions { file_size: size, n_files: 1, io, ..Default::default() });
        f.sys
            .raw_fs(SRV)
            .expect("raw")
            .write_file(&APP, "/data/control.bin", &make_content(size))
            .expect("control");
        let plain = time_ns(iters, || {
            f.plain_read("/data/control.bin");
        });
        let managed = time_ns(iters, || {
            f.managed_read(0);
        });
        let overhead_pct = (managed - plain) / plain * 100.0;
        rows.push(vec![
            s(format!("{} KiB", size / 1024)),
            fmt_ns(plain),
            fmt_ns(managed),
            s(format!("{overhead_pct:.2}%")),
        ]);
    }
    Table {
        id: "E3",
        title: format!(
            "full-file read overhead vs size ({}) — paper §3.2: <1% CPU+I/O, ~3% CPU-only at 1MB",
            if with_io { "CPU+I/O: disk-like model" } else { "CPU only" }
        ),
        header: vec![s("file size"), s("plain read"), s("DataLinks read"), s("overhead")],
        rows,
        notes: vec![
            "shape to verify: fixed per-open cost amortizes — overhead % falls as size grows"
                .into(),
        ],
    }
}

// ===========================================================================
// E4 — open-for-write response time by mode (§5: 'only minor difference')
// ===========================================================================

pub fn e4_open_write_modes(iters: u64) -> Table {
    let mut rows = Vec::new();

    // Plain (unlinked) baseline.
    let f = fixture(FixtureOptions { n_files: 1, ..Default::default() });
    let raw = f.sys.raw_fs(SRV).expect("raw");
    raw.write_file(&APP, "/data/unmanaged.bin", b"x").expect("seed");
    let fs = f.sys.fs(SRV).expect("fs");
    let plain = time_ns(iters, || {
        let fd = fs.open(&APP, "/data/unmanaged.bin", OpenOptions::write_only()).expect("open");
        fs.close(fd).expect("close");
    });
    rows.push(vec![s("plain file"), s(format!("{plain:.0}")), fmt_ns(plain), s("--")]);

    for mode in [ControlMode::Rfd, ControlMode::Rdd] {
        let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
        let fs = f.sys.fs(SRV).expect("fs");
        // Open-for-write + close (unmodified, so no archive/commit path) —
        // measures exactly the grant/release and update-status maintenance.
        let path = f.token_path(0, TokenKind::Write);
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, &path, OpenOptions::write_only()).expect("open");
            fs.close(fd).expect("close");
        });
        rows.push(vec![
            s(format!("{mode}-linked")),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("+{}", fmt_ns(ns - plain))),
        ]);
    }
    Table {
        id: "E4",
        title: "open-for-write + close latency by control mode (paper §5: minor difference; \
                update-status maintenance 'insignificant')"
            .into(),
        header: vec![s("file"), s("ns/cycle"), s("time"), s("vs plain")],
        rows,
        notes: vec![
            "rfd pays: failed physical open + takeover upcall + UIP/sync entries + release".into(),
            "rdd pays: open-check upcall + UIP/sync entries + release".into(),
        ],
    }
}

// ===========================================================================
// A1 — UIP vs CICO vs CAU under concurrent writers (§3)
// ===========================================================================

pub fn a1_disciplines(writers: usize, updates_per_writer: usize) -> Table {
    let content = make_content(2048);

    // --- UIP: the real system, one shared file, blocking writers.
    let f = fixture(FixtureOptions { n_files: 1, sync_archive: true, ..Default::default() });
    let uip_elapsed = run_threads(writers, |_| {
        for _ in 0..updates_per_writer {
            let path = f.token_path(0, TokenKind::Write);
            let fs = f.sys.fs(SRV).expect("fs");
            let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
            fs.write(fd, &content).expect("write");
            fs.close(fd).expect("close");
        }
    });
    let uip_version = f
        .sys
        .node(SRV)
        .expect("node")
        .server
        .repository()
        .get_file(&f.paths[0])
        .expect("entry")
        .cur_version;

    // --- CICO: explicit checkout lock with retry loop.
    let db = Database::open(StorageEnv::mem()).expect("db");
    let mem = Arc::new(MemFs::new());
    let lfs = Arc::new(Lfs::new(mem as Arc<dyn FileSystem>));
    lfs.write_file(&APP, "/shared.bin", &content).expect("seed");
    lfs.setattr(&APP, "/shared.bin", &dl_fskit::SetAttr::chmod(0o666)).expect("chmod");
    let cico = CicoManager::new(db, Arc::clone(&lfs)).expect("cico");
    let retries = AtomicU64::new(0);
    let cico_elapsed = run_threads(writers, |t| {
        let cred = Cred::user(100 + t as u32);
        for _ in 0..updates_per_writer {
            let ticket = loop {
                match cico.checkout(&cred, "/shared.bin") {
                    Ok(t) => break t,
                    Err(_) => {
                        retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                }
            };
            cico.fs.write_file(&cred, "/shared.bin", &content).expect("write");
            cico.checkin(&ticket).expect("checkin");
        }
    });

    // --- CAU last-writer-wins: never blocks, loses updates.
    let db = Database::open(StorageEnv::mem()).expect("db");
    let mem = Arc::new(MemFs::new());
    let lfs = Arc::new(Lfs::new(mem as Arc<dyn FileSystem>));
    lfs.setattr(&Cred::root(), "/", &dl_fskit::SetAttr::chmod(0o777)).expect("chmod root");
    lfs.write_file(&APP, "/shared.bin", &content).expect("seed");
    lfs.setattr(&APP, "/shared.bin", &dl_fskit::SetAttr::chmod(0o666)).expect("chmod");
    let cau = CauManager::new(db, lfs).expect("cau");
    let cau_elapsed = run_threads(writers, |t| {
        let cred = Cred::user(100 + t as u32);
        for _ in 0..updates_per_writer {
            let copy = cau.copy_out(&cred, "/shared.bin").expect("copy");
            cau.fs.write_file(&cred, &copy.copy, &content).expect("edit");
            cau.check_in(&cred, &copy, MergePolicy::LastWriterWins).expect("checkin");
        }
    });
    let lost = cau.lost_updates.load(Ordering::Relaxed);

    let total = (writers * updates_per_writer) as f64;
    let thr = |d: std::time::Duration| total / d.as_secs_f64();
    Table {
        id: "A1",
        title: format!(
            "update disciplines, {writers} writers x {updates_per_writer} updates of one file (§3)"
        ),
        header: vec![s("discipline"), s("elapsed"), s("updates/s"), s("lost updates"), s("notes")],
        rows: vec![
            vec![
                s("UIP (this paper)"),
                s(format!("{:.1?}", uip_elapsed)),
                s(format!("{:.0}", thr(uip_elapsed))),
                s(0),
                s(format!("all {uip_version}-1 updates serialized at open, none lost")),
            ],
            vec![
                s("CICO"),
                s(format!("{:.1?}", cico_elapsed)),
                s(format!("{:.0}", thr(cico_elapsed))),
                s(0),
                s(format!(
                    "{} busy retries; 2 DB updates per session",
                    retries.load(Ordering::Relaxed)
                )),
            ],
            vec![
                s("CAU (last-writer-wins)"),
                s(format!("{:.1?}", cau_elapsed)),
                s(format!("{:.0}", thr(cau_elapsed))),
                s(lost),
                s("no blocking, but committed updates silently lost"),
            ],
        ],
        notes: vec![
            "expected shape: CAU fastest but unsafe; UIP and CICO serialize, with CICO paying \
             explicit lock-table writes and retry spinning"
                .into(),
        ],
    }
}

// ===========================================================================
// A2 — transaction boundary: per-write upcalls vs open/close (§3.1)
// ===========================================================================

pub fn a2_txn_boundary(writes_per_open: &[usize]) -> Table {
    let f = fixture(FixtureOptions { n_files: 1, sync_archive: true, ..Default::default() });
    let fs = f.sys.fs(SRV).expect("fs");
    let chunk = make_content(512);
    let client = f.sys.node(SRV).expect("node").dlfs.upcall_client().clone();

    let mut rows = Vec::new();
    for &n in writes_per_open {
        // Actual design: upcalls only at open/close.
        let before = client.round_trip_count();
        let path = f.token_path(0, TokenKind::Write);
        let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
        for k in 0..n {
            fs.write_at(fd, (k * chunk.len()) as u64, &chunk).expect("write");
        }
        fs.close(fd).expect("close");
        let actual = client.round_trip_count() - before;

        // Rejected design (§3.1): every fs_readwrite would also upcall —
        // cost modelled as actual + n extra round-trips of the measured
        // upcall latency.
        let upcall_ns = time_ns(200, || {
            let _ = client.mutation_check("/data/doesnotexist");
        });
        rows.push(vec![s(n), s(actual), s(actual as usize + n), fmt_ns(upcall_ns * n as f64)]);
    }
    Table {
        id: "A2",
        title: "transaction boundary ablation (§3.1): upcalls per update session".into(),
        header: vec![
            s("writes per open"),
            s("upcalls (open/close boundary)"),
            s("upcalls (per-write boundary)"),
            s("extra upcall time at per-write"),
        ],
        rows,
        notes: vec![
            "open/close boundary keeps the upcall count constant regardless of write count —\
             the paper's argument for treating open..close as the transaction"
                .into(),
        ],
    }
}

// ===========================================================================
// A3 — read path: rfd vs rdd (§4.2/§5)
// ===========================================================================

pub fn a3_read_path(iters: u64) -> Table {
    let mut rows = Vec::new();
    for mode in [ControlMode::Rfd, ControlMode::Rdd] {
        let f = fixture(FixtureOptions { mode, n_files: 1, file_size: 4096, ..Default::default() });
        let client = f.sys.node(SRV).expect("node").dlfs.upcall_client().clone();
        let fs = f.sys.fs(SRV).expect("fs");

        // rfd reads need no token; rdd reads do (prime the token entry once
        // so the steady-state cost is visible separately).
        let path = if mode == ControlMode::Rdd {
            f.token_path(0, TokenKind::Read)
        } else {
            f.paths[0].clone()
        };
        let before = client.round_trip_count();
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, &path, OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
        });
        let upcalls = client.round_trip_count() - before;
        rows.push(vec![
            mode.to_string(),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("{:.2}", upcalls as f64 / iters as f64)),
        ]);
    }
    Table {
        id: "A3",
        title: "read-open cost: rfd (FS-controlled reads) vs rdd (DBMS-controlled) — §4.2".into(),
        header: vec![s("mode"), s("ns/open+close"), s("time"), s("upcalls/open")],
        rows,
        notes: vec![
            "rfd: zero upcalls on the read path — the paper's key optimization; the price is \
             the §5 read/write anomaly (demonstrated by test \
             rfd_write_takes_slow_path_and_reads_stay_fast)"
                .into(),
            "rdd: every open pays token-entry check + sync entries (per-open upcalls >= 2)".into(),
        ],
    }
}

// ===========================================================================
// A4 — Sync-table read tracking cost (§4.5: 2 extra DB updates + 1 upcall)
// ===========================================================================

pub fn a4_sync_table_cost(iters: u64) -> Table {
    let mut rows = Vec::new();
    for track in [true, false] {
        let f = fixture(FixtureOptions {
            mode: ControlMode::Rdd,
            n_files: 1,
            track_read_sync: track,
            ..Default::default()
        });
        let fs = f.sys.fs(SRV).expect("fs");
        let path = f.token_path(0, TokenKind::Read);
        let repo_before = f.sys.node(SRV).expect("node").server.repository().update_op_count();
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, &path, OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
        });
        let repo_ops =
            f.sys.node(SRV).expect("node").server.repository().update_op_count() - repo_before;
        rows.push(vec![
            s(if track { "sync entries on (default)" } else { "sync entries off (ablation)" }),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("{:.2}", repo_ops as f64 / iters as f64)),
        ]);
    }
    Table {
        id: "A4",
        title: "Sync-table read tracking (§4.5: 'two extra database update operations and one \
                extra upcall for every request that opens file for read')"
            .into(),
        header: vec![s("configuration"), s("ns/open+close"), s("time"), s("repo updates/open")],
        rows,
        notes: vec![
            "with tracking on, each read open inserts and purges a Sync row (2 repo updates); \
             the ablation drops them at the price of the read/unlink race"
                .into(),
        ],
    }
}

// ===========================================================================
// A5 — async vs sync archiving (§4.4)
// ===========================================================================

pub fn a5_archive_async(sizes_kib: &[usize], iters: u64) -> Table {
    let mut rows = Vec::new();
    for &kib in sizes_kib {
        let mut cells = vec![s(format!("{kib} KiB"))];
        for sync in [false, true] {
            let f = fixture(FixtureOptions {
                n_files: 1,
                file_size: kib * 1024,
                sync_archive: sync,
                io: IoModel::disk_like(),
                ..Default::default()
            });
            let fs = f.sys.fs(SRV).expect("fs");
            let content = make_content(kib * 1024);
            // Measure the close() call alone: that is where §4.4's
            // asynchronous archiving pays off.
            let mut close_ns = 0u128;
            for _ in 0..iters {
                let path = f.token_path(0, TokenKind::Write);
                let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
                fs.write(fd, &content).expect("write");
                let t = std::time::Instant::now();
                fs.close(fd).expect("close");
                close_ns += t.elapsed().as_nanos();
                f.sys.node(SRV).expect("node").server.archive_store().wait_archived(&f.paths[0]);
            }
            cells.push(fmt_ns(close_ns as f64 / iters as f64));
        }
        rows.push(cells);
    }
    Table {
        id: "A5",
        title: "archiving policy (§4.4): close() latency, async (paper) vs sync (ablation)".into(),
        header: vec![s("file size"), s("close, async archive"), s("close, sync archive")],
        rows,
        notes: vec![
            "async archiving moves the content copy off the close path; a new update to the \
             same file still blocks until the archive completes (the §4.4 blocking rule)"
                .into(),
        ],
    }
}

// ===========================================================================
// A6 — atomicity under crash injection (§4.2)
// ===========================================================================

pub fn a6_crash_atomicity(rounds: usize) -> Table {
    use dl_core::DataLinksSystem;
    let mut survived = 0usize;
    let mut restored = 0usize;
    for round in 0..rounds {
        let f = fixture(FixtureOptions { n_files: 1, ..Default::default() });
        let committed = make_content(1024 + round);
        f.managed_update(0, &committed);

        // Start another update, write garbage, crash before close.
        let path = f.token_path(0, TokenKind::Write);
        let fs = f.sys.fs(SRV).expect("fs");
        let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
        fs.write(fd, b"doomed").expect("write");
        let Fixture { sys, paths, .. } = f;
        let image = sys.crash();
        let (sys, _) = DataLinksSystem::recover(image).expect("recover");

        let data = sys.raw_fs(SRV).expect("raw").read_file(&Cred::root(), &paths[0]).expect("read");
        if data == committed {
            restored += 1;
        }
        survived += 1;
    }
    Table {
        id: "A6",
        title: "atomicity: crash mid-update always restores the last committed version (§4.2)"
            .into(),
        header: vec![s("crash rounds"), s("recovered"), s("content == last committed")],
        rows: vec![vec![s(rounds), s(survived), s(restored)]],
        notes: vec!["property-based variants live in tests/crash_recovery.rs".into()],
    }
}

// ===========================================================================
// A7 — coordinated point-in-time restore (§4.4)
// ===========================================================================

pub fn a7_point_in_time(versions: usize) -> Table {
    let f = fixture(FixtureOptions { n_files: 1, ..Default::default() });
    let mut states = vec![f.sys.state_id()];
    let mut contents =
        vec![f.sys.raw_fs(SRV).unwrap().read_file(&Cred::root(), &f.paths[0]).unwrap()];
    for v in 2..=versions {
        let content = make_content(512 + v);
        f.managed_update(0, &content);
        states.push(f.sys.state_id());
        contents.push(content);
    }
    let backup = f.sys.backup().expect("backup");

    let mut rows = Vec::new();
    let mut sys = f.sys;
    let paths = f.paths;
    for (i, state) in states.iter().enumerate().rev() {
        let (restored, report) = sys.restore(&backup, *state).expect("restore");
        let data =
            restored.raw_fs(SRV).expect("raw").read_file(&Cred::root(), &paths[0]).expect("read");
        let matches = data == contents[i];
        rows.push(vec![
            s(format!("v{}", i + 1)),
            s(*state),
            s(report.files_rolled_back),
            s(matches),
        ]);
        sys = restored;
    }
    Table {
        id: "A7",
        title: "coordinated point-in-time restore: file content matches restored metadata (§4.4)"
            .into(),
        header: vec![
            s("target version"),
            s("state id (LSN)"),
            s("files rolled back"),
            s("content matches"),
        ],
        rows,
        notes: vec![
            "restore walks backwards v5→v1; every step must land on that version's bytes".into()
        ],
    }
}

// ===========================================================================
// A8 — strict-link extension cost (§4.5 future work, implemented)
// ===========================================================================

pub fn a8_strict_link(iters: u64) -> Table {
    let mut rows = Vec::new();
    for strict in [false, true] {
        let f = fixture(FixtureOptions { strict, n_files: 1, ..Default::default() });
        f.sys
            .raw_fs(SRV)
            .expect("raw")
            .write_file(&APP, "/data/unlinked.bin", b"plain")
            .expect("seed");
        let fs = f.sys.fs(SRV).expect("fs");
        let client = f.sys.node(SRV).expect("node").dlfs.upcall_client().clone();
        let before = client.round_trip_count();
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, "/data/unlinked.bin", OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
        });
        let upcalls = (client.round_trip_count() - before) as f64 / iters as f64;
        rows.push(vec![
            s(if strict { "strict (window closed)" } else { "default (paper prototype)" }),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("{upcalls:.2}")),
        ]);
    }
    Table {
        id: "A8",
        title: "closing the §4.5 link window: per-open cost of registering *unlinked* opens".into(),
        header: vec![s("configuration"), s("ns/open+close"), s("time"), s("upcalls/open")],
        rows,
        notes: vec![
            "the paper rejects this ('undesirable for performance reasons') and leaves it as \
             future work; the measured cost quantifies why"
                .into(),
        ],
    }
}

// ===========================================================================
// a9 — group-commit throughput (this repo's commit pipeline, not the paper)
// ===========================================================================

/// Committed txns/sec of the bare database: `threads` committers each run
/// `commits` single-row insert transactions against a WAL device with the
/// given deterministic sync latency.
fn bare_db_commit_rate(
    threads: usize,
    commits: usize,
    sync_latency_ns: u64,
    wal: WalOptions,
) -> f64 {
    let env = StorageEnv::mem_with_sync_latency(sync_latency_ns);
    let db = Database::open_with(env, DbOptions { wal, ..Default::default() }).expect("db");
    db.create_table(
        Schema::new(
            "t",
            vec![Column::new("id", ColumnType::Int), Column::new("v", ColumnType::Int)],
            "id",
        )
        .expect("schema"),
    )
    .expect("create table");
    let elapsed = run_threads(threads, |t| {
        for k in 0..commits {
            let mut tx = db.begin();
            tx.insert("t", vec![Value::Int((t * commits + k) as i64), Value::Int(1)])
                .expect("insert");
            tx.commit().expect("commit");
        }
    });
    assert_eq!(db.count("t").expect("count"), threads * commits);
    (threads * commits) as f64 / elapsed.as_secs_f64()
}

/// Committed open/write/close cycles/sec through the full DataLinks stack:
/// each thread updates its own linked file; every cycle drives several
/// repository transactions plus the 2PC host commit, all over WAL devices
/// with the given sync latency.
fn stack_commit_rate(threads: usize, cycles: usize, sync_latency_ns: u64, wal: WalOptions) -> f64 {
    let f = fixture(FixtureOptions {
        n_files: threads,
        file_size: 1024,
        sync_archive: true,
        db: DbOptions { wal, ..Default::default() },
        db_sync_latency_ns: sync_latency_ns,
        ..Default::default()
    });
    let content = make_content(1024);
    let elapsed = run_threads(threads, |t| {
        for _ in 0..cycles {
            f.managed_update_no_wait(t, &content);
        }
    });
    (threads * cycles) as f64 / elapsed.as_secs_f64()
}

/// The commit-throughput experiment for the group-commit WAL pipeline:
/// committer threads × {per-commit sync, group commit}, over the bare
/// database and over the full open=begin/close=commit stack. The sync
/// latency knob (`MemDevice::with_sync_latency_ns`) makes the win
/// deterministic: group commit collapses N concurrent syncs into ~1.
pub fn a9_commit_throughput(commits: usize, cycles: usize, sync_latency_ns: u64) -> Table {
    let per_commit = WalOptions::per_commit_sync();
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8, 16] {
        // The group arm self-tunes its gather window to the committer
        // count (`WalOptions::tuned_for`): zero delay when a batch can't
        // form, a bounded window once followers exist to collect.
        let grouped = WalOptions::tuned_for(threads);
        let bare_per = bare_db_commit_rate(threads, commits, sync_latency_ns, per_commit);
        let bare_grp = bare_db_commit_rate(threads, commits, sync_latency_ns, grouped);
        let stack_per = stack_commit_rate(threads, cycles, sync_latency_ns, per_commit);
        let stack_grp = stack_commit_rate(threads, cycles, sync_latency_ns, grouped);
        rows.push(vec![
            s(threads),
            s(format!("{bare_per:.0}")),
            s(format!("{bare_grp:.0}")),
            s(format!("{:.2}x", bare_grp / bare_per)),
            s(format!("{stack_per:.0}")),
            s(format!("{stack_grp:.0}")),
            s(format!("{:.2}x", stack_grp / stack_per)),
        ]);
    }
    Table {
        id: "a9",
        title: format!(
            "commit throughput, per-commit sync vs group commit \
             ({commits} txns/thread bare, {cycles} cycles/thread stack, \
             {} µs device sync)",
            sync_latency_ns / 1000
        ),
        header: vec![
            s("threads"),
            s("bare DB commit-sync tx/s"),
            s("bare DB group tx/s"),
            s("bare speedup"),
            s("stack commit-sync cyc/s"),
            s("stack group cyc/s"),
            s("stack speedup"),
        ],
        rows,
        notes: vec![
            "bare DB: single-row insert transactions; stack: full token/open/write/close \
             update cycles (several repository txns + the 2PC host commit each)"
                .into(),
            "expected shape: ~1x at 1 thread (identical log bytes), group commit pulling \
             ahead from 4 threads as concurrent syncs collapse into one"
                .into(),
            "group arm uses WalOptions::tuned_for(threads): commit_delay_us 0 at <=2 \
             committers, then ~20 µs/committer capped at 200 µs"
                .into(),
        ],
    }
}

// ===========================================================================
// a10 — WAL-shipping replication: replica reads, lag, failover (this repo)
// ===========================================================================

/// The replication experiment: read-token validation + replica-read
/// throughput vs replica count, replication-lag drain after a write burst,
/// and failover time with a link-state preservation check. Doubles as the
/// CI smoke: the lag *must* drain to zero and failover *must* preserve the
/// repository's link state — both are asserted, not just reported.
pub fn a10_replication(readers: usize, reads_per: usize, sync_latency_ns: u64) -> Table {
    const N_FILES: usize = 4;
    let content = make_content(2048);
    let mut rows = Vec::new();
    let mut baseline_rate = 0.0f64;
    for replicas in [0usize, 1, 2, 4] {
        let f = fixture(FixtureOptions {
            n_files: N_FILES,
            file_size: 2048,
            replicas,
            sync_archive: true,
            db_sync_latency_ns: sync_latency_ns,
            ..Default::default()
        });
        // One committed update per file so every replica archive holds the
        // current version's bytes.
        for i in 0..N_FILES {
            f.managed_update(i, &content);
        }

        // Replication lag after the write burst must drain to zero.
        let drain = time_once(|| {
            let drained = f
                .sys
                .wait_replicas_caught_up(SRV, std::time::Duration::from_secs(30))
                .expect("known server");
            assert!(drained, "replication lag must drain to zero");
        });
        assert_eq!(f.sys.replication_lag(SRV).expect("lag"), 0);

        // Routed reads: token validation + last-committed bytes, spread
        // round-robin over the standbys (all on the primary at 0 replicas).
        let elapsed = run_threads(readers, |t| {
            for k in 0..reads_per {
                let i = (t + k) % N_FILES;
                let tp = f.token_path(i, TokenKind::Read);
                let data = f.sys.serve_read(SRV, &tp, APP.uid).expect("routed read");
                assert_eq!(data, content, "replica must serve the committed bytes");
            }
        });
        let rate = (readers * reads_per) as f64 / elapsed.as_secs_f64();
        if replicas == 0 {
            baseline_rate = rate;
        }

        // Failover: promote a standby and verify the link state survived.
        let (failover_cell, preserved_cell) = if replicas == 0 {
            (s("--"), s("--"))
        } else {
            let Fixture { mut sys, paths, .. } = f;
            let snapshot = |sys: &DataLinksSystem| {
                let mut files: Vec<(String, u64)> = sys
                    .node(SRV)
                    .expect("node")
                    .server
                    .repository()
                    .list_files()
                    .into_iter()
                    .map(|e| (e.path, e.cur_version))
                    .collect();
                files.sort();
                files
            };
            let before = snapshot(&sys);
            let failover = time_once(|| {
                sys.fail_over(SRV).expect("failover");
            });
            let after = snapshot(&sys);
            assert_eq!(before, after, "failover must preserve link state");
            // The promoted node serves the same committed bytes.
            let (_, tp) = sys
                .select_datalink(TABLE, &Value::Int(0), "body", TokenKind::Read)
                .expect("select after failover");
            let data = sys.serve_read(SRV, &tp, APP.uid).expect("read after failover");
            assert_eq!(data, content, "promoted node must serve committed bytes");
            let _ = paths;
            (fmt_ns(failover.as_nanos() as f64), s(true))
        };

        rows.push(vec![
            s(replicas),
            s(format!("{rate:.0}")),
            s(format!("{:.2}x", rate / baseline_rate)),
            fmt_ns(drain.as_nanos() as f64),
            failover_cell,
            preserved_cell,
        ]);
    }
    Table {
        id: "a10",
        title: format!(
            "WAL-shipping replication: routed reads vs replica count \
             ({readers} readers x {reads_per} reads, {} µs device sync)",
            sync_latency_ns / 1000
        ),
        header: vec![
            s("replicas"),
            s("validated reads/s"),
            s("speedup vs primary-only"),
            s("lag drain"),
            s("failover"),
            s("links preserved"),
        ],
        rows,
        notes: vec![
            "each routed read = token validation (HMAC + durable token entry) + last \
             committed bytes; one serialized validation lane per node (the paper's \
             one-upcall-daemon prototype shape), so replicas multiply capacity"
                .into(),
            "lag drain: time for standbys to apply the preceding update burst; failover: \
             fence + promote + DLFM recovery on the standby's applied state"
                .into(),
        ],
    }
}

// ===========================================================================
// a11 — checkpoint shipping: WAL bounds and delta catch-up (this repo)
// ===========================================================================

/// A primary database shaped like a DLFM repository workload: `rows` hot
/// rows, updated round-robin with ~130-byte payloads.
fn a11_primary(rows: usize, budget: u64, sync_latency_ns: u64) -> Database {
    let env = if sync_latency_ns > 0 {
        StorageEnv::mem_with_sync_latency(sync_latency_ns)
    } else {
        StorageEnv::mem()
    };
    let db = Database::open_with(
        env,
        DbOptions { checkpoint_every_bytes: budget, ..Default::default() },
    )
    .expect("db");
    db.create_table(
        Schema::new(
            "t",
            vec![Column::new("id", ColumnType::Int), Column::new("v", ColumnType::Text)],
            "id",
        )
        .expect("schema"),
    )
    .expect("create table");
    let mut tx = db.begin();
    for i in 0..rows {
        tx.insert("t", vec![Value::Int(i as i64), Value::Text("seed".into())]).expect("seed");
    }
    tx.commit().expect("seed commit");
    db
}

fn a11_updates(db: &Database, rows: usize, updates: usize) {
    for u in 0..updates {
        let id = (u % rows) as i64;
        let mut tx = db.begin();
        tx.update("t", &Value::Int(id), vec![Value::Int(id), Value::Text(format!("{u:0>120}"))])
            .expect("update");
        tx.commit().expect("commit");
    }
}

/// One fresh standby + ship daemon over `db`'s feed (a10-style plumbing
/// with inert token machinery — a11 measures the storage layer).
fn a11_standby(
    db: &Database,
) -> (Arc<dl_repl::Standby>, dl_repl::Replicator, Arc<dl_repl::ReplStats>) {
    let fence = Arc::new(dl_repl::EpochFence::new());
    let stats = Arc::new(dl_repl::ReplStats::default());
    let standby = Arc::new(
        dl_repl::Standby::new(
            "a11#0".into(),
            StorageEnv::mem(),
            StorageEnv::mem(),
            fence,
            Arc::clone(&stats),
            "a11".into(),
            b"a11-key".to_vec(),
            Arc::new(dl_fskit::SimClock::new(1_000)),
            None,
        )
        .expect("standby"),
    );
    let repl = dl_repl::Replicator::spawn(
        "a11",
        db.replication_feed(),
        vec![Arc::clone(&standby)],
        0,
        Arc::clone(&stats),
    );
    (standby, repl, stats)
}

/// The checkpoint-shipping experiment: (1) under sustained update load, a
/// log-retention budget keeps both the primary's and the standby's WAL
/// bounded (asserted, not just reported — unbudgeted growth is shown for
/// contrast); (2) a fresh standby catching up to a long history is
/// measurably cheaper by *delta* (install the latest checkpoint image,
/// tail only the WAL suffix) than by full-log replay (record/byte counts
/// asserted; wall time reported).
pub fn a11_checkpoint_shipping(updates: usize, sync_latency_ns: u64) -> Table {
    const ROWS: usize = 64;
    const BUDGET: u64 = 32 * 1024;
    let mut rows_out: Vec<Vec<String>> = Vec::new();

    // --- sustained load: budget off vs on --------------------------------
    let mut unbounded_retained = 0u64;
    for budget in [0u64, BUDGET] {
        let db = a11_primary(ROWS, budget, sync_latency_ns);
        let (standby, repl, stats) = a11_standby(&db);
        a11_updates(&db, ROWS, updates);
        assert!(repl.wait_caught_up(std::time::Duration::from_secs(30)), "lag must drain");
        let primary_wal = db.wal_retained_bytes();
        let standby_wal = standby.wal_retained_bytes();
        if budget == 0 {
            unbounded_retained = primary_wal;
        } else {
            // The a11 claim: the budget bounds BOTH logs under sustained
            // load (trigger slack: one commit past the budget, plus the
            // Checkpoint record itself).
            let bound = budget + 8 * 1024;
            assert!(primary_wal <= bound, "primary WAL {primary_wal} exceeds bound {bound}");
            assert!(standby_wal <= bound, "standby WAL {standby_wal} exceeds bound {bound}");
            assert!(
                primary_wal < unbounded_retained,
                "budgeted log must retain less than the unbudgeted one"
            );
        }
        rows_out.push(vec![
            s(format!(
                "sustained load, {}",
                if budget == 0 { "no budget".to_string() } else { format!("{BUDGET} B budget") }
            )),
            s(primary_wal),
            s(standby_wal),
            s(stats.checkpoints_shipped()),
            s(stats.records_shipped()),
            s("--"),
        ]);
    }

    // --- fresh-standby catch-up: full replay vs delta ---------------------
    let mut full_records = 0u64;
    for delta in [false, true] {
        let db = a11_primary(ROWS, 0, sync_latency_ns);
        a11_updates(&db, ROWS, updates);
        if delta {
            db.checkpoint_and_truncate().expect("checkpoint");
        }
        let (standby, repl, stats) = a11_standby(&db);
        let catch_up = time_once(|| {
            assert!(repl.wait_caught_up(std::time::Duration::from_secs(30)), "catch-up");
        });
        assert_eq!(standby.applied_lsn(), db.durable_lsn());
        if delta {
            assert_eq!(stats.checkpoints_shipped(), 1, "delta arm installs the image once");
            // The headline claim: delta catch-up ships a small constant
            // suffix instead of the whole history.
            assert!(
                stats.records_shipped() < full_records / 4,
                "delta shipped {} records, full shipped {full_records} — not measurably cheaper",
                stats.records_shipped()
            );
        } else {
            full_records = stats.records_shipped();
        }
        rows_out.push(vec![
            s(if delta {
                "fresh standby, delta (image + suffix)"
            } else {
                "fresh standby, full-log replay"
            }),
            s(db.wal_retained_bytes()),
            s(standby.wal_retained_bytes()),
            s(stats.checkpoints_shipped()),
            s(stats.records_shipped()),
            fmt_ns(catch_up.as_nanos() as f64),
        ]);
    }

    Table {
        id: "a11",
        title: format!(
            "checkpoint shipping: WAL bounds and delta catch-up \
             ({updates} updates over {ROWS} rows, {} µs device sync, {BUDGET} B budget)",
            sync_latency_ns / 1000
        ),
        header: vec![
            s("arm"),
            s("primary WAL bytes"),
            s("standby WAL bytes"),
            s("ckpt installs"),
            s("records shipped"),
            s("catch-up"),
        ],
        rows: rows_out,
        notes: vec![
            "asserted, not just reported: with a budget both WALs stay under \
             budget+slack; the delta arm installs exactly one image and ships <25% of the \
             full arm's records"
                .into(),
            "the budget arm truncates in lockstep: the primary cuts at its checkpoint, the \
             standby cuts when the shipped Checkpoint record flows through apply"
                .into(),
        ],
    }
}

// ===========================================================================
// a12 — elastic front end: adaptive upcall pool + shared agent executor
// ===========================================================================

/// One timed burst of token-read cycles against `f`, `clients` threads x
/// `cycles` each, all funnelling through the node's upcall pool (token
/// validation + claimed read open + close, two repository commits per
/// cycle). Returns cycles/sec.
fn a12_upcall_burst(f: &Fixture, clients: usize, cycles: usize) -> f64 {
    // One token-embedded path per client, generated outside the timed
    // region: the burst measures the upcall admission path, not SELECT.
    let paths: Vec<String> =
        (0..clients).map(|t| f.token_path(t % f.paths.len(), TokenKind::Read)).collect();
    let fs = f.sys.fs(SRV).expect("fs");
    let elapsed = run_threads(clients, |t| {
        for _ in 0..cycles {
            let fd = fs.open(&APP, &paths[t], OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
        }
    });
    (clients * cycles) as f64 / elapsed.as_secs_f64()
}

/// Waits out the pool's idle window and reports the settled worker count.
fn a12_settled_workers(f: &Fixture) -> usize {
    let node = f.sys.node(SRV).expect("node");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let workers = node.upcall_pool_stats().workers();
        if workers <= 2 || std::time::Instant::now() >= deadline {
            return workers;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// The front-end experiment: (1) a bursty token-read load at low and high
/// client counts, fixed-8 pool (the PR 2 shape) vs the adaptive pool —
/// asserting the adaptive pool at least matches the fixed pool at high
/// concurrency and that it grows past 8 workers then sheds back to the
/// floor; (2) agent churn — `agents` connections each driving a full
/// link/2PC/unlink cycle — thread-per-agent vs the shared executor,
/// asserting the shared executor serves them all on far fewer OS threads.
pub fn a12_front_end(
    low_clients: usize,
    high_clients: usize,
    cycles: usize,
    agents: usize,
    sync_latency_ns: u64,
) -> Table {
    let mut rows = Vec::new();

    // --- bursty upcall load: fixed-8 vs adaptive --------------------------
    let mut fixed_rate = [0.0f64; 2];
    for (arm, pool) in [("fixed-8 pool", Some((8, 8))), ("adaptive pool", Some((2, 64)))] {
        for (i, &clients) in [low_clients, high_clients].iter().enumerate() {
            let f = fixture(FixtureOptions {
                n_files: clients,
                file_size: 1024,
                db_sync_latency_ns: sync_latency_ns,
                upcall_pool: pool,
                // A gather window on the repository's group commit: each
                // commit parks its upcall worker for the window, so served
                // concurrency — the pool's head count — is the deterministic
                // bottleneck (the point of this experiment), not the raw
                // CPU of the machine running it.
                db: DbOptions {
                    wal: WalOptions { group_commit: true, max_batch: 64, commit_delay_us: 200 },
                    ..Default::default()
                },
                ..Default::default()
            });
            let rate = a12_upcall_burst(&f, clients, cycles);
            let node = f.sys.node(SRV).expect("node");
            let peak = node.upcall_pool_stats().peak_workers();
            let adaptive = pool == Some((2, 64));
            let (vs_fixed, settled) = if adaptive {
                let settled = a12_settled_workers(&f);
                if clients == high_clients {
                    // The a12 claims, asserted: under high concurrency the
                    // adaptive pool must grow past the fixed-8 head count,
                    // match-or-beat its throughput, and shed back afterwards.
                    assert!(
                        peak > 8,
                        "adaptive pool peaked at {peak} workers; expected growth past 8"
                    );
                    assert!(
                        rate >= fixed_rate[i],
                        "adaptive pool ({rate:.0}/s) slower than fixed-8 ({:.0}/s) at \
                         {clients} clients",
                        fixed_rate[i]
                    );
                    assert!(
                        settled <= 2,
                        "adaptive pool still at {settled} workers after the burst; expected \
                         shrink to the floor"
                    );
                }
                // Bare "N.NNx" so `report --compare` diffs the ratio
                // numerically instead of as must-match-exactly text.
                (format!("{:.2}x", rate / fixed_rate[i]), s(settled))
            } else {
                fixed_rate[i] = rate;
                (s("--"), s(peak))
            };
            // Row labels carry the client count: `report --compare` keys
            // rows by their first cell, so labels must be unique.
            rows.push(vec![
                s(format!("upcall burst, {arm}, {clients} clients")),
                s(clients),
                s(format!("{rate:.0}")),
                s(peak),
                settled,
                vs_fixed,
            ]);
        }
    }

    // --- agent churn: thread-per-agent vs shared executor -----------------
    for thread_per_agent in [true, false] {
        let f = fixture(FixtureOptions {
            n_files: 1,
            db_sync_latency_ns: sync_latency_ns,
            thread_per_agent,
            ..Default::default()
        });
        let raw = f.sys.raw_fs(SRV).expect("raw");
        for i in 0..agents {
            raw.write_file(&APP, &format!("/data/churn{i:04}.bin"), b"x").expect("seed");
        }
        let node = f.sys.node(SRV).expect("node");
        let handles: Vec<_> = (0..agents).map(|_| node.connect_agent()).collect();
        let drivers = 16.min(agents.max(1));
        let elapsed = run_threads(drivers, |t| {
            use dl_minidb::Participant;
            for (i, agent) in handles.iter().enumerate() {
                if i % drivers != t {
                    continue;
                }
                let path = format!("/data/churn{i:04}.bin");
                // Synthetic host txids well clear of the fixture's.
                let link_tx = 1_000_000 + 2 * i as u64;
                agent
                    .link(link_tx, &path, ControlMode::Rff, true, dl_dlfm::OnUnlink::Restore)
                    .expect("link");
                agent.prepare(link_tx).expect("prepare");
                agent.commit(link_tx);
                let unlink_tx = link_tx + 1;
                agent.unlink(unlink_tx, &path).expect("unlink");
                agent.prepare(unlink_tx).expect("prepare");
                agent.commit(unlink_tx);
            }
        });
        let rate = (agents * 2) as f64 / elapsed.as_secs_f64();
        let threads = match node.main_daemon().executor_stats() {
            Some(stats) => stats.peak_workers(),
            None => node.main_daemon().executor_threads(),
        };
        let connections = node.main_daemon().child_count();
        if !thread_per_agent {
            // The multiplexing claim, asserted: every connection served,
            // on far fewer OS threads than connections.
            assert!(
                threads < 64,
                "shared executor used {threads} threads for {connections} connections"
            );
            assert!(connections >= agents, "all churn connections must be accepted");
        }
        rows.push(vec![
            s(format!(
                "agent churn, {}",
                if thread_per_agent { "thread-per-agent" } else { "shared executor" }
            )),
            s(connections),
            s(format!("{rate:.0}")),
            s(threads),
            s("--"),
            s(if thread_per_agent {
                "one OS thread per connection"
            } else {
                "connections multiplexed over the shared executor"
            }),
        ]);
    }

    Table {
        id: "a12",
        title: format!(
            "elastic front end: adaptive upcall pool + shared agent executor \
             ({low_clients}/{high_clients} clients x {cycles} cycles, {agents} churn agents, \
             {} µs device sync)",
            sync_latency_ns / 1000
        ),
        header: vec![
            s("arm"),
            s("clients/conns"),
            s("ops/s"),
            s("peak workers"),
            s("workers after idle"),
            s("vs fixed-8 / note"),
        ],
        rows,
        notes: vec![
            "asserted, not just reported: at high concurrency the adaptive pool grows past \
             8 workers, meets or beats the fixed-8 throughput, and sheds back to its floor \
             once idle; the shared executor serves every churn connection on <64 OS threads"
                .into(),
            "upcall burst cycle = token validation + claimed read open + close-notify \
             (two repository commits) — the §2.2 admission path end to end"
                .into(),
        ],
    }
}

/// Latency distribution helper used by the report's appendix.
pub fn open_latency_distribution(mode: ControlMode, samples: usize) -> (u64, u64, u64) {
    let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
    let fs = f.sys.fs(SRV).expect("fs");
    let path = match mode.read_control() {
        dl_dlfm::AccessControl::Dbms => f.token_path(0, TokenKind::Read),
        _ => f.paths[0].clone(),
    };
    let mut lat: Vec<u64> = (0..samples)
        .map(|_| {
            let t = std::time::Instant::now();
            let fd = fs.open(&APP, &path, OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
            t.elapsed().as_nanos() as u64
        })
        .collect();
    (percentile(&mut lat, 0.50), percentile(&mut lat, 0.99), percentile(&mut lat, 1.0))
}
