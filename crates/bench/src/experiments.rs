//! Experiment runners — one per table/figure/claim in DESIGN.md.
//!
//! Each runner returns a printable table so `cargo run -p dl-bench --bin
//! report` regenerates the paper's evaluation (shapes, not absolute 1998
//! numbers) and EXPERIMENTS.md can quote the output verbatim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dl_baselines::{CauManager, CicoManager, MergePolicy};
use dl_core::{ControlMode, TokenKind};
use dl_fskit::memfs::IoModel;
use dl_fskit::{Cred, FileSystem, Lfs, MemFs, OpenOptions};
use dl_minidb::{Database, StorageEnv, Value};

use crate::{
    fixture, fmt_ns, make_content, percentile, run_threads, time_ns, Fixture, FixtureOptions, APP,
    SRV, TABLE,
};

/// A printable experiment result.
pub struct Table {
    pub id: String,
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl Table {
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = format!("== {}: {} ==\n", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Machine-readable form, written as `BENCH_<id>.json` trajectory files
    /// by `report --json` (see EXPERIMENTS.md). Hand-rolled serialization:
    /// the workspace builds without serde (vendor/README.md).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(items: &[String]) -> String {
            let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", cells.join(","))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":{},\"rows\":[{}],\"notes\":{}}}",
            esc(&self.id),
            esc(&self.title),
            arr(&self.header),
            rows.join(","),
            arr(&self.notes),
        )
    }
}

fn s(x: impl ToString) -> String {
    x.to_string()
}

// ===========================================================================
// T1 — Table 1 control-mode semantics matrix
// ===========================================================================

/// Reproduces Table 1 (plus the new rfd/rdd rows) as *observed behaviour*:
/// for each mode, what actually happens when an application reads, writes,
/// or removes the linked file, with and without a token.
pub fn t1_control_modes() -> Table {
    let mut rows = Vec::new();
    for mode in ControlMode::ALL {
        let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
        let fs = f.sys.fs(SRV).expect("fs");
        let path = &f.paths[0];

        let plain_read = fs
            .open(&APP, path, OpenOptions::read_only())
            .map(|fd| {
                fs.close(fd).ok();
            })
            .is_ok();
        let token_read = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tp = f.token_path(0, TokenKind::Read);
            fs.open(&APP, &tp, OpenOptions::read_only())
                .map(|fd| {
                    fs.close(fd).ok();
                })
                .is_ok()
        }))
        .unwrap_or(false);
        let plain_write = fs
            .open(&APP, path, OpenOptions::write_only())
            .map(|fd| {
                fs.close(fd).ok();
            })
            .is_ok();
        let token_write = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tp = f.token_path(0, TokenKind::Write);
            fs.open(&APP, &tp, OpenOptions::write_only())
                .map(|fd| {
                    fs.close(fd).ok();
                })
                .is_ok()
        }))
        .unwrap_or(false);
        let remove = fs.remove(&APP, path).is_ok();
        // Recreate if the nff remove actually went through.
        if remove {
            f.sys.raw_fs(SRV).expect("raw").write_file(&APP, path, b"recreated").expect("recreate");
        }

        let yn = |b: bool| if b { "allow" } else { "deny " }.to_string();
        rows.push(vec![
            mode.to_string(),
            s(mode.referential_integrity()),
            format!("{:?}", mode.read_control()),
            format!("{:?}", mode.write_control()),
            yn(plain_read),
            yn(token_read),
            yn(plain_write),
            yn(token_write),
            yn(remove),
        ]);
    }
    Table {
        id: "T1".into(),
        title: "control-mode semantics (observed behaviour; paper Table 1 + new rfd/rdd)".into(),
        header: [
            "mode",
            "ref.int",
            "read-ctl",
            "write-ctl",
            "read",
            "read+tok",
            "write",
            "write+tok",
            "remove",
        ]
        .iter()
        .map(|h| h.to_string())
        .collect(),
        rows,
        notes: vec![
            "rdb/rdd deny plain reads and grant token reads (read control = DBMS)".into(),
            "rfd/rdd grant writes only with a write token (the paper's new modes)".into(),
            "remove of a linked file is denied for all r?? modes (referential integrity)".into(),
        ],
    }
}

// ===========================================================================
// E1 — DATALINK retrieval incl. token generation (§3.2: < 3 ms in 1998)
// ===========================================================================

pub fn e1_select_datalink(iters: u64) -> Table {
    let f = fixture(FixtureOptions::default());
    let plain = time_ns(iters, || {
        f.sys.select_datalink_url(TABLE, &Value::Int(0), "body").expect("select");
    });
    let with_token = time_ns(iters, || {
        f.sys
            .select_datalink(TABLE, &Value::Int(0), "body", TokenKind::Read)
            .expect("select+token");
    });
    Table {
        id: "E1".into(),
        title: "DATALINK column retrieval at the host DB (paper §3.2: <3 ms incl. token)".into(),
        header: vec![s("operation"), s("ns/op"), s("time")],
        rows: vec![
            vec![s("SELECT datalink (no token)"), s(format!("{plain:.0}")), fmt_ns(plain)],
            vec![
                s("SELECT datalink + token generation"),
                s(format!("{with_token:.0}")),
                fmt_ns(with_token),
            ],
            vec![
                s("token generation overhead"),
                s(format!("{:.0}", with_token - plain)),
                fmt_ns(with_token - plain),
            ],
        ],
        notes: vec![
            "paper: <3ms on a 200MHz PowerPC 604; the claim is 'small constant overhead'".into()
        ],
    }
}

// ===========================================================================
// E2 — DLFS + token validation overhead on open/read/close (§3.2: ~1 ms)
// ===========================================================================

pub fn e2_open_close_overhead(iters: u64) -> Table {
    let f = fixture(FixtureOptions { file_size: 1024, ..Default::default() });
    // Control file: same stack (LFS over DLFS), not linked.
    f.sys
        .raw_fs(SRV)
        .expect("raw")
        .write_file(&APP, "/data/control.bin", &make_content(1024))
        .expect("control");

    let plain = time_ns(iters, || {
        f.plain_read("/data/control.bin");
    });
    // Token validated once per open (embedded in every open's lookup).
    let managed = time_ns(iters, || {
        f.managed_read(0);
    });
    Table {
        id: "E2".into(),
        title: "open+read+close of a 1 KiB file: DLFS+token vs plain (paper §3.2: ~1 ms added)".into(),
        header: vec![s("path"), s("ns/cycle"), s("time"), s("overhead")],
        rows: vec![
            vec![s("plain file through DLFS"), s(format!("{plain:.0}")), fmt_ns(plain), s("--")],
            vec![
                s("rdd-linked file (token + upcalls)"),
                s(format!("{managed:.0}")),
                fmt_ns(managed),
                s(format!("+{}", fmt_ns(managed - plain))),
            ],
        ],
        notes: vec![
            "managed cycle = token validation upcall + open-check upcall + close upcall + sync entries".into(),
        ],
    }
}

// ===========================================================================
// E3 — read overhead sweep by file size (§3.2: <1% CPU+I/O, ~3% CPU at 1MB)
// ===========================================================================

pub fn e3_read_overhead_sweep(iters: u64, with_io: bool) -> Table {
    let sizes = [64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024, 16 * 1024 * 1024];
    let io = if with_io { IoModel::disk_like() } else { IoModel::default() };
    let mut rows = Vec::new();
    for size in sizes {
        let f = fixture(FixtureOptions { file_size: size, n_files: 1, io, ..Default::default() });
        f.sys
            .raw_fs(SRV)
            .expect("raw")
            .write_file(&APP, "/data/control.bin", &make_content(size))
            .expect("control");
        let plain = time_ns(iters, || {
            f.plain_read("/data/control.bin");
        });
        let managed = time_ns(iters, || {
            f.managed_read(0);
        });
        let overhead_pct = (managed - plain) / plain * 100.0;
        rows.push(vec![
            s(format!("{} KiB", size / 1024)),
            fmt_ns(plain),
            fmt_ns(managed),
            s(format!("{overhead_pct:.2}%")),
        ]);
    }
    Table {
        id: "E3".into(),
        title: format!(
            "full-file read overhead vs size ({}) — paper §3.2: <1% CPU+I/O, ~3% CPU-only at 1MB",
            if with_io { "CPU+I/O: disk-like model" } else { "CPU only" }
        ),
        header: vec![s("file size"), s("plain read"), s("DataLinks read"), s("overhead")],
        rows,
        notes: vec![
            "shape to verify: fixed per-open cost amortizes — overhead % falls as size grows"
                .into(),
        ],
    }
}

// ===========================================================================
// E4 — open-for-write response time by mode (§5: 'only minor difference')
// ===========================================================================

pub fn e4_open_write_modes(iters: u64) -> Table {
    let mut rows = Vec::new();

    // Plain (unlinked) baseline.
    let f = fixture(FixtureOptions { n_files: 1, ..Default::default() });
    let raw = f.sys.raw_fs(SRV).expect("raw");
    raw.write_file(&APP, "/data/unmanaged.bin", b"x").expect("seed");
    let fs = f.sys.fs(SRV).expect("fs");
    let plain = time_ns(iters, || {
        let fd = fs.open(&APP, "/data/unmanaged.bin", OpenOptions::write_only()).expect("open");
        fs.close(fd).expect("close");
    });
    rows.push(vec![s("plain file"), s(format!("{plain:.0}")), fmt_ns(plain), s("--")]);

    for mode in [ControlMode::Rfd, ControlMode::Rdd] {
        let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
        let fs = f.sys.fs(SRV).expect("fs");
        // Open-for-write + close (unmodified, so no archive/commit path) —
        // measures exactly the grant/release and update-status maintenance.
        let path = f.token_path(0, TokenKind::Write);
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, &path, OpenOptions::write_only()).expect("open");
            fs.close(fd).expect("close");
        });
        rows.push(vec![
            s(format!("{mode}-linked")),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("+{}", fmt_ns(ns - plain))),
        ]);
    }
    Table {
        id: "E4".into(),
        title: "open-for-write + close latency by control mode (paper §5: minor difference; \
                update-status maintenance 'insignificant')"
            .into(),
        header: vec![s("file"), s("ns/cycle"), s("time"), s("vs plain")],
        rows,
        notes: vec![
            "rfd pays: failed physical open + takeover upcall + UIP/sync entries + release".into(),
            "rdd pays: open-check upcall + UIP/sync entries + release".into(),
        ],
    }
}

// ===========================================================================
// A1 — UIP vs CICO vs CAU under concurrent writers (§3)
// ===========================================================================

pub fn a1_disciplines(writers: usize, updates_per_writer: usize) -> Table {
    let content = make_content(2048);

    // --- UIP: the real system, one shared file, blocking writers.
    let f = fixture(FixtureOptions { n_files: 1, sync_archive: true, ..Default::default() });
    let uip_elapsed = run_threads(writers, |_| {
        for _ in 0..updates_per_writer {
            let path = f.token_path(0, TokenKind::Write);
            let fs = f.sys.fs(SRV).expect("fs");
            let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
            fs.write(fd, &content).expect("write");
            fs.close(fd).expect("close");
        }
    });
    let uip_version = f
        .sys
        .node(SRV)
        .expect("node")
        .server
        .repository()
        .get_file(&f.paths[0])
        .expect("entry")
        .cur_version;

    // --- CICO: explicit checkout lock with retry loop.
    let db = Database::open(StorageEnv::mem()).expect("db");
    let mem = Arc::new(MemFs::new());
    let lfs = Arc::new(Lfs::new(mem as Arc<dyn FileSystem>));
    lfs.write_file(&APP, "/shared.bin", &content).expect("seed");
    lfs.setattr(&APP, "/shared.bin", &dl_fskit::SetAttr::chmod(0o666)).expect("chmod");
    let cico = CicoManager::new(db, Arc::clone(&lfs)).expect("cico");
    let retries = AtomicU64::new(0);
    let cico_elapsed = run_threads(writers, |t| {
        let cred = Cred::user(100 + t as u32);
        for _ in 0..updates_per_writer {
            let ticket = loop {
                match cico.checkout(&cred, "/shared.bin") {
                    Ok(t) => break t,
                    Err(_) => {
                        retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                }
            };
            cico.fs.write_file(&cred, "/shared.bin", &content).expect("write");
            cico.checkin(&ticket).expect("checkin");
        }
    });

    // --- CAU last-writer-wins: never blocks, loses updates.
    let db = Database::open(StorageEnv::mem()).expect("db");
    let mem = Arc::new(MemFs::new());
    let lfs = Arc::new(Lfs::new(mem as Arc<dyn FileSystem>));
    lfs.setattr(&Cred::root(), "/", &dl_fskit::SetAttr::chmod(0o777)).expect("chmod root");
    lfs.write_file(&APP, "/shared.bin", &content).expect("seed");
    lfs.setattr(&APP, "/shared.bin", &dl_fskit::SetAttr::chmod(0o666)).expect("chmod");
    let cau = CauManager::new(db, lfs).expect("cau");
    let cau_elapsed = run_threads(writers, |t| {
        let cred = Cred::user(100 + t as u32);
        for _ in 0..updates_per_writer {
            let copy = cau.copy_out(&cred, "/shared.bin").expect("copy");
            cau.fs.write_file(&cred, &copy.copy, &content).expect("edit");
            cau.check_in(&cred, &copy, MergePolicy::LastWriterWins).expect("checkin");
        }
    });
    let lost = cau.lost_updates.load(Ordering::Relaxed);

    let total = (writers * updates_per_writer) as f64;
    let thr = |d: std::time::Duration| total / d.as_secs_f64();
    Table {
        id: "A1".into(),
        title: format!(
            "update disciplines, {writers} writers x {updates_per_writer} updates of one file (§3)"
        ),
        header: vec![s("discipline"), s("elapsed"), s("updates/s"), s("lost updates"), s("notes")],
        rows: vec![
            vec![
                s("UIP (this paper)"),
                s(format!("{:.1?}", uip_elapsed)),
                s(format!("{:.0}", thr(uip_elapsed))),
                s(0),
                s(format!("all {uip_version}-1 updates serialized at open, none lost")),
            ],
            vec![
                s("CICO"),
                s(format!("{:.1?}", cico_elapsed)),
                s(format!("{:.0}", thr(cico_elapsed))),
                s(0),
                s(format!(
                    "{} busy retries; 2 DB updates per session",
                    retries.load(Ordering::Relaxed)
                )),
            ],
            vec![
                s("CAU (last-writer-wins)"),
                s(format!("{:.1?}", cau_elapsed)),
                s(format!("{:.0}", thr(cau_elapsed))),
                s(lost),
                s("no blocking, but committed updates silently lost"),
            ],
        ],
        notes: vec![
            "expected shape: CAU fastest but unsafe; UIP and CICO serialize, with CICO paying \
             explicit lock-table writes and retry spinning"
                .into(),
        ],
    }
}

// ===========================================================================
// A2 — transaction boundary: per-write upcalls vs open/close (§3.1)
// ===========================================================================

pub fn a2_txn_boundary(writes_per_open: &[usize]) -> Table {
    let f = fixture(FixtureOptions { n_files: 1, sync_archive: true, ..Default::default() });
    let fs = f.sys.fs(SRV).expect("fs");
    let chunk = make_content(512);
    let client = f.sys.node(SRV).expect("node").dlfs.upcall_client().clone();

    let mut rows = Vec::new();
    for &n in writes_per_open {
        // Actual design: upcalls only at open/close.
        let before = client.round_trip_count();
        let path = f.token_path(0, TokenKind::Write);
        let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
        for k in 0..n {
            fs.write_at(fd, (k * chunk.len()) as u64, &chunk).expect("write");
        }
        fs.close(fd).expect("close");
        let actual = client.round_trip_count() - before;

        // Rejected design (§3.1): every fs_readwrite would also upcall —
        // cost modelled as actual + n extra round-trips of the measured
        // upcall latency.
        let upcall_ns = time_ns(200, || {
            let _ = client.mutation_check("/data/doesnotexist");
        });
        rows.push(vec![s(n), s(actual), s(actual as usize + n), fmt_ns(upcall_ns * n as f64)]);
    }
    Table {
        id: "A2".into(),
        title: "transaction boundary ablation (§3.1): upcalls per update session".into(),
        header: vec![
            s("writes per open"),
            s("upcalls (open/close boundary)"),
            s("upcalls (per-write boundary)"),
            s("extra upcall time at per-write"),
        ],
        rows,
        notes: vec![
            "open/close boundary keeps the upcall count constant regardless of write count —\
             the paper's argument for treating open..close as the transaction"
                .into(),
        ],
    }
}

// ===========================================================================
// A3 — read path: rfd vs rdd (§4.2/§5)
// ===========================================================================

pub fn a3_read_path(iters: u64) -> Table {
    let mut rows = Vec::new();
    for mode in [ControlMode::Rfd, ControlMode::Rdd] {
        let f = fixture(FixtureOptions { mode, n_files: 1, file_size: 4096, ..Default::default() });
        let client = f.sys.node(SRV).expect("node").dlfs.upcall_client().clone();
        let fs = f.sys.fs(SRV).expect("fs");

        // rfd reads need no token; rdd reads do (prime the token entry once
        // so the steady-state cost is visible separately).
        let path = if mode == ControlMode::Rdd {
            f.token_path(0, TokenKind::Read)
        } else {
            f.paths[0].clone()
        };
        let before = client.round_trip_count();
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, &path, OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
        });
        let upcalls = client.round_trip_count() - before;
        rows.push(vec![
            mode.to_string(),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("{:.2}", upcalls as f64 / iters as f64)),
        ]);
    }
    Table {
        id: "A3".into(),
        title: "read-open cost: rfd (FS-controlled reads) vs rdd (DBMS-controlled) — §4.2".into(),
        header: vec![s("mode"), s("ns/open+close"), s("time"), s("upcalls/open")],
        rows,
        notes: vec![
            "rfd: zero upcalls on the read path — the paper's key optimization; the price is \
             the §5 read/write anomaly (demonstrated by test \
             rfd_write_takes_slow_path_and_reads_stay_fast)"
                .into(),
            "rdd: every open pays token-entry check + sync entries (per-open upcalls >= 2)".into(),
        ],
    }
}

// ===========================================================================
// A4 — Sync-table read tracking cost (§4.5: 2 extra DB updates + 1 upcall)
// ===========================================================================

pub fn a4_sync_table_cost(iters: u64) -> Table {
    let mut rows = Vec::new();
    for track in [true, false] {
        let f = fixture(FixtureOptions {
            mode: ControlMode::Rdd,
            n_files: 1,
            track_read_sync: track,
            ..Default::default()
        });
        let fs = f.sys.fs(SRV).expect("fs");
        let path = f.token_path(0, TokenKind::Read);
        let repo_before = f.sys.node(SRV).expect("node").server.repository().update_op_count();
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, &path, OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
        });
        let repo_ops =
            f.sys.node(SRV).expect("node").server.repository().update_op_count() - repo_before;
        rows.push(vec![
            s(if track { "sync entries on (default)" } else { "sync entries off (ablation)" }),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("{:.2}", repo_ops as f64 / iters as f64)),
        ]);
    }
    Table {
        id: "A4".into(),
        title: "Sync-table read tracking (§4.5: 'two extra database update operations and one \
                extra upcall for every request that opens file for read')"
            .into(),
        header: vec![s("configuration"), s("ns/open+close"), s("time"), s("repo updates/open")],
        rows,
        notes: vec![
            "with tracking on, each read open inserts and purges a Sync row (2 repo updates); \
             the ablation drops them at the price of the read/unlink race"
                .into(),
        ],
    }
}

// ===========================================================================
// A5 — async vs sync archiving (§4.4)
// ===========================================================================

pub fn a5_archive_async(sizes_kib: &[usize], iters: u64) -> Table {
    let mut rows = Vec::new();
    for &kib in sizes_kib {
        let mut cells = vec![s(format!("{kib} KiB"))];
        for sync in [false, true] {
            let f = fixture(FixtureOptions {
                n_files: 1,
                file_size: kib * 1024,
                sync_archive: sync,
                io: IoModel::disk_like(),
                ..Default::default()
            });
            let fs = f.sys.fs(SRV).expect("fs");
            let content = make_content(kib * 1024);
            // Measure the close() call alone: that is where §4.4's
            // asynchronous archiving pays off.
            let mut close_ns = 0u128;
            for _ in 0..iters {
                let path = f.token_path(0, TokenKind::Write);
                let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
                fs.write(fd, &content).expect("write");
                let t = std::time::Instant::now();
                fs.close(fd).expect("close");
                close_ns += t.elapsed().as_nanos();
                f.sys.node(SRV).expect("node").server.archive_store().wait_archived(&f.paths[0]);
            }
            cells.push(fmt_ns(close_ns as f64 / iters as f64));
        }
        rows.push(cells);
    }
    Table {
        id: "A5".into(),
        title: "archiving policy (§4.4): close() latency, async (paper) vs sync (ablation)".into(),
        header: vec![s("file size"), s("close, async archive"), s("close, sync archive")],
        rows,
        notes: vec![
            "async archiving moves the content copy off the close path; a new update to the \
             same file still blocks until the archive completes (the §4.4 blocking rule)"
                .into(),
        ],
    }
}

// ===========================================================================
// A6 — atomicity under crash injection (§4.2)
// ===========================================================================

pub fn a6_crash_atomicity(rounds: usize) -> Table {
    use dl_core::DataLinksSystem;
    let mut survived = 0usize;
    let mut restored = 0usize;
    for round in 0..rounds {
        let f = fixture(FixtureOptions { n_files: 1, ..Default::default() });
        let committed = make_content(1024 + round);
        f.managed_update(0, &committed);

        // Start another update, write garbage, crash before close.
        let path = f.token_path(0, TokenKind::Write);
        let fs = f.sys.fs(SRV).expect("fs");
        let fd = fs.open(&APP, &path, OpenOptions::write_truncate()).expect("open");
        fs.write(fd, b"doomed").expect("write");
        let Fixture { sys, paths, .. } = f;
        let image = sys.crash();
        let (sys, _) = DataLinksSystem::recover(image).expect("recover");

        let data = sys.raw_fs(SRV).expect("raw").read_file(&Cred::root(), &paths[0]).expect("read");
        if data == committed {
            restored += 1;
        }
        survived += 1;
    }
    Table {
        id: "A6".into(),
        title: "atomicity: crash mid-update always restores the last committed version (§4.2)"
            .into(),
        header: vec![s("crash rounds"), s("recovered"), s("content == last committed")],
        rows: vec![vec![s(rounds), s(survived), s(restored)]],
        notes: vec!["property-based variants live in tests/crash_recovery.rs".into()],
    }
}

// ===========================================================================
// A7 — coordinated point-in-time restore (§4.4)
// ===========================================================================

pub fn a7_point_in_time(versions: usize) -> Table {
    let f = fixture(FixtureOptions { n_files: 1, ..Default::default() });
    let mut states = vec![f.sys.state_id()];
    let mut contents =
        vec![f.sys.raw_fs(SRV).unwrap().read_file(&Cred::root(), &f.paths[0]).unwrap()];
    for v in 2..=versions {
        let content = make_content(512 + v);
        f.managed_update(0, &content);
        states.push(f.sys.state_id());
        contents.push(content);
    }
    let backup = f.sys.backup().expect("backup");

    let mut rows = Vec::new();
    let mut sys = f.sys;
    let paths = f.paths;
    for (i, state) in states.iter().enumerate().rev() {
        let (restored, report) = sys.restore(&backup, *state).expect("restore");
        let data =
            restored.raw_fs(SRV).expect("raw").read_file(&Cred::root(), &paths[0]).expect("read");
        let matches = data == contents[i];
        rows.push(vec![
            s(format!("v{}", i + 1)),
            s(*state),
            s(report.files_rolled_back),
            s(matches),
        ]);
        sys = restored;
    }
    Table {
        id: "A7".into(),
        title: "coordinated point-in-time restore: file content matches restored metadata (§4.4)"
            .into(),
        header: vec![
            s("target version"),
            s("state id (LSN)"),
            s("files rolled back"),
            s("content matches"),
        ],
        rows,
        notes: vec![
            "restore walks backwards v5→v1; every step must land on that version's bytes".into()
        ],
    }
}

// ===========================================================================
// A8 — strict-link extension cost (§4.5 future work, implemented)
// ===========================================================================

pub fn a8_strict_link(iters: u64) -> Table {
    let mut rows = Vec::new();
    for strict in [false, true] {
        let f = fixture(FixtureOptions { strict, n_files: 1, ..Default::default() });
        f.sys
            .raw_fs(SRV)
            .expect("raw")
            .write_file(&APP, "/data/unlinked.bin", b"plain")
            .expect("seed");
        let fs = f.sys.fs(SRV).expect("fs");
        let client = f.sys.node(SRV).expect("node").dlfs.upcall_client().clone();
        let before = client.round_trip_count();
        let ns = time_ns(iters, || {
            let fd = fs.open(&APP, "/data/unlinked.bin", OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
        });
        let upcalls = (client.round_trip_count() - before) as f64 / iters as f64;
        rows.push(vec![
            s(if strict { "strict (window closed)" } else { "default (paper prototype)" }),
            s(format!("{ns:.0}")),
            fmt_ns(ns),
            s(format!("{upcalls:.2}")),
        ]);
    }
    Table {
        id: "A8".into(),
        title: "closing the §4.5 link window: per-open cost of registering *unlinked* opens".into(),
        header: vec![s("configuration"), s("ns/open+close"), s("time"), s("upcalls/open")],
        rows,
        notes: vec![
            "the paper rejects this ('undesirable for performance reasons') and leaves it as \
             future work; the measured cost quantifies why"
                .into(),
        ],
    }
}

/// Latency distribution helper used by the report's appendix.
pub fn open_latency_distribution(mode: ControlMode, samples: usize) -> (u64, u64, u64) {
    let f = fixture(FixtureOptions { mode, n_files: 1, ..Default::default() });
    let fs = f.sys.fs(SRV).expect("fs");
    let path = match mode.read_control() {
        dl_dlfm::AccessControl::Dbms => f.token_path(0, TokenKind::Read),
        _ => f.paths[0].clone(),
    };
    let mut lat: Vec<u64> = (0..samples)
        .map(|_| {
            let t = std::time::Instant::now();
            let fd = fs.open(&APP, &path, OpenOptions::read_only()).expect("open");
            fs.close(fd).expect("close");
            t.elapsed().as_nanos() as u64
        })
        .collect();
    (percentile(&mut lat, 0.50), percentile(&mut lat, 0.99), percentile(&mut lat, 1.0))
}
