//! The frame codec.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! [u32 len][u64 request-id][u8 tag][payload...]
//! ```
//!
//! `len` counts everything after itself (request-id + tag + payload), so
//! a reader needs exactly 4 bytes to learn how much more to wait for.
//! The request-id correlates replies with requests: one connection
//! multiplexes any number of concurrent calls, and replies may arrive in
//! any order. Strings are `[u32 len][utf8 bytes]`; bools are a strict
//! 0/1 byte; enums cross the wire as raw `u8` discriminants so this
//! crate stays independent of the DLFM type definitions.

use std::fmt;

/// Ceiling on a frame's declared length. A stream announcing more than
/// this is garbage (or hostile) — fail decoding instead of buffering
/// unboundedly. Generous: the largest legitimate payload is a path plus
/// a token, both far under a megabyte.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Why a byte stream failed to decode. Any error is fatal to the
/// connection that produced it: framing has lost sync and nothing after
/// the failure can be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Declared frame length exceeds [`MAX_FRAME_LEN`] or is too short
    /// to hold the request-id + tag.
    BadLength(u64),
    /// Unknown message tag.
    BadTag(u8),
    /// Payload ended before the message was complete, or had trailing
    /// bytes after it.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A bool field held something other than 0 or 1.
    BadBool(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadLength(n) => write!(f, "frame length {n} out of bounds"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::Truncated => write!(f, "truncated message payload"),
            DecodeError::BadUtf8 => write!(f, "string field is not UTF-8"),
            DecodeError::BadBool(b) => write!(f, "bool field holds {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Every message of the agent/upcall protocol. Requests and replies
/// share one tag space; the request-id in the frame header ties them
/// together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    // --- session -----------------------------------------------------------
    /// First frame on every connection; the server answers [`Message::HelloAck`].
    Hello {
        client: String,
    },
    /// Connection parameters the client caches for its lifetime. The
    /// coordinator epoch stamps every subsequent 2PC request from this
    /// connection, exactly like an in-process agent handle minted at
    /// connect time.
    HelloAck {
        server: String,
        coord_epoch: u64,
        strict_link: bool,
        dlfm_uid: u32,
        dlfm_gid: u32,
    },

    // --- agent operations (link/unlink + 2PC) ------------------------------
    Link {
        txid: u64,
        coord_epoch: u64,
        path: String,
        mode: u8,
        recovery: bool,
        on_unlink: u8,
    },
    Unlink {
        txid: u64,
        coord_epoch: u64,
        path: String,
    },
    Prepare {
        txid: u64,
        coord_epoch: u64,
    },
    Commit {
        txid: u64,
        coord_epoch: u64,
    },
    Abort {
        txid: u64,
        coord_epoch: u64,
    },

    // --- upcall operations (the DLFS conversation) --------------------------
    ValidateToken {
        path: String,
        token: String,
        uid: u32,
    },
    OpenCheck {
        path: String,
        uid: u32,
        wanted: u8,
        opener: u64,
    },
    CloseNotify {
        path: String,
        opener: u64,
        wrote: bool,
        size: u64,
        mtime: u64,
    },
    MutationCheck {
        path: String,
    },
    RegisterOpen {
        path: String,
        uid: u32,
        opener: u64,
    },
    UnregisterOpen {
        path: String,
        opener: u64,
    },
    /// Current sync/archive epoch (DLFS Busy-wait polls this over the wire).
    EpochGet,
    /// The repository's durable LSN — the freshness token of
    /// read-your-writes routing.
    FreshnessToken,

    // --- replies ------------------------------------------------------------
    Ok,
    Err(String),
    TokenKindIs(u8),
    OpenApproved {
        uid: u32,
        gid: u32,
    },
    OpenNotManaged,
    OpenBusy,
    OpenRejected(String),
    EpochIs(u64),
    Freshness(u64),
}

// Tag space: requests low, replies from 64. Gaps are reserved.
const T_HELLO: u8 = 1;
const T_HELLO_ACK: u8 = 2;
const T_LINK: u8 = 3;
const T_UNLINK: u8 = 4;
const T_PREPARE: u8 = 5;
const T_COMMIT: u8 = 6;
const T_ABORT: u8 = 7;
const T_VALIDATE_TOKEN: u8 = 8;
const T_OPEN_CHECK: u8 = 9;
const T_CLOSE_NOTIFY: u8 = 10;
const T_MUTATION_CHECK: u8 = 11;
const T_REGISTER_OPEN: u8 = 12;
const T_UNREGISTER_OPEN: u8 = 13;
const T_EPOCH_GET: u8 = 14;
const T_FRESHNESS_TOKEN: u8 = 15;
const T_OK: u8 = 64;
const T_ERR: u8 = 65;
const T_TOKEN_KIND: u8 = 66;
const T_OPEN_APPROVED: u8 = 67;
const T_OPEN_NOT_MANAGED: u8 = 68;
const T_OPEN_BUSY: u8 = 69;
const T_OPEN_REJECTED: u8 = 70;
const T_EPOCH_IS: u8 = 71;
const T_FRESHNESS: u8 = 72;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over one frame's payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::BadBool(other)),
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => T_HELLO,
            Message::HelloAck { .. } => T_HELLO_ACK,
            Message::Link { .. } => T_LINK,
            Message::Unlink { .. } => T_UNLINK,
            Message::Prepare { .. } => T_PREPARE,
            Message::Commit { .. } => T_COMMIT,
            Message::Abort { .. } => T_ABORT,
            Message::ValidateToken { .. } => T_VALIDATE_TOKEN,
            Message::OpenCheck { .. } => T_OPEN_CHECK,
            Message::CloseNotify { .. } => T_CLOSE_NOTIFY,
            Message::MutationCheck { .. } => T_MUTATION_CHECK,
            Message::RegisterOpen { .. } => T_REGISTER_OPEN,
            Message::UnregisterOpen { .. } => T_UNREGISTER_OPEN,
            Message::EpochGet => T_EPOCH_GET,
            Message::FreshnessToken => T_FRESHNESS_TOKEN,
            Message::Ok => T_OK,
            Message::Err(_) => T_ERR,
            Message::TokenKindIs(_) => T_TOKEN_KIND,
            Message::OpenApproved { .. } => T_OPEN_APPROVED,
            Message::OpenNotManaged => T_OPEN_NOT_MANAGED,
            Message::OpenBusy => T_OPEN_BUSY,
            Message::OpenRejected(_) => T_OPEN_REJECTED,
            Message::EpochIs(_) => T_EPOCH_IS,
            Message::Freshness(_) => T_FRESHNESS,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello { client } => put_str(out, client),
            Message::HelloAck { server, coord_epoch, strict_link, dlfm_uid, dlfm_gid } => {
                put_str(out, server);
                put_u64(out, *coord_epoch);
                put_bool(out, *strict_link);
                put_u32(out, *dlfm_uid);
                put_u32(out, *dlfm_gid);
            }
            Message::Link { txid, coord_epoch, path, mode, recovery, on_unlink } => {
                put_u64(out, *txid);
                put_u64(out, *coord_epoch);
                put_str(out, path);
                out.push(*mode);
                put_bool(out, *recovery);
                out.push(*on_unlink);
            }
            Message::Unlink { txid, coord_epoch, path } => {
                put_u64(out, *txid);
                put_u64(out, *coord_epoch);
                put_str(out, path);
            }
            Message::Prepare { txid, coord_epoch }
            | Message::Commit { txid, coord_epoch }
            | Message::Abort { txid, coord_epoch } => {
                put_u64(out, *txid);
                put_u64(out, *coord_epoch);
            }
            Message::ValidateToken { path, token, uid } => {
                put_str(out, path);
                put_str(out, token);
                put_u32(out, *uid);
            }
            Message::OpenCheck { path, uid, wanted, opener } => {
                put_str(out, path);
                put_u32(out, *uid);
                out.push(*wanted);
                put_u64(out, *opener);
            }
            Message::CloseNotify { path, opener, wrote, size, mtime } => {
                put_str(out, path);
                put_u64(out, *opener);
                put_bool(out, *wrote);
                put_u64(out, *size);
                put_u64(out, *mtime);
            }
            Message::MutationCheck { path } => put_str(out, path),
            Message::RegisterOpen { path, uid, opener } => {
                put_str(out, path);
                put_u32(out, *uid);
                put_u64(out, *opener);
            }
            Message::UnregisterOpen { path, opener } => {
                put_str(out, path);
                put_u64(out, *opener);
            }
            Message::EpochGet
            | Message::FreshnessToken
            | Message::Ok
            | Message::OpenNotManaged
            | Message::OpenBusy => {}
            Message::Err(e) | Message::OpenRejected(e) => put_str(out, e),
            Message::TokenKindIs(k) => out.push(*k),
            Message::OpenApproved { uid, gid } => {
                put_u32(out, *uid);
                put_u32(out, *gid);
            }
            Message::EpochIs(v) | Message::Freshness(v) => put_u64(out, *v),
        }
    }

    fn decode_payload(tag: u8, payload: &[u8]) -> Result<Message, DecodeError> {
        let mut r = Reader { buf: payload, pos: 0 };
        let msg = match tag {
            T_HELLO => Message::Hello { client: r.string()? },
            T_HELLO_ACK => Message::HelloAck {
                server: r.string()?,
                coord_epoch: r.u64()?,
                strict_link: r.bool()?,
                dlfm_uid: r.u32()?,
                dlfm_gid: r.u32()?,
            },
            T_LINK => Message::Link {
                txid: r.u64()?,
                coord_epoch: r.u64()?,
                path: r.string()?,
                mode: r.u8()?,
                recovery: r.bool()?,
                on_unlink: r.u8()?,
            },
            T_UNLINK => {
                Message::Unlink { txid: r.u64()?, coord_epoch: r.u64()?, path: r.string()? }
            }
            T_PREPARE => Message::Prepare { txid: r.u64()?, coord_epoch: r.u64()? },
            T_COMMIT => Message::Commit { txid: r.u64()?, coord_epoch: r.u64()? },
            T_ABORT => Message::Abort { txid: r.u64()?, coord_epoch: r.u64()? },
            T_VALIDATE_TOKEN => {
                Message::ValidateToken { path: r.string()?, token: r.string()?, uid: r.u32()? }
            }
            T_OPEN_CHECK => Message::OpenCheck {
                path: r.string()?,
                uid: r.u32()?,
                wanted: r.u8()?,
                opener: r.u64()?,
            },
            T_CLOSE_NOTIFY => Message::CloseNotify {
                path: r.string()?,
                opener: r.u64()?,
                wrote: r.bool()?,
                size: r.u64()?,
                mtime: r.u64()?,
            },
            T_MUTATION_CHECK => Message::MutationCheck { path: r.string()? },
            T_REGISTER_OPEN => {
                Message::RegisterOpen { path: r.string()?, uid: r.u32()?, opener: r.u64()? }
            }
            T_UNREGISTER_OPEN => Message::UnregisterOpen { path: r.string()?, opener: r.u64()? },
            T_EPOCH_GET => Message::EpochGet,
            T_FRESHNESS_TOKEN => Message::FreshnessToken,
            T_OK => Message::Ok,
            T_ERR => Message::Err(r.string()?),
            T_TOKEN_KIND => Message::TokenKindIs(r.u8()?),
            T_OPEN_APPROVED => Message::OpenApproved { uid: r.u32()?, gid: r.u32()? },
            T_OPEN_NOT_MANAGED => Message::OpenNotManaged,
            T_OPEN_BUSY => Message::OpenBusy,
            T_OPEN_REJECTED => Message::OpenRejected(r.string()?),
            T_EPOCH_IS => Message::EpochIs(r.u64()?),
            T_FRESHNESS => Message::Freshness(r.u64()?),
            other => return Err(DecodeError::BadTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Encodes one complete frame, ready for the socket.
pub fn encode_frame(request_id: u64, msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u32(&mut out, 0); // length back-patched below
    put_u64(&mut out, request_id);
    out.push(msg.tag());
    msg.encode_payload(&mut out);
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

/// An incremental frame decoder: feed it whatever bytes the socket
/// produced, pull complete frames out. Partial frames park until the
/// rest arrives; malformed input fails permanently.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames (compacted
    /// lazily so a burst of small frames doesn't memmove per frame).
    consumed: usize,
    poisoned: bool,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        if self.consumed > 0 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame, if one is buffered. `Ok(None)` means
    /// "wait for more bytes"; an error poisons the decoder (the stream
    /// has lost framing sync).
    pub fn next_frame(&mut self) -> Result<Option<(u64, Message)>, DecodeError> {
        if self.poisoned {
            return Err(DecodeError::Truncated);
        }
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
        // A frame must at least hold the request-id and tag.
        if !(9..=MAX_FRAME_LEN).contains(&len) {
            self.poisoned = true;
            return Err(DecodeError::BadLength(len as u64));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let body = &pending[4..4 + len];
        let request_id = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        let tag = body[8];
        match Message::decode_payload(tag, &body[9..]) {
            Ok(msg) => {
                self.consumed += 4 + len;
                Ok(Some((request_id, msg)))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basic() {
        let msg = Message::Link {
            txid: 7,
            coord_epoch: 3,
            path: "/data/a.bin".into(),
            mode: 2,
            recovery: true,
            on_unlink: 1,
        };
        let bytes = encode_frame(42, &msg);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_frame().unwrap(), Some((42, msg)));
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn torn_frame_waits_for_the_rest() {
        let msg = Message::ValidateToken { path: "/p".into(), token: "t".into(), uid: 5 };
        let bytes = encode_frame(1, &msg);
        let mut d = FrameDecoder::new();
        for chunk in bytes.chunks(3) {
            assert!(matches!(d.next_frame(), Ok(None) | Ok(Some(_))) || chunk.is_empty());
            d.feed(chunk);
        }
        assert_eq!(d.next_frame().unwrap(), Some((1, msg)));
    }

    #[test]
    fn garbage_poisons_without_panicking() {
        let mut d = FrameDecoder::new();
        d.feed(&[0xFF; 64]);
        assert!(d.next_frame().is_err());
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut d = FrameDecoder::new();
        d.feed(&(u32::MAX).to_le_bytes());
        d.feed(&[0; 16]);
        assert_eq!(d.next_frame(), Err(DecodeError::BadLength(u32::MAX as u64)));
    }
}
