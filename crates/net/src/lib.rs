//! The wire transport: a length-prefixed binary frame codec for the DLFM
//! agent/upcall protocol plus a small poll(2)-driven reactor serving many
//! nonblocking Unix-domain socket connections from one thread.
//!
//! The paper's DataLinks architecture is a *networked* protocol — DLFS
//! clients and the DLFM daemon complex exchange link/unlink, open/close
//! and 2PC messages across a host boundary (§2.2) — and this crate is
//! that boundary made real. It is deliberately self-contained:
//!
//! * [`Message`] / [`encode_frame`] / [`FrameDecoder`] — the codec. Every
//!   protocol operation (link, unlink, 2PC prepare/decide with
//!   coordinator-epoch stamps, token validation, open/close claims,
//!   freshness tokens) round-trips through a `[u32 len][u64 request-id]
//!   [u8 tag][payload]` frame. The decoder is incremental: partial reads
//!   and torn frames park until more bytes arrive, garbage fails with a
//!   [`DecodeError`] instead of a panic.
//! * [`Reactor`] / [`ReactorHandle`] / [`NetEvent`] — the runtime. One
//!   poller thread drives readiness over nonblocking
//!   `std::os::unix::net` sockets (hand-declared poll(2), no tokio/mio),
//!   keeping per-connection read buffers and bounded write queues; frame
//!   and connection events surface through a caller-supplied handler.
//!
//! Higher layers (`dl-dlfm`'s `WireDaemon` and wire clients) map these
//! frames onto the in-process server machinery; this crate knows nothing
//! about DLFM itself.

mod frame;
mod reactor;

pub use frame::{encode_frame, DecodeError, FrameDecoder, Message, MAX_FRAME_LEN};
pub use reactor::{NetEvent, Reactor, ReactorHandle};
