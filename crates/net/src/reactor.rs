//! A small poll(2)-driven reactor over nonblocking Unix-domain sockets.
//!
//! One thread owns every socket: it polls for readiness, drains readable
//! connections through a [`FrameDecoder`], flushes bounded write queues,
//! and accepts new connections from an optional listener. Everything the
//! caller sees arrives as a [`NetEvent`] through the handler closure —
//! the handler runs *on the poller thread*, so it must never block on
//! work that itself needs the poller (hand such work to an executor and
//! reply later through the [`ReactorHandle`]).
//!
//! Built only on `std::os::unix::net` plus a hand-declared poll(2) FFI —
//! no tokio, no mio. A `UnixStream::pair` serves as the waker: any
//! thread with a handle writes one byte to nudge the poller out of its
//! wait.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use dl_obs::NetStats;
use parking_lot::Mutex;

use crate::frame::{encode_frame, FrameDecoder, Message};

// poll(2), declared by hand: the only libc surface this crate needs.
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// What the reactor tells its owner. `Frame` carries the request-id so a
/// server can stamp its reply and a client can correlate it.
pub enum NetEvent {
    /// A connection is up: accepted from the listener, or registered by
    /// a client through [`ReactorHandle::register`].
    Accepted(u64),
    /// A complete frame arrived on `conn`.
    Frame { conn: u64, request_id: u64, msg: Message },
    /// The connection is gone — peer hangup, I/O error, decode failure,
    /// or an explicit [`ReactorHandle::close`]. Emitted exactly once per
    /// connection that saw `Accepted`.
    Disconnected(u64),
}

enum Cmd {
    Register { id: u64, stream: UnixStream },
    Send { id: u64, bytes: Vec<u8> },
    Close { id: u64 },
    Shutdown,
}

/// A clonable handle for talking to the poller thread from outside.
#[derive(Clone)]
pub struct ReactorHandle {
    cmds: Arc<Mutex<Vec<Cmd>>>,
    waker: Arc<UnixStream>,
    next_conn: Arc<AtomicU64>,
    stats: Arc<NetStats>,
}

impl ReactorHandle {
    fn push(&self, cmd: Cmd) {
        self.cmds.lock().push(cmd);
        self.wake();
    }

    fn wake(&self) {
        // A full pipe already guarantees a wakeup is pending.
        let _ = (&*self.waker).write(&[1u8]);
    }

    /// Adopts an already-connected stream (client side). Returns the
    /// connection id; the poller emits `Accepted` once it takes over.
    pub fn register(&self, stream: UnixStream) -> io::Result<u64> {
        stream.set_nonblocking(true)?;
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.push(Cmd::Register { id, stream });
        Ok(id)
    }

    /// Queues one frame for transmission on `conn`. Unknown or
    /// already-dead connections drop the frame silently — the caller
    /// learns of the death through `Disconnected`.
    pub fn send(&self, conn: u64, request_id: u64, msg: &Message) {
        let bytes = encode_frame(request_id, msg);
        self.stats.frames_out.inc();
        self.push(Cmd::Send { id: conn, bytes });
    }

    /// Tears down `conn` (flushing nothing): the a14 scenario's
    /// `sever_connections` injection lands here.
    pub fn close(&self, conn: u64) {
        self.push(Cmd::Close { id: conn });
    }

    /// Stops the poller thread; every live connection gets a final
    /// `Disconnected`.
    pub fn shutdown(&self) {
        self.push(Cmd::Shutdown);
    }
}

struct Conn {
    stream: UnixStream,
    decoder: FrameDecoder,
    outq: VecDeque<Vec<u8>>,
    /// Bytes of `outq.front()` already written.
    out_pos: usize,
}

/// The poller. Owned by its thread after [`Reactor::spawn`]; callers
/// keep only [`ReactorHandle`]s.
pub struct Reactor {
    handle: ReactorHandle,
    join: Option<thread::JoinHandle<()>>,
}

impl Reactor {
    /// Spawns the poller thread. `listener`, when present, feeds the
    /// accept loop (server side); clients pass `None` and register
    /// outbound streams through the handle. `make_handler` receives the
    /// handle first so the handler it builds can reply to frames.
    pub fn spawn<F>(
        name: &str,
        listener: Option<UnixListener>,
        stats: Arc<NetStats>,
        make_handler: impl FnOnce(&ReactorHandle) -> F,
    ) -> io::Result<Reactor>
    where
        F: FnMut(NetEvent) + Send + 'static,
    {
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
        }
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let handle = ReactorHandle {
            cmds: Arc::new(Mutex::new(Vec::new())),
            waker: Arc::new(wake_tx),
            next_conn: Arc::new(AtomicU64::new(1)),
            stats: Arc::clone(&stats),
        };
        let mut handler = make_handler(&handle);
        let loop_handle = handle.clone();
        let join = thread::Builder::new().name(format!("dl-net-{name}")).spawn(move || {
            poll_loop(loop_handle, listener, wake_rx, stats, &mut handler);
        })?;
        Ok(Reactor { handle, join: Some(join) })
    }

    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn poll_loop(
    handle: ReactorHandle,
    listener: Option<UnixListener>,
    wake_rx: UnixStream,
    stats: Arc<NetStats>,
    handler: &mut dyn FnMut(NetEvent),
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut pollfds: Vec<PollFd> = Vec::new();
    // pollfds[i] -> connection id, for the entries past waker/listener.
    let mut slot_ids: Vec<u64> = Vec::new();
    let mut wake_buf = [0u8; 64];
    let mut read_buf = vec![0u8; 64 * 1024];

    loop {
        // Drain pending commands first so a Register+Send burst lands in
        // one poll cycle.
        let cmds: Vec<Cmd> = std::mem::take(&mut *handle.cmds.lock());
        let mut shutdown = false;
        for cmd in cmds {
            match cmd {
                Cmd::Register { id, stream } => {
                    conns.insert(
                        id,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            outq: VecDeque::new(),
                            out_pos: 0,
                        },
                    );
                    stats.connection_opened();
                    handler(NetEvent::Accepted(id));
                }
                Cmd::Send { id, bytes } => {
                    if let Some(c) = conns.get_mut(&id) {
                        stats.bytes_out.add(bytes.len() as u64);
                        c.outq.push_back(bytes);
                    }
                }
                Cmd::Close { id } => {
                    // Bind the removed conn so its socket stays open until
                    // after the stats/handler calls: dropping it first
                    // lets the peer observe the hangup before this side's
                    // accounting exists.
                    if let Some(c) = conns.remove(&id) {
                        stats.connection_closed();
                        handler(NetEvent::Disconnected(id));
                        drop(c);
                    }
                }
                Cmd::Shutdown => shutdown = true,
            }
        }
        if shutdown {
            for (&id, _) in conns.iter() {
                stats.connection_closed();
                handler(NetEvent::Disconnected(id));
            }
            return;
        }

        // Rebuild the poll set: waker, listener, then every connection.
        pollfds.clear();
        slot_ids.clear();
        pollfds.push(PollFd { fd: wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
        if let Some(l) = &listener {
            pollfds.push(PollFd { fd: l.as_raw_fd(), events: POLLIN, revents: 0 });
        }
        let fixed = pollfds.len();
        for (&id, c) in conns.iter() {
            let mut events = POLLIN;
            if !c.outq.is_empty() {
                events |= POLLOUT;
            }
            pollfds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
            slot_ids.push(id);
        }

        let rc = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as u64, 250) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            // poll(2) failing for any other reason is unrecoverable.
            return;
        }

        // Waker: drain whatever bytes accumulated.
        if pollfds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
            while let Ok(n) = (&wake_rx).read(&mut wake_buf) {
                if n < wake_buf.len() {
                    break;
                }
            }
        }

        let mut dead: Vec<u64> = Vec::new();
        for (i, &id) in slot_ids.iter().enumerate() {
            let revents = pollfds[fixed + i].revents;
            if revents == 0 {
                continue;
            }
            let c = match conns.get_mut(&id) {
                Some(c) => c,
                None => continue,
            };
            // Read side: drain until WouldBlock, decoding as we go.
            if revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                'read: loop {
                    match c.stream.read(&mut read_buf) {
                        Ok(0) => {
                            dead.push(id);
                            break 'read;
                        }
                        Ok(n) => {
                            stats.bytes_in.add(n as u64);
                            c.decoder.feed(&read_buf[..n]);
                            loop {
                                match c.decoder.next_frame() {
                                    Ok(Some((request_id, msg))) => {
                                        stats.frames_in.inc();
                                        handler(NetEvent::Frame { conn: id, request_id, msg });
                                    }
                                    Ok(None) => break,
                                    Err(_) => {
                                        stats.decode_errors.inc();
                                        dead.push(id);
                                        break 'read;
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'read,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead.push(id);
                            break 'read;
                        }
                    }
                }
            }
            if dead.last() == Some(&id) {
                continue;
            }
            // Write side: flush the queue until it empties or the kernel
            // buffer fills.
            if revents & POLLOUT != 0 {
                while let Some(front) = c.outq.front() {
                    match c.stream.write(&front[c.out_pos..]) {
                        Ok(n) => {
                            c.out_pos += n;
                            if c.out_pos >= front.len() {
                                c.outq.pop_front();
                                c.out_pos = 0;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            stats.backpressure_stalls.inc();
                            break;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead.push(id);
                            break;
                        }
                    }
                }
            }
        }

        // Fresh sends on idle connections: try an eager flush so a
        // request doesn't wait a full poll cycle when the socket is
        // writable anyway.
        for (&id, c) in conns.iter_mut() {
            if dead.contains(&id) {
                continue;
            }
            while let Some(front) = c.outq.front() {
                match c.stream.write(&front[c.out_pos..]) {
                    Ok(n) => {
                        c.out_pos += n;
                        if c.out_pos >= front.len() {
                            c.outq.pop_front();
                            c.out_pos = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        stats.backpressure_stalls.inc();
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead.push(id);
                        break;
                    }
                }
            }
        }

        for id in dead {
            if let Some(c) = conns.remove(&id) {
                stats.connection_closed();
                handler(NetEvent::Disconnected(id));
                drop(c);
            }
        }

        // Accept loop: adopt every pending connection.
        if let Some(l) = &listener {
            loop {
                match l.accept() {
                    Ok((stream, _addr)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let id = handle.next_conn.fetch_add(1, Ordering::Relaxed);
                        conns.insert(
                            id,
                            Conn {
                                stream,
                                decoder: FrameDecoder::new(),
                                outq: VecDeque::new(),
                                out_pos: 0,
                            },
                        );
                        stats.connection_opened();
                        handler(NetEvent::Accepted(id));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn temp_sock(tag: &str) -> std::path::PathBuf {
        let p =
            std::env::temp_dir().join(format!("dl-net-test-{}-{}.sock", std::process::id(), tag));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn echo_round_trip_over_socket() {
        let path = temp_sock("echo");
        let listener = UnixListener::bind(&path).unwrap();
        let server_stats = Arc::new(NetStats::new());
        let _server = Reactor::spawn("echo-srv", Some(listener), Arc::clone(&server_stats), |h| {
            let h = h.clone();
            move |ev| {
                if let NetEvent::Frame { conn, request_id, msg } = ev {
                    h.send(conn, request_id, &msg);
                }
            }
        })
        .unwrap();

        let client_stats = Arc::new(NetStats::new());
        let (tx, rx) = mpsc::channel();
        let client = Reactor::spawn("echo-cli", None, Arc::clone(&client_stats), |_h| {
            move |ev| {
                if let NetEvent::Frame { request_id, msg, .. } = ev {
                    tx.send((request_id, msg)).unwrap();
                }
            }
        })
        .unwrap();

        let stream = UnixStream::connect(&path).unwrap();
        let conn = client.handle().register(stream).unwrap();
        let msg = Message::Prepare { txid: 99, coord_epoch: 1 };
        client.handle().send(conn, 7, &msg);
        let (rid, echoed) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(rid, 7);
        assert_eq!(echoed, msg);
        assert!(server_stats.frames_in.get() >= 1);
        assert!(client_stats.frames_in.get() >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn close_emits_disconnect_on_both_ends() {
        let path = temp_sock("close");
        let listener = UnixListener::bind(&path).unwrap();
        let (srv_tx, srv_rx) = mpsc::channel();
        let server_stats = Arc::new(NetStats::new());
        let _server = Reactor::spawn("close-srv", Some(listener), server_stats, |_h| {
            move |ev| {
                if let NetEvent::Disconnected(id) = ev {
                    srv_tx.send(id).unwrap();
                }
            }
        })
        .unwrap();

        let client_stats = Arc::new(NetStats::new());
        let client =
            Reactor::spawn("close-cli", None, Arc::clone(&client_stats), |_h| move |_ev| {})
                .unwrap();
        let stream = UnixStream::connect(&path).unwrap();
        let conn = client.handle().register(stream).unwrap();
        // Give the server a beat to accept, then sever from the client.
        std::thread::sleep(Duration::from_millis(50));
        client.handle().close(conn);
        let dead = srv_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(dead >= 1);
        assert_eq!(client_stats.disconnects.get(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
