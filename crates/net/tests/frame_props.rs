//! Property tests over the frame codec: every message kind round-trips
//! bit-exactly, and the decoder survives arbitrary, truncated and torn
//! byte streams without panicking.

use proptest::prelude::*;

use dl_net::{encode_frame, FrameDecoder, Message, MAX_FRAME_LEN};

/// A strategy covering every [`Message`] variant, strings included.
fn message_strategy() -> impl Strategy<Value = Message> {
    let s = "[a-z0-9/._-]{0,24}";
    prop_oneof![
        s.prop_map(|client| Message::Hello { client }),
        (s, any::<u64>(), any::<bool>(), any::<u32>(), any::<u32>()).prop_map(
            |(server, coord_epoch, strict_link, dlfm_uid, dlfm_gid)| Message::HelloAck {
                server,
                coord_epoch,
                strict_link,
                dlfm_uid,
                dlfm_gid,
            }
        ),
        (any::<u64>(), any::<u64>(), s, any::<u8>(), any::<bool>(), any::<u8>()).prop_map(
            |(txid, coord_epoch, path, mode, recovery, on_unlink)| Message::Link {
                txid,
                coord_epoch,
                path,
                mode,
                recovery,
                on_unlink,
            }
        ),
        (any::<u64>(), any::<u64>(), s).prop_map(|(txid, coord_epoch, path)| Message::Unlink {
            txid,
            coord_epoch,
            path
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(txid, coord_epoch)| Message::Prepare { txid, coord_epoch }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(txid, coord_epoch)| Message::Commit { txid, coord_epoch }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(txid, coord_epoch)| Message::Abort { txid, coord_epoch }),
        (s, s, any::<u32>()).prop_map(|(path, token, uid)| Message::ValidateToken {
            path,
            token,
            uid
        }),
        (s, any::<u32>(), any::<u8>(), any::<u64>()).prop_map(|(path, uid, wanted, opener)| {
            Message::OpenCheck { path, uid, wanted, opener }
        }),
        (s, any::<u64>(), any::<bool>(), any::<u64>(), any::<u64>()).prop_map(
            |(path, opener, wrote, size, mtime)| Message::CloseNotify {
                path,
                opener,
                wrote,
                size,
                mtime,
            }
        ),
        s.prop_map(|path| Message::MutationCheck { path }),
        (s, any::<u32>(), any::<u64>()).prop_map(|(path, uid, opener)| Message::RegisterOpen {
            path,
            uid,
            opener
        }),
        (s, any::<u64>()).prop_map(|(path, opener)| Message::UnregisterOpen { path, opener }),
        Just(Message::EpochGet),
        Just(Message::FreshnessToken),
        Just(Message::Ok),
        s.prop_map(Message::Err),
        any::<u8>().prop_map(Message::TokenKindIs),
        (any::<u32>(), any::<u32>()).prop_map(|(uid, gid)| Message::OpenApproved { uid, gid }),
        Just(Message::OpenNotManaged),
        Just(Message::OpenBusy),
        s.prop_map(Message::OpenRejected),
        any::<u64>().prop_map(Message::EpochIs),
        any::<u64>().prop_map(Message::Freshness),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// encode → feed → next_frame returns the identical message and
    /// request-id, for every message kind.
    #[test]
    fn every_message_round_trips(
        request_id in any::<u64>(),
        msg in message_strategy(),
    ) {
        let bytes = encode_frame(request_id, &msg);
        prop_assert!(bytes.len() - 4 <= MAX_FRAME_LEN);
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let decoded = d.next_frame().unwrap();
        prop_assert_eq!(decoded, Some((request_id, msg)));
        prop_assert_eq!(d.next_frame().unwrap(), None);
    }

    /// A frame delivered in arbitrarily torn chunks still decodes, and
    /// every incomplete prefix parks as `Ok(None)` — never an error,
    /// never a panic.
    #[test]
    fn torn_delivery_still_decodes(
        request_id in any::<u64>(),
        msg in message_strategy(),
        chunk in 1usize..7,
    ) {
        let bytes = encode_frame(request_id, &msg);
        let mut d = FrameDecoder::new();
        let mut out = None;
        for piece in bytes.chunks(chunk) {
            d.feed(piece);
            if let Some(frame) = d.next_frame().unwrap() {
                out = Some(frame);
            }
        }
        prop_assert_eq!(out, Some((request_id, msg)));
    }

    /// A stream of several frames back-to-back decodes in order.
    #[test]
    fn pipelined_frames_decode_in_order(
        msgs in proptest::collection::vec(message_strategy(), 1..8),
    ) {
        let mut bytes = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64, m));
        }
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        for (i, m) in msgs.iter().enumerate() {
            prop_assert_eq!(d.next_frame().unwrap(), Some((i as u64, m.clone())));
        }
        prop_assert_eq!(d.next_frame().unwrap(), None);
    }

    /// Arbitrary bytes never panic the decoder: each pull either yields a
    /// frame, parks, or fails cleanly — and once poisoned it stays
    /// poisoned.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        for _ in 0..64 {
            match d.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    // A poisoned decoder must keep failing, not revive.
                    prop_assert!(d.next_frame().is_err());
                    break;
                }
            }
        }
    }

    /// Truncating a valid frame anywhere parks the decoder (no error, no
    /// frame) — the bytes so far are always a legitimate prefix.
    #[test]
    fn truncated_prefix_parks(
        request_id in any::<u64>(),
        msg in message_strategy(),
        cut in 0usize..64,
    ) {
        let bytes = encode_frame(request_id, &msg);
        prop_assume!(cut < bytes.len());
        let mut d = FrameDecoder::new();
        d.feed(&bytes[..cut]);
        prop_assert_eq!(d.next_frame().unwrap(), None);
    }

    /// Flipping the declared length to something oversized fails cleanly.
    #[test]
    fn oversized_length_rejected(
        request_id in any::<u64>(),
        msg in message_strategy(),
        len in (MAX_FRAME_LEN as u32 + 1)..u32::MAX,
    ) {
        let mut bytes = encode_frame(request_id, &msg);
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        prop_assert!(d.next_frame().is_err());
    }
}
