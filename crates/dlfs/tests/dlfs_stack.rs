//! Full-stack tests: application → LFS → DLFS → MemFs, with DLFM and its
//! upcall daemon behind the scenes. This is the complete Figure 1
//! architecture minus the host database (dl-core adds that on top).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dl_dlfm::{
    embed_token, AccessToken, ArchiveStore, ControlMode, DlfmConfig, DlfmServer, OnUnlink,
    TokenKind, UpcallDaemon,
};
use dl_dlfs::{Dlfs, DlfsConfig, WaitPolicy};
use dl_fskit::{Clock, Cred, FileSystem, FsError, Lfs, MemFs, OpenOptions, SetAttr, SimClock};
use dl_minidb::StorageEnv;

const ALICE: Cred = Cred { uid: 100, gid: 100 };
const BOB: Cred = Cred { uid: 101, gid: 101 };

struct Stack {
    /// Application-facing logical file system (mounted over DLFS).
    lfs: Arc<Lfs>,
    /// Admin view over the raw physical file system.
    raw: Lfs,
    server: Arc<DlfmServer>,
    dlfs: Arc<Dlfs>,
    clock: Arc<SimClock>,
    _daemon: UpcallDaemon,
}

fn stack_with(dlfs_cfg: DlfsConfig, dlfm_cfg: DlfmConfig) -> Stack {
    let clock = Arc::new(SimClock::new(1_000_000));
    let fs = Arc::new(MemFs::with_clock(clock.clone()));
    let raw = Lfs::new(fs.clone() as Arc<dyn FileSystem>);
    raw.mkdir_p(&Cred::root(), "/web", 0o777).unwrap();
    raw.write_file(&ALICE, "/web/index.html", b"<html>v1</html>").unwrap();
    raw.write_file(&ALICE, "/web/plain.txt", b"not linked").unwrap();

    let server = Arc::new(
        DlfmServer::new(
            dlfm_cfg,
            fs.clone() as Arc<dyn FileSystem>,
            StorageEnv::mem(),
            Arc::new(ArchiveStore::new()),
            clock.clone(),
        )
        .unwrap(),
    );
    let (daemon, client) = UpcallDaemon::spawn(Arc::clone(&server));
    let dlfs = Arc::new(Dlfs::new(fs as Arc<dyn FileSystem>, client, dlfs_cfg));
    let lfs = Arc::new(Lfs::new(dlfs.clone() as Arc<dyn FileSystem>));
    Stack { lfs, raw, server, dlfs, clock, _daemon: daemon }
}

fn stack() -> Stack {
    stack_with(DlfsConfig::default(), DlfmConfig::new("srv1"))
}

fn link(s: &Stack, path: &str, mode: ControlMode) {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1000);
    let txid = NEXT.fetch_add(1, Ordering::Relaxed);
    s.server.link_file(txid, path, mode, true, OnUnlink::Restore).unwrap();
    s.server.prepare_host(txid).unwrap();
    s.server.commit_host(txid);
}

fn tok(s: &Stack, path: &str, kind: TokenKind) -> AccessToken {
    AccessToken::generate(
        &s.server.config().token_key,
        "srv1",
        path,
        kind,
        s.clock.now_ms() + 600_000,
    )
}

#[test]
fn unlinked_files_behave_normally_with_zero_upcalls() {
    let s = stack();
    let fd = s.lfs.open(&ALICE, "/web/plain.txt", OpenOptions::read_only()).unwrap();
    let data = s.lfs.read_to_end(fd).unwrap();
    s.lfs.close(fd).unwrap();
    assert_eq!(data, b"not linked");

    let fd = s.lfs.open(&ALICE, "/web/plain.txt", OpenOptions::write_truncate()).unwrap();
    s.lfs.write(fd, b"rewritten").unwrap();
    s.lfs.close(fd).unwrap();

    assert_eq!(s.dlfs.upcall_client().round_trip_count(), 0, "no DLFM involvement");
    assert_eq!(s.dlfs.stats.passthrough_opens.get(), 2);
}

#[test]
fn rdd_read_requires_token_in_name() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rdd);

    // Without a token the open is rejected by DLFM.
    match s.lfs.open(&ALICE, "/web/index.html", OpenOptions::read_only()) {
        Err(FsError::Rejected(msg)) => assert!(msg.contains("token"), "{msg}"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // With a token embedded in the name it succeeds, and the read flows
    // through the plain fs_read path.
    let path = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Read));
    let fd = s.lfs.open(&ALICE, &path, OpenOptions::read_only()).unwrap();
    let data = s.lfs.read_to_end(fd).unwrap();
    s.lfs.close(fd).unwrap();
    assert_eq!(data, b"<html>v1</html>");
    assert_eq!(s.dlfs.stats.token_lookups.get(), 1);
    assert_eq!(s.dlfs.stats.managed_opens.get(), 1);
}

#[test]
fn userid_keyed_token_entry_shares_across_descriptors() {
    // §4.1: once a token entry exists for a userid, all of that user's
    // opens are covered — but other users are not.
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rdd);
    let path = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Read));
    let fd = s.lfs.open(&ALICE, &path, OpenOptions::read_only()).unwrap();
    s.lfs.close(fd).unwrap();

    // Second open *without* the token, same uid: the entry admits it.
    let fd = s.lfs.open(&ALICE, "/web/index.html", OpenOptions::read_only()).unwrap();
    s.lfs.close(fd).unwrap();

    // Different uid, no token: rejected.
    assert!(matches!(
        s.lfs.open(&BOB, "/web/index.html", OpenOptions::read_only()),
        Err(FsError::Rejected(_))
    ));
}

#[test]
fn rdd_update_in_place_full_cycle() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rdd);

    let wpath = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Write));
    let fd = s.lfs.open(&ALICE, &wpath, OpenOptions::read_write()).unwrap();
    let old = s.lfs.read_to_end(fd).unwrap();
    assert_eq!(old, b"<html>v1</html>");
    s.lfs.seek(fd, 0).unwrap();
    s.lfs.write(fd, b"<html>v2 totally new</html>").unwrap();
    s.lfs.close(fd).unwrap();

    // Version bumped, metadata in repository reflects the commit.
    let entry = s.server.repository().get_file("/web/index.html").unwrap();
    assert_eq!(entry.cur_version, 2);
    s.server.archive_store().wait_archived("/web/index.html");
    assert_eq!(
        s.server.archive_store().get("/web/index.html", 2).unwrap().data,
        b"<html>v2 totally new</html>"
    );

    // Subsequent read (with read token) sees the new content.
    let rpath = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Read));
    let fd = s.lfs.open(&ALICE, &rpath, OpenOptions::read_only()).unwrap();
    assert_eq!(s.lfs.read_to_end(fd).unwrap(), b"<html>v2 totally new</html>");
    s.lfs.close(fd).unwrap();
}

#[test]
fn rfd_write_takes_slow_path_and_reads_stay_fast() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rfd);

    // Reads need no token and no upcall (rfd read = file-system control).
    let fd = s.lfs.open(&BOB, "/web/index.html", OpenOptions::read_only()).unwrap();
    assert_eq!(s.lfs.read_to_end(fd).unwrap(), b"<html>v1</html>");
    s.lfs.close(fd).unwrap();
    assert_eq!(s.dlfs.upcall_client().round_trip_count(), 0, "rfd read path: zero upcalls");

    // A write without a token fails: the physical open fails (read-only
    // file) and DLFM rejects the takeover for lack of a token entry.
    assert!(matches!(
        s.lfs.open(&ALICE, "/web/index.html", OpenOptions::write_only()),
        Err(FsError::Rejected(_))
    ));

    // With a write token: open fails physically, DLFS upcalls, DLFM takes
    // the file over, the open is retried as the DLFM identity.
    let wpath = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Write));
    let fd = s.lfs.open(&ALICE, &wpath, OpenOptions::write_truncate()).unwrap();
    s.lfs.write(fd, b"fresh content").unwrap();

    // During the update the file is taken over: plain reads fail at the FS
    // level — the implicit read/write serialization of §4.2.
    assert!(s.lfs.open(&BOB, "/web/index.html", OpenOptions::read_only()).is_err());

    s.lfs.close(fd).unwrap();

    // After close the rfd at-rest state is restored: original owner,
    // read-only; plain reads work again.
    let attr = s.raw.stat(&Cred::root(), "/web/index.html").unwrap();
    assert_eq!(attr.uid, ALICE.uid);
    assert_eq!(attr.mode, 0o444);
    let fd = s.lfs.open(&BOB, "/web/index.html", OpenOptions::read_only()).unwrap();
    assert_eq!(s.lfs.read_to_end(fd).unwrap(), b"fresh content");
    s.lfs.close(fd).unwrap();
    assert_eq!(s.server.repository().get_file("/web/index.html").unwrap().cur_version, 2);
}

#[test]
fn plain_readonly_file_write_still_fails_cleanly() {
    // A chmod 444 file that is NOT linked: the rfd fallback upcall answers
    // NotManaged and the original EACCES surfaces.
    let s = stack();
    s.raw.setattr(&ALICE, "/web/plain.txt", &SetAttr::chmod(0o444)).unwrap();
    assert_eq!(
        s.lfs.open(&ALICE, "/web/plain.txt", OpenOptions::write_only()),
        Err(FsError::AccessDenied)
    );
    assert_eq!(s.dlfs.upcall_client().round_trip_count(), 1, "one upcall to ask");
}

#[test]
fn remove_and_rename_of_linked_files_rejected() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rff);

    assert!(matches!(s.lfs.remove(&ALICE, "/web/index.html"), Err(FsError::Rejected(_))));
    assert!(matches!(
        s.lfs.rename(&ALICE, "/web/index.html", "/web/index2.html"),
        Err(FsError::Rejected(_))
    ));
    // Unlinked files remove fine.
    s.lfs.remove(&ALICE, "/web/plain.txt").unwrap();
}

#[test]
fn chmod_of_linked_file_rejected() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rfd);
    // Owner tries to re-grant themselves write permission — would bypass
    // database write control entirely.
    assert!(matches!(
        s.lfs.setattr(&ALICE, "/web/index.html", &SetAttr::chmod(0o644)),
        Err(FsError::Rejected(_))
    ));
    // Size-only changes (truncate) are not a permission bypass and follow
    // the normal FS rules (which reject them here: file is read-only).
    assert!(s.lfs.setattr(&ALICE, "/web/plain.txt", &SetAttr::chmod(0o600)).is_ok());
}

#[test]
fn write_write_blocking_across_threads() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rdd);

    let wpath = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Write));
    let fd = s.lfs.open(&ALICE, &wpath, OpenOptions::write_truncate()).unwrap();

    let lfs2 = Arc::clone(&s.lfs);
    let wpath2 = wpath.clone();
    let waiter = thread::spawn(move || {
        let fd2 = lfs2.open(&ALICE, &wpath2, OpenOptions::write_truncate()).unwrap();
        lfs2.write(fd2, b"second writer").unwrap();
        lfs2.close(fd2).unwrap();
    });
    thread::sleep(Duration::from_millis(50));
    assert!(!waiter.is_finished(), "second writer must block at open");

    s.lfs.write(fd, b"first writer").unwrap();
    s.lfs.close(fd).unwrap();
    s.server.archive_store().wait_archived("/web/index.html");
    waiter.join().unwrap();

    assert_eq!(
        s.server.repository().get_file("/web/index.html").unwrap().cur_version,
        3,
        "both updates committed, serially"
    );
    assert_eq!(s.raw.read_file(&Cred::root(), "/web/index.html").unwrap(), b"second writer");
}

#[test]
fn fail_policy_returns_busy_instead_of_blocking() {
    let s = stack_with(
        DlfsConfig { wait_policy: WaitPolicy::Fail, strict: false },
        DlfmConfig::new("srv1"),
    );
    link(&s, "/web/index.html", ControlMode::Rdd);
    let wpath = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Write));
    let fd = s.lfs.open(&ALICE, &wpath, OpenOptions::read_write()).unwrap();
    assert_eq!(s.lfs.open(&ALICE, &wpath, OpenOptions::read_write()), Err(FsError::Busy));
    s.lfs.close(fd).unwrap();
}

#[test]
fn aborted_update_restores_content_via_recovery_path() {
    // Crash while a write is in flight; recovery restores v1.
    let clock = Arc::new(SimClock::new(1_000_000));
    let fs = Arc::new(MemFs::with_clock(clock.clone()));
    let raw = Lfs::new(fs.clone() as Arc<dyn FileSystem>);
    raw.mkdir_p(&Cred::root(), "/web", 0o777).unwrap();
    raw.write_file(&ALICE, "/web/a.html", b"stable").unwrap();
    let repo_env = StorageEnv::mem();
    let archive = Arc::new(ArchiveStore::new());
    let server = Arc::new(
        DlfmServer::new(
            DlfmConfig::new("srv1"),
            fs.clone() as Arc<dyn FileSystem>,
            repo_env.clone(),
            Arc::clone(&archive),
            clock.clone(),
        )
        .unwrap(),
    );
    let (daemon, client) = UpcallDaemon::spawn(Arc::clone(&server));
    let dlfs =
        Arc::new(Dlfs::new(fs.clone() as Arc<dyn FileSystem>, client, DlfsConfig::default()));
    let lfs = Lfs::new(dlfs.clone() as Arc<dyn FileSystem>);

    server.link_file(1, "/web/a.html", ControlMode::Rdd, true, OnUnlink::Restore).unwrap();
    server.prepare_host(1).unwrap();
    server.commit_host(1);

    let token = AccessToken::generate(
        &server.config().token_key,
        "srv1",
        "/web/a.html",
        TokenKind::Write,
        clock.now_ms() + 600_000,
    );
    let wpath = embed_token("/web/a.html", &token);
    let fd = lfs.open(&ALICE, &wpath, OpenOptions::write_truncate()).unwrap();
    lfs.write(fd, b"torn write").unwrap();
    // CRASH: never close. Drop the stack, keep fs/repo/archive.
    server.simulate_crash();
    drop((lfs, dlfs, daemon));
    let cfg = server.config().clone();
    drop(server);

    let server2 = Arc::new(
        DlfmServer::new(cfg, fs.clone() as Arc<dyn FileSystem>, repo_env, archive, clock).unwrap(),
    );
    let report = server2.recover().unwrap();
    assert_eq!(report.updates_rolled_back, 1);
    assert_eq!(raw.read_file(&Cred::root(), "/web/a.html").unwrap(), b"stable");
}

#[test]
fn strict_mode_blocks_link_of_open_file() {
    let mut dlfm_cfg = DlfmConfig::new("srv1");
    dlfm_cfg.strict_link = true;
    let s = stack_with(DlfsConfig { wait_policy: WaitPolicy::Block, strict: true }, dlfm_cfg);

    // An application holds plain.txt open (unlinked, plain read).
    let fd = s.lfs.open(&ALICE, "/web/plain.txt", OpenOptions::read_only()).unwrap();

    // Linking it now fails — the §4.5 window is closed.
    let err = s
        .server
        .link_file(50, "/web/plain.txt", ControlMode::Rdd, true, OnUnlink::Restore)
        .unwrap_err();
    assert!(err.contains("open"), "{err}");
    s.server.abort_host(50);

    // After close, linking succeeds.
    s.lfs.close(fd).unwrap();
    s.server.link_file(51, "/web/plain.txt", ControlMode::Rdd, true, OnUnlink::Restore).unwrap();
    s.server.prepare_host(51).unwrap();
    s.server.commit_host(51);
}

#[test]
fn non_strict_mode_has_the_link_window() {
    // The paper's documented limitation: "a link transaction can succeed
    // even when the file is currently open by other applications" (§4.5).
    let s = stack();
    let fd = s.lfs.open(&ALICE, "/web/plain.txt", OpenOptions::read_only()).unwrap();
    s.server.link_file(60, "/web/plain.txt", ControlMode::Rdd, true, OnUnlink::Restore).unwrap();
    s.server.prepare_host(60).unwrap();
    s.server.commit_host(60);
    // The reader still holds a descriptor to a now-fully-controlled file.
    assert!(s.server.repository().get_file("/web/plain.txt").is_some());
    s.lfs.close(fd).unwrap();
}

#[test]
fn expired_token_rejected_at_lookup_time() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rdd);
    let stale = AccessToken::generate(
        &s.server.config().token_key,
        "srv1",
        "/web/index.html",
        TokenKind::Read,
        s.clock.now_ms(),
    );
    s.clock.advance(10_000);
    let path = embed_token("/web/index.html", &stale);
    match s.lfs.open(&ALICE, &path, OpenOptions::read_only()) {
        Err(FsError::Rejected(msg)) => assert!(msg.contains("expired"), "{msg}"),
        other => panic!("expected expiry rejection, got {other:?}"),
    }
}

#[test]
fn forged_token_rejected() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rdd);
    let forged = AccessToken::generate(
        b"not the real key",
        "srv1",
        "/web/index.html",
        TokenKind::Write,
        u64::MAX,
    );
    let path = embed_token("/web/index.html", &forged);
    assert!(matches!(
        s.lfs.open(&ALICE, &path, OpenOptions::read_write()),
        Err(FsError::Rejected(_))
    ));
}

#[test]
fn many_concurrent_readers_on_rdd_file() {
    let s = stack();
    link(&s, "/web/index.html", ControlMode::Rdd);
    let rpath = embed_token("/web/index.html", &tok(&s, "/web/index.html", TokenKind::Read));

    // Prime the token entry once.
    let fd = s.lfs.open(&ALICE, &rpath, OpenOptions::read_only()).unwrap();
    s.lfs.close(fd).unwrap();

    let mut handles = Vec::new();
    for _ in 0..8 {
        let lfs = Arc::clone(&s.lfs);
        handles.push(thread::spawn(move || {
            let fd = lfs.open(&ALICE, "/web/index.html", OpenOptions::read_only()).unwrap();
            let data = lfs.read_to_end(fd).unwrap();
            lfs.close(fd).unwrap();
            data
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), b"<html>v1</html>");
    }
    assert!(s.server.repository().sync_entries("/web/index.html").is_empty());
}
