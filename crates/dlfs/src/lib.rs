//! DataLinks File System (DLFS) — the interposition layer.
//!
//! §2.3 of the paper: "DataLinks File System is implemented as a virtual
//! file system (VFS) layer between the logical file system (LFS) and the
//! underlying physical file system. ... DLFS intercepts calls such as
//! fs_open(), fs_close(), fs_remove(), fs_rename() and fs_lookup() made by
//! LFS to the underlying file system."
//!
//! [`Dlfs`] wraps any inner [`FileSystem`] and implements the paper's
//! interception protocol:
//!
//! * **`fs_lookup`** — strips a `;dltoken=` suffix from the final name
//!   component, validates it through an upcall (creating a userid-keyed
//!   token entry at DLFM, §4.1), then delegates the lookup of the real name.
//! * **`fs_open`** — the §4.2 decision tree. A file owned by the DLFM uid is
//!   under *full database control*, so every open upcalls for approval
//!   (serialized via the Sync table). Any other file opens straight through
//!   for reads — the zero-upcall read path the paper optimizes for — while a
//!   *failed* write open falls back to an upcall that may take the file
//!   over (the rfd slow path: "DLFS contacts DLFM through an upcall only if
//!   the fs_open() entry point of the file system fails").
//! * **`fs_close`** — reports the `written` flag plus fresh size/mtime so
//!   DLFM can refresh metadata in the same transaction context (§4.3) and
//!   trigger archiving (§4.4).
//! * **`fs_remove` / `fs_rename` / `fs_setattr`** — vetoed for linked files
//!   with referential integrity (no dangling DATALINKs, §2.3; no permission
//!   changes that would bypass database access control).
//! * **`fs_read` / `fs_write`** — pass straight through: "DataLinks ...
//!   is only involved in open and close of the file and does not interfere
//!   in read/write accesses" (§1).
//!
//! Per the paper's portability goal (§2.4), DLFS keeps *no persistent
//! DataLinks state of its own* — only a volatile ino→path cache (the moral
//! equivalent of the dentry cache); everything durable lives at DLFM.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dl_dlfm::{OpenDecision, TokenKind, UpcallClient, UpcallTransport};
use dl_fskit::flock::{LockOp, LockOwner};
use dl_fskit::{path as fspath, FileSystem};
use dl_fskit::{Cred, DirEntry, FileAttr, FileKind, FsError, FsResult, Ino, OpenFlags, SetAttr};
use parking_lot::{Mutex, RwLock};

/// What to do when DLFM answers `Busy` (conflicting open or in-flight
/// archive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Block until the conflict clears (lock semantics, the default).
    Block,
    /// Fail the open with `FsError::Busy`.
    Fail,
}

/// DLFS configuration.
#[derive(Debug, Clone, Copy)]
pub struct DlfsConfig {
    pub wait_policy: WaitPolicy,
    /// Register *every* open with DLFM so link can detect open files —
    /// closes the §4.5 "window of inconsistency" at a per-open cost
    /// (the paper's future-work extension, implemented as an ablation).
    pub strict: bool,
}

impl Default for DlfsConfig {
    fn default() -> Self {
        DlfsConfig { wait_policy: WaitPolicy::Block, strict: false }
    }
}

/// Operation counters (benchmarks and the telemetry registry read these).
#[derive(Debug, Default)]
pub struct DlfsStats {
    /// Opens that bypassed DLFM entirely.
    pub passthrough_opens: dl_obs::Counter,
    /// Opens approved by DLFM (managed path).
    pub managed_opens: dl_obs::Counter,
    /// Busy retries performed.
    pub busy_waits: dl_obs::Counter,
    /// Token suffixes found and validated during lookup.
    pub token_lookups: dl_obs::Counter,
}

struct OpenInstance {
    opener: u64,
    /// Managed by DLFM (close must upcall) or plain pass-through.
    managed: bool,
    /// strict-mode registration to undo at close.
    registered: bool,
}

/// The DLFS layer. Mount it in front of the physical file system by
/// constructing the application-facing `Lfs` over it.
pub struct Dlfs {
    inner: Arc<dyn FileSystem>,
    upcall: Arc<dyn UpcallTransport>,
    cfg: DlfsConfig,
    /// ino → absolute path (volatile dentry-style cache).
    paths: RwLock<HashMap<Ino, String>>,
    /// Open instances keyed by (ino, is_write).
    opens: Mutex<HashMap<(Ino, bool), Vec<OpenInstance>>>,
    next_opener: AtomicU64,
    pub stats: DlfsStats,
}

const ROOT: Cred = Cred::root();

impl Dlfs {
    /// Wraps `inner`, talking to DLFM through an in-process `upcall`
    /// channel client. Shorthand for [`Dlfs::with_transport`] with the
    /// local transport — the common single-node construction.
    pub fn new(inner: Arc<dyn FileSystem>, upcall: UpcallClient, cfg: DlfsConfig) -> Dlfs {
        Dlfs::with_transport(inner, Arc::new(upcall), cfg)
    }

    /// Wraps `inner`, talking to DLFM through any [`UpcallTransport`] —
    /// the in-process channel client or a wire connection. DLFS itself is
    /// transport-blind; every interception below speaks the trait.
    pub fn with_transport(
        inner: Arc<dyn FileSystem>,
        upcall: Arc<dyn UpcallTransport>,
        cfg: DlfsConfig,
    ) -> Dlfs {
        let mut paths = HashMap::new();
        paths.insert(inner.root(), "/".to_string());
        Dlfs {
            inner,
            upcall,
            cfg,
            paths: RwLock::new(paths),
            opens: Mutex::new(HashMap::new()),
            next_opener: AtomicU64::new(1),
            stats: DlfsStats::default(),
        }
    }

    /// The upcall transport (benches inspect its round-trip counter).
    pub fn upcall_client(&self) -> &Arc<dyn UpcallTransport> {
        &self.upcall
    }

    fn path_of(&self, ino: Ino) -> FsResult<String> {
        self.paths
            .read()
            .get(&ino)
            .cloned()
            .ok_or_else(|| FsError::Io(format!("dlfs: no cached path for inode {ino}")))
    }

    fn cache_path(&self, ino: Ino, path: String) {
        self.paths.write().insert(ino, path);
    }

    fn new_opener(&self) -> u64 {
        self.next_opener.fetch_add(1, Ordering::Relaxed)
    }

    fn record_open(&self, ino: Ino, write: bool, inst: OpenInstance) {
        self.opens.lock().entry((ino, write)).or_default().push(inst);
    }

    fn pop_open(&self, ino: Ino, write: bool) -> Option<OpenInstance> {
        let mut opens = self.opens.lock();
        let list = opens.get_mut(&(ino, write))?;
        let inst = list.pop();
        if list.is_empty() {
            opens.remove(&(ino, write));
        }
        inst
    }

    /// Runs the DLFM open check with the configured wait policy.
    fn checked_open(
        &self,
        path: &str,
        cred: &Cred,
        wanted: TokenKind,
        opener: u64,
    ) -> FsResult<OpenDecision> {
        loop {
            let epoch = self.upcall.epoch();
            match self.upcall.open_check(path, cred.uid, wanted, opener) {
                OpenDecision::Busy => match self.cfg.wait_policy {
                    WaitPolicy::Fail => return Err(FsError::Busy),
                    WaitPolicy::Block => {
                        self.stats.busy_waits.inc();
                        self.upcall.wait_epoch_change(epoch);
                    }
                },
                decision => return Ok(decision),
            }
        }
    }
}

impl FileSystem for Dlfs {
    fn root(&self) -> Ino {
        self.inner.root()
    }

    fn fs_lookup(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<Ino> {
        let (real_name, token) = dl_dlfm::split_token_suffix(name);
        let parent_path = self.path_of(parent)?;
        let full_path = fspath::join(&parent_path, real_name);

        if let Some(token_str) = token {
            self.stats.token_lookups.inc();
            self.upcall
                .validate_token(&full_path, token_str, cred.uid)
                .map_err(FsError::Rejected)?;
        }

        let ino = self.inner.fs_lookup(cred, parent, real_name)?;
        self.cache_path(ino, full_path);
        Ok(ino)
    }

    fn fs_getattr(&self, cred: &Cred, ino: Ino) -> FsResult<FileAttr> {
        self.inner.fs_getattr(cred, ino)
    }

    fn fs_setattr(&self, cred: &Cred, ino: Ino, set: &SetAttr) -> FsResult<FileAttr> {
        // Changing permissions or ownership of a linked file would bypass
        // database access control; veto like remove/rename.
        if set.mode.is_some() || set.uid.is_some() || set.gid.is_some() {
            let path = self.path_of(ino)?;
            self.upcall.mutation_check(&path).map_err(FsError::Rejected)?;
        }
        self.inner.fs_setattr(cred, ino, set)
    }

    fn fs_create(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        let parent_path = self.path_of(parent)?;
        let ino = self.inner.fs_create(cred, parent, name, mode)?;
        self.cache_path(ino, fspath::join(&parent_path, name));
        Ok(ino)
    }

    fn fs_mkdir(&self, cred: &Cred, parent: Ino, name: &str, mode: u16) -> FsResult<Ino> {
        let parent_path = self.path_of(parent)?;
        let ino = self.inner.fs_mkdir(cred, parent, name, mode)?;
        self.cache_path(ino, fspath::join(&parent_path, name));
        Ok(ino)
    }

    fn fs_open(&self, cred: &Cred, ino: Ino, flags: OpenFlags) -> FsResult<()> {
        let attr = self.inner.fs_getattr(&ROOT, ino)?;
        if attr.kind == FileKind::Dir {
            return self.inner.fs_open(cred, ino, flags);
        }
        let wants_write = flags.wants_write();
        let path = self.path_of(ino)?;

        // Full database control is recognizable locally by ownership
        // (§4.2: "which can be ascertained by examining the ownership of
        // the file") — no upcall needed to make that determination.
        if attr.uid == self.upcall.dlfm_uid() && cred.uid != attr.uid && !cred.is_root() {
            let wanted = if wants_write { TokenKind::Write } else { TokenKind::Read };
            let opener = self.new_opener();
            return match self.checked_open(&path, cred, wanted, opener)? {
                OpenDecision::Approved { open_as } => {
                    self.inner.fs_open(&open_as, ino, flags)?;
                    self.stats.managed_opens.inc();
                    self.record_open(
                        ino,
                        wants_write,
                        OpenInstance { opener, managed: true, registered: false },
                    );
                    Ok(())
                }
                OpenDecision::NotManaged => {
                    // A file that *happens* to be owned by the DLFM uid but
                    // is not linked (or is linked with FS-controlled
                    // access): ordinary permission rules apply. When the
                    // *server* runs strict-link, its open-check already
                    // registered this open (its NotManaged arms), so
                    // either the close must unregister it — record the
                    // instance — or, if the physical open fails and no
                    // close will ever come, the registration must be
                    // undone here; leaking it would block link of the path
                    // forever. Keyed on the server's flag, not this
                    // layer's `strict`: the registration to balance is the
                    // server's, and the two knobs are independent.
                    let server_strict = self.upcall.strict_link();
                    match self.inner.fs_open(cred, ino, flags) {
                        Ok(()) => {
                            if server_strict {
                                self.record_open(
                                    ino,
                                    wants_write,
                                    OpenInstance { opener, managed: false, registered: true },
                                );
                            }
                            Ok(())
                        }
                        Err(e) => {
                            if server_strict {
                                self.upcall.unregister_open(&path, opener);
                            }
                            Err(e)
                        }
                    }
                }
                OpenDecision::Rejected(msg) => Err(FsError::Rejected(msg)),
                OpenDecision::Busy => unreachable!("handled by checked_open"),
            };
        }

        // Not under full control. Reads go straight through — the paper's
        // fast path: no upcall, no lock (§4.2).
        if !wants_write {
            self.inner.fs_open(cred, ino, flags)?;
            self.stats.passthrough_opens.inc();
            if self.cfg.strict {
                let opener = self.new_opener();
                self.upcall.register_open(&path, cred.uid, opener);
                self.record_open(
                    ino,
                    false,
                    OpenInstance { opener, managed: false, registered: true },
                );
            }
            return Ok(());
        }

        // Write open: optimistically try the physical open; only a failure
        // triggers the upcall (§4.2's rfd protocol).
        match self.inner.fs_open(cred, ino, flags) {
            Ok(()) => {
                self.stats.passthrough_opens.inc();
                if self.cfg.strict {
                    let opener = self.new_opener();
                    self.upcall.register_open(&path, cred.uid, opener);
                    self.record_open(
                        ino,
                        true,
                        OpenInstance { opener, managed: false, registered: true },
                    );
                }
                Ok(())
            }
            Err(FsError::AccessDenied) => {
                let opener = self.new_opener();
                match self.checked_open(&path, cred, TokenKind::Write, opener)? {
                    OpenDecision::Approved { open_as } => {
                        self.inner.fs_open(&open_as, ino, flags)?;
                        self.stats.managed_opens.inc();
                        self.record_open(
                            ino,
                            true,
                            OpenInstance { opener, managed: true, registered: false },
                        );
                        Ok(())
                    }
                    // Plain read-only file, not linked: surface the original
                    // error. The open failed, so no close will follow —
                    // undo the registration a strict-link server's
                    // open-check made (server flag, same reasoning as the
                    // full-control NotManaged arm above).
                    OpenDecision::NotManaged => {
                        if self.upcall.strict_link() {
                            self.upcall.unregister_open(&path, opener);
                        }
                        Err(FsError::AccessDenied)
                    }
                    OpenDecision::Rejected(msg) => Err(FsError::Rejected(msg)),
                    OpenDecision::Busy => unreachable!("handled by checked_open"),
                }
            }
            Err(e) => Err(e),
        }
    }

    fn fs_close(&self, cred: &Cred, ino: Ino, flags: OpenFlags, written: bool) -> FsResult<()> {
        let wants_write = flags.wants_write();
        if let Some(inst) = self.pop_open(ino, wants_write) {
            let path = self.path_of(ino)?;
            if inst.managed {
                let attr = self.inner.fs_getattr(&ROOT, ino)?;
                self.upcall
                    .close_notify(&path, inst.opener, written, attr.size, attr.mtime)
                    .map_err(FsError::Rejected)?;
            } else if inst.registered {
                self.upcall.unregister_open(&path, inst.opener);
            }
        }
        self.inner.fs_close(cred, ino, flags, written)
    }

    fn fs_read(&self, cred: &Cred, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        // Never intercepted (§1: DataLinks "does not interfere in
        // read/write accesses").
        self.inner.fs_read(cred, ino, offset, buf)
    }

    fn fs_write(&self, cred: &Cred, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.inner.fs_write(cred, ino, offset, data)
    }

    fn fs_remove(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        let parent_path = self.path_of(parent)?;
        let path = fspath::join(&parent_path, name);
        // No dangling DATALINKs (§2.3).
        self.upcall.mutation_check(&path).map_err(FsError::Rejected)?;
        self.inner.fs_remove(cred, parent, name)
    }

    fn fs_rmdir(&self, cred: &Cred, parent: Ino, name: &str) -> FsResult<()> {
        self.inner.fs_rmdir(cred, parent, name)
    }

    fn fs_rename(
        &self,
        cred: &Cred,
        parent: Ino,
        name: &str,
        new_parent: Ino,
        new_name: &str,
    ) -> FsResult<()> {
        let parent_path = self.path_of(parent)?;
        let path = fspath::join(&parent_path, name);
        self.upcall.mutation_check(&path).map_err(FsError::Rejected)?;
        self.inner.fs_rename(cred, parent, name, new_parent, new_name)?;
        // Refresh the dentry cache.
        let new_parent_path = self.path_of(new_parent)?;
        if let Ok(ino) = self.inner.fs_lookup(&ROOT, new_parent, new_name) {
            self.cache_path(ino, fspath::join(&new_parent_path, new_name));
        }
        Ok(())
    }

    fn fs_readdir(&self, cred: &Cred, ino: Ino) -> FsResult<Vec<DirEntry>> {
        self.inner.fs_readdir(cred, ino)
    }

    fn fs_lockctl(&self, cred: &Cred, ino: Ino, owner: LockOwner, op: LockOp) -> FsResult<bool> {
        self.inner.fs_lockctl(cred, ino, owner, op)
    }
}
