//! Scenario schema: the declarative surface of the lab.
//!
//! A scenario file is JSONL. The first line is the scenario header; every
//! following non-blank line is one variant (one table row / trial group):
//!
//! ```text
//! {"scenario":"a10","kind":"replication","seed":7,"params":{"readers":8},
//!  "quick":{"readers":4},"assert":["max_lag == 0"]}
//! {"variant":"0","params":{"replicas":0}}
//! {"variant":"2","params":{"replicas":2}}
//! ```
//!
//! Every field is checked here — unknown knobs, wrong types, out-of-range
//! values, duplicate keys and duplicate variant labels are all rejected
//! with a `file:line:` prefix so a broken scenario reads like a compiler
//! error, not a stack trace in the middle of a bench run.

use std::fmt;

use crate::json::{self, Value};

/// A schema failure, pinned to the scenario file line that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError {
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.msg)
    }
}

impl std::error::Error for SchemaError {}

/// Which engine loop drives the scenario's trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Bare-DB vs full-stack commit throughput sweep (the a9 shape).
    CommitThroughput,
    /// Replica read routing, lag drain and failover (the a10 shape).
    Replication,
    /// WAL retention budgets and delta catch-up (the a11 shape).
    CheckpointShipping,
    /// Upcall-pool burst and agent-churn front end (the a12 shape).
    FrontEnd,
    /// The generic client-mix engine with fault injection points.
    Mixed,
    /// Write-cycle scale-out across DLFM namespace shards (the a13 shape).
    Sharding,
    /// Connection churn over real sockets against the wire front end,
    /// with mid-2PC connection severing (the a14 shape).
    WireFrontEnd,
}

impl Kind {
    fn parse(s: &str) -> Option<Kind> {
        Some(match s {
            "commit_throughput" => Kind::CommitThroughput,
            "replication" => Kind::Replication,
            "checkpoint_shipping" => Kind::CheckpointShipping,
            "front_end" => Kind::FrontEnd,
            "mixed" => Kind::Mixed,
            "sharding" => Kind::Sharding,
            "wire_front_end" => Kind::WireFrontEnd,
            _ => return None,
        })
    }

    /// The scenario-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kind::CommitThroughput => "commit_throughput",
            Kind::Replication => "replication",
            Kind::CheckpointShipping => "checkpoint_shipping",
            Kind::FrontEnd => "front_end",
            Kind::Mixed => "mixed",
            Kind::Sharding => "sharding",
            Kind::WireFrontEnd => "wire_front_end",
        }
    }
}

/// How the generic engine routes its reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadRoute {
    /// Token-gated open/read/close on the primary (no replicas involved).
    #[default]
    Managed,
    /// `serve_read`: round-robin over standbys with primary fallback.
    Routed,
    /// `serve_read_fresh` with a freshness token (read-your-writes).
    Fresh,
}

/// A fault injected at a global operation boundary of a mixed trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// The cumulative op count at which the fault fires (0 = before any op).
    pub at_op: u64,
    pub action: InjectAction,
}

/// The fault to inject.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectAction {
    /// Crash the primary DLFM node and fail over to a promoted standby.
    CrashPrimary,
    /// Pause WAL shipping to the standbys (they start lagging).
    StallStandby,
    /// Resume WAL shipping after a [`InjectAction::StallStandby`].
    ResumeStandby,
    /// Make the next `count` admission upcalls panic inside the pool worker.
    KillUpcallWorkers { count: u64 },
    /// Crash the host database (the 2PC coordinator) and fail over to a
    /// promoted host standby, exercising the fenced outage window.
    CrashHost,
    /// Inject a disk-full fault: the next `writes` writes against the
    /// targeted storage environment fail with ENOSPC, then the disk
    /// "frees up" and writes succeed again. `host` targets the host
    /// database's environment (the coordinator's WAL); the default
    /// targets the primary DLFM repository.
    DiskEnospc { writes: u64, host: bool },
    /// Arm a torn tail on the *host* WAL covering exactly the next
    /// commit, then crash and recover the whole system: the commit the
    /// live process believed durable is sheared off at the crash
    /// boundary and recovery must lose exactly that one.
    TornHostWal,
    /// Sever `count` live wire connections mid-flight (socket transport
    /// only): in-doubt transactions on the dropped connections must
    /// resolve by presumed abort with no atomicity violation.
    SeverConnections { count: u64 },
}

/// The knob set a scenario (and each variant) may override. All fields are
/// optional at the schema level; each [`Kind`]'s driver demands the ones it
/// needs from the merged per-trial view and defaults the rest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Params {
    pub threads: Option<u64>,
    pub shards: Option<u64>,
    pub commits: Option<u64>,
    pub cycles: Option<u64>,
    pub sync_latency_us: Option<u64>,
    pub replicas: Option<u64>,
    pub host_replicas: Option<u64>,
    pub readers: Option<u64>,
    pub reads_per: Option<u64>,
    pub n_files: Option<u64>,
    pub file_size: Option<u64>,
    pub updates: Option<u64>,
    pub budget: Option<u64>,
    pub delta: Option<bool>,
    pub clients: Option<u64>,
    pub agents: Option<u64>,
    pub pool_min: Option<u64>,
    pub pool_max: Option<u64>,
    pub thread_per_agent: Option<bool>,
    pub ops: Option<u64>,
    pub write_ratio: Option<f64>,
    pub churn_ratio: Option<f64>,
    pub read_route: Option<ReadRoute>,
    pub injections: Option<Vec<Injection>>,
}

impl Params {
    /// `other`'s set fields override `self`'s.
    pub fn overridden_by(&self, other: &Params) -> Params {
        macro_rules! pick {
            ($($f:ident),+ $(,)?) => {
                Params { $($f: other.$f.clone().or_else(|| self.$f.clone()),)+ }
            };
        }
        pick!(
            threads,
            shards,
            commits,
            cycles,
            sync_latency_us,
            replicas,
            host_replicas,
            readers,
            reads_per,
            n_files,
            file_size,
            updates,
            budget,
            delta,
            clients,
            agents,
            pool_min,
            pool_max,
            thread_per_agent,
            ops,
            write_ratio,
            churn_ratio,
            read_route,
            injections,
        )
    }
}

/// One variant line: a row label plus its knob overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// The row label — also the `report --compare` row key, verbatim.
    pub label: String,
    pub params: Params,
    /// Source line in the scenario file (for error reporting).
    pub line: usize,
}

/// A comparison operator in an assertion predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Le,
    Ge,
    Lt,
    Gt,
    Eq,
}

impl CmpOp {
    fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "<=" => CmpOp::Le,
            ">=" => CmpOp::Ge,
            "<" => CmpOp::Lt,
            ">" => CmpOp::Gt,
            "==" => CmpOp::Eq,
            _ => return None,
        })
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Eq => "==",
        }
    }
}

/// An assertion declared in the scenario: `metric op number`, e.g.
/// `"throughput_ratio >= 1.6"` or `"max_os_threads < 64"`. Evaluated
/// against the metric map the scenario's driver emits; naming a metric the
/// driver never produced is an error, not a silent pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub metric: String,
    pub op: CmpOp,
    pub value: f64,
}

impl Predicate {
    /// Parses `metric op number` (whitespace-separated).
    pub fn parse(text: &str) -> Result<Predicate, String> {
        let parts: Vec<&str> = text.split_whitespace().collect();
        let [metric, op, value] = parts.as_slice() else {
            return Err(format!(
                "predicate {text:?} must be `metric op number` (e.g. \"failover_ms <= 500\")"
            ));
        };
        let op = CmpOp::parse(op)
            .ok_or_else(|| format!("predicate {text:?}: unknown operator {op:?}"))?;
        let value = value
            .parse::<f64>()
            .map_err(|_| format!("predicate {text:?}: {value:?} is not a number"))?;
        if !metric.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("predicate {text:?}: metric names are [a-z0-9_]"));
        }
        Ok(Predicate { metric: metric.to_string(), op, value })
    }

    /// Checks the predicate against a measured metric value.
    pub fn holds(&self, measured: f64) -> bool {
        match self.op {
            CmpOp::Le => measured <= self.value,
            CmpOp::Ge => measured >= self.value,
            CmpOp::Lt => measured < self.value,
            CmpOp::Gt => measured > self.value,
            CmpOp::Eq => measured == self.value,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.metric, self.op.as_str(), self.value)
    }
}

/// A fully parsed scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario id: becomes the table id and the `BENCH_<id>.json` name.
    pub name: String,
    pub kind: Kind,
    /// Optional human title override; drivers synthesize one otherwise.
    pub title: Option<String>,
    /// Root of every trial seed (see [`crate::plan`]).
    pub seed: u64,
    /// Trials per variant (results are averaged into the row).
    pub repeats: u64,
    /// Scenario-wide knob defaults.
    pub params: Params,
    /// Overrides applied (last) when the lab runs in `--quick` mode.
    pub quick: Params,
    pub variants: Vec<Variant>,
    pub asserts: Vec<Predicate>,
    pub notes: Vec<String>,
    /// The file the scenario came from (error messages, provenance).
    pub file: String,
}

fn err(file: &str, line: usize, msg: impl Into<String>) -> SchemaError {
    SchemaError { file: file.to_string(), line, msg: msg.into() }
}

/// Parses one scenario from JSONL text. `file` is used only for error
/// messages and provenance — pass the path the text came from.
pub fn parse_scenario(file: &str, text: &str) -> Result<Scenario, SchemaError> {
    let mut lines =
        text.lines().enumerate().map(|(i, l)| (i + 1, l)).filter(|(_, l)| !l.trim().is_empty());

    let (header_line, header_text) =
        lines.next().ok_or_else(|| err(file, 1, "empty scenario file"))?;
    let header = json::parse(header_text)
        .map_err(|e| err(file, header_line, format!("invalid JSON: {e}")))?;
    let mut sc = parse_header(file, header_line, &header)?;

    for (line, text) in lines {
        let v = json::parse(text).map_err(|e| err(file, line, format!("invalid JSON: {e}")))?;
        let variant = parse_variant(file, line, &v)?;
        if sc.variants.iter().any(|existing| existing.label == variant.label) {
            return Err(err(
                file,
                line,
                format!(
                    "duplicate variant label {:?} — labels are `--compare` row keys and must be unique",
                    variant.label
                ),
            ));
        }
        sc.variants.push(variant);
    }
    if sc.variants.is_empty() {
        return Err(err(file, header_line, "scenario has no variants (need at least one row)"));
    }
    Ok(sc)
}

/// Checks an object for duplicate keys.
fn reject_duplicates(
    file: &str,
    line: usize,
    obj: &[(String, Value)],
    what: &str,
) -> Result<(), SchemaError> {
    for (i, (k, _)) in obj.iter().enumerate() {
        if obj[..i].iter().any(|(prev, _)| prev == k) {
            return Err(err(file, line, format!("duplicate key {k:?} in {what}")));
        }
    }
    Ok(())
}

fn parse_header(file: &str, line: usize, v: &Value) -> Result<Scenario, SchemaError> {
    let obj = v.as_obj().ok_or_else(|| {
        err(file, line, format!("scenario header must be an object, got {}", v.type_name()))
    })?;
    reject_duplicates(file, line, obj, "scenario header")?;

    let mut name = None;
    let mut kind = None;
    let mut title = None;
    let mut seed = None;
    let mut repeats = 1u64;
    let mut params = Params::default();
    let mut quick = Params::default();
    let mut asserts = Vec::new();
    let mut notes = Vec::new();

    for (key, val) in obj {
        match key.as_str() {
            "scenario" => {
                let s = expect_str(file, line, key, val)?;
                if s.is_empty()
                    || !s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                {
                    return Err(err(
                        file,
                        line,
                        format!("scenario name {s:?} must be non-empty [a-z0-9_] (it names BENCH_<id>.json)"),
                    ));
                }
                name = Some(s.to_string());
            }
            "kind" => {
                let s = expect_str(file, line, key, val)?;
                kind = Some(Kind::parse(s).ok_or_else(|| {
                    err(
                        file,
                        line,
                        format!(
                            "unknown kind {s:?} (expected commit_throughput, replication, checkpoint_shipping, front_end, mixed, sharding or wire_front_end)"
                        ),
                    )
                })?);
            }
            "title" => title = Some(expect_str(file, line, key, val)?.to_string()),
            "seed" => seed = Some(expect_u64(file, line, key, val, 0, u64::MAX)?),
            "repeats" => repeats = expect_u64(file, line, key, val, 1, 100)?,
            "params" => params = parse_params(file, line, val)?,
            "quick" => quick = parse_params(file, line, val)?,
            "assert" => {
                let arr = val.as_arr().ok_or_else(|| {
                    err(
                        file,
                        line,
                        format!("\"assert\" must be an array of strings, got {}", val.type_name()),
                    )
                })?;
                for item in arr {
                    let text = item.as_str().ok_or_else(|| {
                        err(
                            file,
                            line,
                            format!("\"assert\" entries must be strings, got {}", item.type_name()),
                        )
                    })?;
                    asserts.push(Predicate::parse(text).map_err(|e| err(file, line, e))?);
                }
            }
            "notes" => {
                let arr = val.as_arr().ok_or_else(|| {
                    err(
                        file,
                        line,
                        format!("\"notes\" must be an array of strings, got {}", val.type_name()),
                    )
                })?;
                for item in arr {
                    let text = item.as_str().ok_or_else(|| {
                        err(
                            file,
                            line,
                            format!("\"notes\" entries must be strings, got {}", item.type_name()),
                        )
                    })?;
                    notes.push(text.to_string());
                }
            }
            other => {
                return Err(err(file, line, format!("unknown scenario field {other:?}")));
            }
        }
    }

    Ok(Scenario {
        name: name.ok_or_else(|| err(file, line, "scenario header is missing \"scenario\""))?,
        kind: kind.ok_or_else(|| err(file, line, "scenario header is missing \"kind\""))?,
        title,
        seed: seed.ok_or_else(|| {
            err(file, line, "scenario header is missing \"seed\" (trials must be reproducible)")
        })?,
        repeats,
        params,
        quick,
        variants: Vec::new(),
        asserts,
        notes,
        file: file.to_string(),
    })
}

fn parse_variant(file: &str, line: usize, v: &Value) -> Result<Variant, SchemaError> {
    let obj = v.as_obj().ok_or_else(|| {
        err(file, line, format!("variant line must be an object, got {}", v.type_name()))
    })?;
    reject_duplicates(file, line, obj, "variant")?;
    let mut label = None;
    let mut params = Params::default();
    for (key, val) in obj {
        match key.as_str() {
            "variant" => {
                let s = expect_str(file, line, key, val)?;
                if s.is_empty() {
                    return Err(err(file, line, "variant label must be non-empty"));
                }
                label = Some(s.to_string());
            }
            "params" => params = parse_params(file, line, val)?,
            other => {
                return Err(err(
                    file,
                    line,
                    format!(
                        "unknown variant field {other:?} (expected \"variant\" and \"params\")"
                    ),
                ));
            }
        }
    }
    Ok(Variant {
        label: label.ok_or_else(|| err(file, line, "variant line is missing \"variant\""))?,
        params,
        line,
    })
}

fn expect_str<'v>(
    file: &str,
    line: usize,
    key: &str,
    val: &'v Value,
) -> Result<&'v str, SchemaError> {
    val.as_str().ok_or_else(|| {
        err(file, line, format!("{key:?} must be a string, got {}", val.type_name()))
    })
}

fn expect_bool(file: &str, line: usize, key: &str, val: &Value) -> Result<bool, SchemaError> {
    val.as_bool().ok_or_else(|| {
        err(file, line, format!("{key:?} must be a boolean, got {}", val.type_name()))
    })
}

fn expect_u64(
    file: &str,
    line: usize,
    key: &str,
    val: &Value,
    lo: u64,
    hi: u64,
) -> Result<u64, SchemaError> {
    let n = val.as_num().ok_or_else(|| {
        err(file, line, format!("{key:?} must be a number, got {}", val.type_name()))
    })?;
    if n.fract() != 0.0 || n < 0.0 || n > u64::MAX as f64 {
        return Err(err(file, line, format!("{key:?} must be a non-negative integer, got {n}")));
    }
    let n = n as u64;
    if n < lo || n > hi {
        return Err(err(file, line, format!("{key:?} = {n} is out of range ({lo}..={hi})")));
    }
    Ok(n)
}

fn expect_ratio(file: &str, line: usize, key: &str, val: &Value) -> Result<f64, SchemaError> {
    let n = val.as_num().ok_or_else(|| {
        err(file, line, format!("{key:?} must be a number, got {}", val.type_name()))
    })?;
    if !(0.0..=1.0).contains(&n) {
        return Err(err(file, line, format!("{key:?} = {n} is out of range (0.0..=1.0)")));
    }
    Ok(n)
}

fn parse_params(file: &str, line: usize, v: &Value) -> Result<Params, SchemaError> {
    let obj = v.as_obj().ok_or_else(|| {
        err(file, line, format!("params must be an object, got {}", v.type_name()))
    })?;
    reject_duplicates(file, line, obj, "params")?;
    let mut p = Params::default();
    for (key, val) in obj {
        match key.as_str() {
            "threads" => p.threads = Some(expect_u64(file, line, key, val, 1, 256)?),
            "shards" => p.shards = Some(expect_u64(file, line, key, val, 1, 64)?),
            "commits" => p.commits = Some(expect_u64(file, line, key, val, 1, 1_000_000)?),
            "cycles" => p.cycles = Some(expect_u64(file, line, key, val, 1, 1_000_000)?),
            "sync_latency_us" => {
                p.sync_latency_us = Some(expect_u64(file, line, key, val, 0, 1_000_000)?)
            }
            "replicas" => p.replicas = Some(expect_u64(file, line, key, val, 0, 8)?),
            "host_replicas" => p.host_replicas = Some(expect_u64(file, line, key, val, 0, 8)?),
            "readers" => p.readers = Some(expect_u64(file, line, key, val, 1, 256)?),
            "reads_per" => p.reads_per = Some(expect_u64(file, line, key, val, 1, 100_000)?),
            "n_files" => p.n_files = Some(expect_u64(file, line, key, val, 1, 65_536)?),
            "file_size" => p.file_size = Some(expect_u64(file, line, key, val, 1, 16 << 20)?),
            "updates" => p.updates = Some(expect_u64(file, line, key, val, 1, 1_000_000)?),
            "budget" => p.budget = Some(expect_u64(file, line, key, val, 0, 1 << 30)?),
            "delta" => p.delta = Some(expect_bool(file, line, key, val)?),
            "clients" => p.clients = Some(expect_u64(file, line, key, val, 1, 4096)?),
            "agents" => p.agents = Some(expect_u64(file, line, key, val, 1, 4096)?),
            "pool_min" => p.pool_min = Some(expect_u64(file, line, key, val, 1, 1024)?),
            "pool_max" => p.pool_max = Some(expect_u64(file, line, key, val, 1, 1024)?),
            "thread_per_agent" => p.thread_per_agent = Some(expect_bool(file, line, key, val)?),
            "ops" => p.ops = Some(expect_u64(file, line, key, val, 1, 1_000_000)?),
            "write_ratio" => p.write_ratio = Some(expect_ratio(file, line, key, val)?),
            "churn_ratio" => p.churn_ratio = Some(expect_ratio(file, line, key, val)?),
            "read_route" => {
                p.read_route = Some(match expect_str(file, line, key, val)? {
                    "managed" => ReadRoute::Managed,
                    "routed" => ReadRoute::Routed,
                    "fresh" => ReadRoute::Fresh,
                    other => {
                        return Err(err(
                            file,
                            line,
                            format!(
                                "unknown read_route {other:?} (expected managed, routed or fresh)"
                            ),
                        ))
                    }
                });
            }
            "injections" => p.injections = Some(parse_injections(file, line, val)?),
            other => return Err(err(file, line, format!("unknown knob {other:?} in params"))),
        }
    }
    if let (Some(lo), Some(hi)) = (p.pool_min, p.pool_max) {
        if lo > hi {
            return Err(err(file, line, format!("pool_min = {lo} exceeds pool_max = {hi}")));
        }
    }
    if let (Some(w), Some(c)) = (p.write_ratio, p.churn_ratio) {
        if w + c > 1.0 {
            return Err(err(
                file,
                line,
                format!("write_ratio + churn_ratio = {} exceeds 1.0", w + c),
            ));
        }
    }
    Ok(p)
}

fn parse_injections(file: &str, line: usize, v: &Value) -> Result<Vec<Injection>, SchemaError> {
    let arr = v.as_arr().ok_or_else(|| {
        err(file, line, format!("\"injections\" must be an array, got {}", v.type_name()))
    })?;
    let mut out = Vec::new();
    for item in arr {
        let obj = item.as_obj().ok_or_else(|| {
            err(file, line, format!("injection entries must be objects, got {}", item.type_name()))
        })?;
        reject_duplicates(file, line, obj, "injection")?;
        let mut at_op = None;
        let mut action = None;
        let mut count = None;
        let mut writes = None;
        let mut target = None;
        for (key, val) in obj {
            match key.as_str() {
                "at_op" => at_op = Some(expect_u64(file, line, key, val, 0, 1_000_000_000)?),
                "action" => action = Some(expect_str(file, line, key, val)?.to_string()),
                "count" => count = Some(expect_u64(file, line, key, val, 1, 1024)?),
                "writes" => writes = Some(expect_u64(file, line, key, val, 1, 1_000_000)?),
                "target" => {
                    target = Some(match expect_str(file, line, key, val)? {
                        "repo" => false,
                        "host" => true,
                        other => {
                            return Err(err(
                                file,
                                line,
                                format!("unknown target {other:?} (expected repo or host)"),
                            ))
                        }
                    })
                }
                other => return Err(err(file, line, format!("unknown injection field {other:?}"))),
            }
        }
        let action = match action.as_deref() {
            Some("crash_primary") => InjectAction::CrashPrimary,
            Some("crash_host") => InjectAction::CrashHost,
            Some("stall_standby") => InjectAction::StallStandby,
            Some("resume_standby") => InjectAction::ResumeStandby,
            Some("kill_upcall_workers") => {
                InjectAction::KillUpcallWorkers { count: count.unwrap_or(1) }
            }
            Some("disk_enospc") => InjectAction::DiskEnospc {
                writes: writes.unwrap_or(1),
                host: target.unwrap_or(false),
            },
            Some("torn_host_wal") => InjectAction::TornHostWal,
            Some("sever_connections") => {
                InjectAction::SeverConnections { count: count.unwrap_or(1) }
            }
            Some(other) => {
                return Err(err(
                    file,
                    line,
                    format!(
                        "unknown injection action {other:?} (expected crash_primary, crash_host, stall_standby, resume_standby, kill_upcall_workers, disk_enospc, torn_host_wal or sever_connections)"
                    ),
                ))
            }
            None => return Err(err(file, line, "injection is missing \"action\"")),
        };
        if count.is_some()
            && !matches!(
                action,
                InjectAction::KillUpcallWorkers { .. } | InjectAction::SeverConnections { .. }
            )
        {
            return Err(err(
                file,
                line,
                "\"count\" only applies to kill_upcall_workers and sever_connections",
            ));
        }
        if writes.is_some() && !matches!(action, InjectAction::DiskEnospc { .. }) {
            return Err(err(file, line, "\"writes\" only applies to disk_enospc"));
        }
        if target.is_some() && !matches!(action, InjectAction::DiskEnospc { .. }) {
            return Err(err(file, line, "\"target\" only applies to disk_enospc"));
        }
        out.push(Injection {
            at_op: at_op.ok_or_else(|| err(file, line, "injection is missing \"at_op\""))?,
            action,
        });
    }
    out.sort_by_key(|i| i.at_op);
    Ok(out)
}
