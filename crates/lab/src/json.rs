//! A minimal JSON reader for scenario files.
//!
//! The workspace is offline (no serde); this is the same hand-rolled
//! byte-position parser idiom `dl-bench`'s trajectory loader uses, kept
//! separate so the lab's schema layer (which `dl-bench` depends on) has no
//! dependency back into the bench crate. Objects preserve key order and
//! keep duplicate keys visible so the schema layer can reject them.

use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64` — scenario knobs are
/// small integers or ratios, well inside the exact-integer range.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order (and any duplicate keys) preserved for schema checks.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value's type name as it should read in an error message.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Num(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub msg: String,
    pub at_byte: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at_byte)
    }
}

/// Parses exactly one JSON value, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { msg: msg.to_string(), at_byte: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { msg: format!("invalid number {text:?}"), at_byte: start })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scenario_shaped_objects() {
        let v = parse(r#"{"scenario":"a9","seed":11,"params":{"ratio":0.5,"on":true,"x":null},"assert":["a >= 1"]}"#)
            .unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "scenario");
        assert_eq!(obj[0].1.as_str(), Some("a9"));
        assert_eq!(obj[1].1.as_num(), Some(11.0));
        let params = obj[2].1.as_obj().unwrap();
        assert_eq!(params[0].1.as_num(), Some(0.5));
        assert_eq!(params[1].1.as_bool(), Some(true));
        assert_eq!(params[2].1, Value::Null);
        assert_eq!(obj[3].1.as_arr().unwrap()[0].as_str(), Some("a >= 1"));
    }

    #[test]
    fn reports_byte_positions() {
        let err = parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(err.at_byte, 6);
        let err = parse(r#"{"a": 1} trailing"#).unwrap_err();
        assert!(err.msg.contains("trailing"));
    }

    #[test]
    fn duplicate_keys_survive_for_schema_rejection() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.as_obj().unwrap().len(), 2);
    }
}
