//! # dl-lab — the declarative scenario lab
//!
//! Scenarios-as-data for the DataLinks reproduction: a workload (client
//! mix, read/write ratio, burst shape, replica count, pool knobs) plus its
//! fault injection points (crash the primary at op N, stall a standby,
//! kill an upcall worker) and its acceptance predicates, all declared in
//! one JSONL file under `scenarios/`. This crate is the pure declarative
//! layer — schema parsing with line-numbered errors ([`schema`]),
//! deterministic `variant × repeat` plan expansion with fixed seeds
//! ([`plan`]) and assertion predicates ([`Predicate`]). The engine that
//! drives a plan against a live `DataLinksSystem` lives in `dl-bench`
//! (`dl_bench::lab`), and the `lab` binary ties the two together:
//!
//! ```text
//! cargo run -p dl-bench --bin lab -- --quick scenarios/*.jsonl
//! ```
//!
//! The design follows AgentLab's experiment/variant/repeat model: variant
//! labels are row keys in the emitted `BENCH_<id>.json` tables, so the
//! existing `report --compare` trajectory pipeline gates scenario results
//! with no new machinery.

pub mod json;
pub mod plan;
pub mod schema;

pub use plan::{expand, LabRng, Plan, TrialSpec};
pub use schema::{
    parse_scenario, CmpOp, InjectAction, Injection, Kind, Params, Predicate, ReadRoute, Scenario,
    SchemaError, Variant,
};

/// Reads and parses a scenario file from disk.
pub fn load_scenario(path: &std::path::Path) -> Result<Scenario, SchemaError> {
    let file = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| SchemaError {
        file: file.clone(),
        line: 0,
        msg: format!("cannot read scenario file: {e}"),
    })?;
    parse_scenario(&file, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        r#"{"scenario":"demo","kind":"mixed","seed":42,"repeats":2,"#,
        r#""params":{"clients":4,"ops":50,"write_ratio":0.25},"#,
        r#""quick":{"ops":10},"assert":["failovers == 0","ops_failed == 0"]}"#,
        "\n",
        r#"{"variant":"small","params":{"clients":2}}"#,
        "\n\n",
        r#"{"variant":"big","params":{"clients":8,"injections":[{"at_op":20,"action":"crash_primary"}]}}"#,
        "\n",
    );

    #[test]
    fn parses_a_full_scenario() {
        let sc = parse_scenario("demo.jsonl", GOOD).unwrap();
        assert_eq!(sc.name, "demo");
        assert_eq!(sc.kind, Kind::Mixed);
        assert_eq!(sc.seed, 42);
        assert_eq!(sc.repeats, 2);
        assert_eq!(sc.params.clients, Some(4));
        assert_eq!(sc.quick.ops, Some(10));
        assert_eq!(sc.asserts.len(), 2);
        assert_eq!(sc.variants.len(), 2);
        assert_eq!(sc.variants[1].label, "big");
        assert_eq!(
            sc.variants[1].params.injections.as_deref(),
            Some(&[Injection { at_op: 20, action: InjectAction::CrashPrimary }][..])
        );
        // Blank lines are skipped but still counted for error positions.
        assert_eq!(sc.variants[1].line, 4);
    }

    #[test]
    fn malformed_json_reports_the_line() {
        let text = format!("{}\n{{\"variant\": oops}}\n", GOOD.lines().next().unwrap());
        let e = parse_scenario("s.jsonl", &text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("invalid JSON"), "{e}");
        assert!(e.to_string().starts_with("s.jsonl:2:"), "{e}");
    }

    #[test]
    fn unknown_fields_are_line_numbered_errors() {
        // Unknown header field.
        let e = parse_scenario(
            "s.jsonl",
            r#"{"scenario":"x","kind":"mixed","seed":1,"frobnicate":true}"#,
        )
        .unwrap_err();
        assert_eq!((e.line, e.msg.contains("frobnicate")), (1, true), "{e}");

        // Unknown knob inside params, on a variant line.
        let text = concat!(
            r#"{"scenario":"x","kind":"mixed","seed":1}"#,
            "\n",
            r#"{"variant":"v","params":{"wirte_ratio":0.5}}"#,
        );
        let e = parse_scenario("s.jsonl", text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("wirte_ratio"), "{e}");

        // Unknown variant-level field.
        let text = concat!(
            r#"{"scenario":"x","kind":"mixed","seed":1}"#,
            "\n",
            r#"{"variant":"v","parms":{}}"#,
        );
        let e = parse_scenario("s.jsonl", text).unwrap_err();
        assert!(e.line == 2 && e.msg.contains("parms"), "{e}");
    }

    #[test]
    fn out_of_range_knobs_are_line_numbered_errors() {
        for (knob, why) in [
            (r#"{"write_ratio":1.5}"#, "out of range"),
            (r#"{"replicas":99}"#, "out of range"),
            (r#"{"clients":0}"#, "out of range"),
            (r#"{"threads":2.5}"#, "integer"),
            (r#"{"pool_min":8,"pool_max":2}"#, "exceeds pool_max"),
            (r#"{"write_ratio":0.8,"churn_ratio":0.4}"#, "exceeds 1.0"),
        ] {
            let text = format!(
                "{}\n{}\n",
                r#"{"scenario":"x","kind":"mixed","seed":1}"#,
                format_args!(r#"{{"variant":"v","params":{knob}}}"#),
            );
            let e = parse_scenario("s.jsonl", &text).unwrap_err();
            assert_eq!(e.line, 2, "knob {knob}: {e}");
            assert!(e.msg.contains(why), "knob {knob}: {e}");
        }
    }

    #[test]
    fn duplicate_keys_and_labels_are_rejected() {
        let e = parse_scenario("s.jsonl", r#"{"scenario":"x","kind":"mixed","seed":1,"seed":2}"#)
            .unwrap_err();
        assert!(e.msg.contains("duplicate key"), "{e}");

        let text = concat!(
            r#"{"scenario":"x","kind":"mixed","seed":1}"#,
            "\n",
            r#"{"variant":"same"}"#,
            "\n",
            r#"{"variant":"same"}"#,
        );
        let e = parse_scenario("s.jsonl", text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("duplicate variant label"), "{e}");
    }

    #[test]
    fn missing_required_fields_are_errors() {
        let e = parse_scenario("s.jsonl", r#"{"kind":"mixed","seed":1}"#).unwrap_err();
        assert!(e.msg.contains("\"scenario\""), "{e}");
        let e = parse_scenario("s.jsonl", r#"{"scenario":"x","kind":"mixed"}"#).unwrap_err();
        assert!(e.msg.contains("\"seed\""), "{e}");
        let e =
            parse_scenario("s.jsonl", r#"{"scenario":"x","kind":"mixed","seed":1}"#).unwrap_err();
        assert!(e.msg.contains("no variants"), "{e}");
    }

    #[test]
    fn bad_predicates_are_errors() {
        for (pred, why) in [
            ("throughput", "metric op number"),
            ("a ~ 3", "unknown operator"),
            ("a >= fast", "not a number"),
        ] {
            let text = format!(r#"{{"scenario":"x","kind":"mixed","seed":1,"assert":[{pred:?}]}}"#);
            let e = parse_scenario("s.jsonl", &text).unwrap_err();
            assert!(e.msg.contains(why), "pred {pred}: {e}");
        }
    }

    #[test]
    fn predicates_evaluate() {
        let p = Predicate::parse("failover_ms <= 500").unwrap();
        assert!(p.holds(500.0) && p.holds(0.0) && !p.holds(500.1));
        let p = Predicate::parse("throughput_ratio >= 1.6").unwrap();
        assert!(p.holds(1.6) && !p.holds(1.59));
        let p = Predicate::parse("lost_acked_links == 0").unwrap();
        assert!(p.holds(0.0) && !p.holds(1.0));
    }

    #[test]
    fn identical_seed_and_scenario_yield_identical_plans() {
        let a = expand(&parse_scenario("s.jsonl", GOOD).unwrap(), false).unwrap();
        let b = expand(&parse_scenario("s.jsonl", GOOD).unwrap(), false).unwrap();
        assert_eq!(a, b);
        // 2 variants x 2 repeats, in row order.
        assert_eq!(a.trials.len(), 4);
        assert_eq!(a.trials[0].variant, "small");
        assert_eq!((a.trials[1].variant_idx, a.trials[1].repeat), (0, 1));

        // Seeds are fixed but distinct per (variant, repeat).
        let seeds: std::collections::BTreeSet<u64> = a.trials.iter().map(|t| t.seed).collect();
        assert_eq!(seeds.len(), 4, "trial seeds must not collide");

        // A different scenario seed re-seeds every trial.
        let other = GOOD.replacen("\"seed\":42", "\"seed\":43", 1);
        let c = expand(&parse_scenario("s.jsonl", &other).unwrap(), false).unwrap();
        assert!(c.trials.iter().zip(&a.trials).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn quick_overrides_win_over_variant_knobs() {
        let plan = expand(&parse_scenario("s.jsonl", GOOD).unwrap(), true).unwrap();
        for t in &plan.trials {
            assert_eq!(t.params.ops, Some(10), "quick ops must win");
        }
        // Variant overrides still beat scenario defaults.
        assert_eq!(plan.trials[0].params.clients, Some(2));
        assert_eq!(plan.trials[2].params.clients, Some(8));
        // Scenario defaults fill the gaps.
        assert_eq!(plan.trials[0].params.write_ratio, Some(0.25));
    }

    #[test]
    fn lab_rng_is_deterministic_and_spread() {
        let mut a = LabRng::new(7);
        let mut b = LabRng::new(7);
        let mut c = LabRng::new(8);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(first, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(first[0], c.next_u64(), "adjacent seeds must diverge");
        let r = c.ratio();
        assert!((0.0..1.0).contains(&r));
        assert!(c.below(10) < 10);
    }
}
