//! Plan expansion: scenario → deterministic `variant × repeat` trial list.
//!
//! Expansion is a pure function of the scenario text plus the quick flag:
//! the same inputs always yield byte-identical plans (trial order, merged
//! knobs, and seeds), which is what makes a lab failure reproducible from
//! nothing but the scenario file.

use crate::schema::{Params, Scenario, SchemaError};

/// One runnable trial: a variant repeat with its merged knobs and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSpec {
    /// The variant's row label.
    pub variant: String,
    /// Index of the variant within the scenario (row order).
    pub variant_idx: usize,
    /// Repeat number, `0..scenario.repeats`.
    pub repeat: u64,
    /// The trial's RNG seed, derived from the scenario seed (splitmix64
    /// over (seed, variant index, repeat) — stable across lab versions).
    pub seed: u64,
    /// Fully merged knobs: scenario defaults ← variant ← quick overrides.
    pub params: Params,
}

/// The expanded trial plan for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub scenario: String,
    pub trials: Vec<TrialSpec>,
}

/// Expands a scenario into its trial plan. Quick overrides are applied
/// last — they are the CI contract and win over per-variant knobs.
pub fn expand(sc: &Scenario, quick: bool) -> Result<Plan, SchemaError> {
    let mut trials = Vec::with_capacity(sc.variants.len() * sc.repeats as usize);
    for (variant_idx, variant) in sc.variants.iter().enumerate() {
        let mut params = sc.params.overridden_by(&variant.params);
        if quick {
            params = params.overridden_by(&sc.quick);
        }
        for repeat in 0..sc.repeats {
            trials.push(TrialSpec {
                variant: variant.label.clone(),
                variant_idx,
                repeat,
                seed: trial_seed(sc.seed, variant_idx as u64, repeat),
                params: params.clone(),
            });
        }
    }
    Ok(Plan { scenario: sc.name.clone(), trials })
}

/// splitmix64 — the standard 64-bit mixer (Steele et al.); one step.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn trial_seed(root: u64, variant_idx: u64, repeat: u64) -> u64 {
    let mut s = root ^ variant_idx.rotate_left(24) ^ repeat.rotate_left(48);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// A small deterministic RNG for trial workloads (xorshift64*, seeded via
/// splitmix so consecutive client ids diverge immediately).
#[derive(Debug, Clone)]
pub struct LabRng(u64);

impl LabRng {
    pub fn new(seed: u64) -> LabRng {
        let mut s = seed;
        // Run the seed through the mixer so 0/1/2... seeds don't correlate.
        let mixed = splitmix64(&mut s).max(1);
        LabRng(mixed)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (n must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform ratio in `[0, 1)`.
    pub fn ratio(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
